module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Selection = Mcss_core.Selection
module Allocation = Mcss_core.Allocation
module Verifier = Mcss_core.Verifier
module Simulator = Mcss_sim.Simulator
module Reprovision = Mcss_dynamic.Reprovision
module Recovery = Mcss_dynamic.Recovery
module Rng = Mcss_prng.Rng
module Registry = Mcss_obs.Registry
module Span = Mcss_obs.Span
module Counter = Mcss_obs.Metric.Counter

type policy = {
  epochs : int;
  epoch_duration : float;
  epoch_hours : float;
  tolerance : float;
  hysteresis : int;
  base_backoff : int;
  max_backoff : int;
  jitter : int;
  seed : int;
  recovery : bool;
  max_new_vms : int;
  penalty_usd_per_violation_hour : float;
}

let default_policy =
  {
    epochs = 8;
    epoch_duration = 0.5;
    epoch_hours = 1.0;
    tolerance = 0.;
    hysteresis = 1;
    base_backoff = 1;
    max_backoff = 8;
    jitter = 1;
    seed = 42;
    recovery = true;
    max_new_vms = max_int;
    penalty_usd_per_violation_hour = 50.;
  }

type outcome = {
  plan : Reprovision.plan;
  sla : Sla.report;
  epoch_log : Sla.epoch list;
  repairs : int;
  repair_attempts : int;
  backoff_skips : int;
  shed : (int * int) list;
  vms_added : int;
  verified : (unit, string) result;
}

let backoff policy rng ~failures =
  if failures < 1 then invalid_arg "Orchestrator.backoff: failures must be >= 1";
  let doubling = failures - 1 in
  let base =
    if doubling >= 30 then policy.max_backoff
    else min policy.max_backoff (policy.base_backoff * (1 lsl doubling))
  in
  base + (if policy.jitter > 0 then Rng.int rng (policy.jitter + 1) else 0)

let check_policy policy =
  if policy.epochs < 1 then invalid_arg "Orchestrator: epochs must be >= 1";
  if not (policy.epoch_duration > 0.) then
    invalid_arg "Orchestrator: epoch_duration must be positive";
  if not (policy.epoch_hours > 0.) then
    invalid_arg "Orchestrator: epoch_hours must be positive";
  if policy.hysteresis < 1 then invalid_arg "Orchestrator: hysteresis must be >= 1"

(* Active outages live in absolute campaign time; each epoch sees the
   intersection with its window, shifted to epoch-local time. *)
let clip_outages active ~t0 ~t1 =
  List.filter_map
    (fun (o : Simulator.outage) ->
      if o.from_time < t1 && o.until_time > t0 then
        Some
          {
            o with
            from_time = Float.max 0. (o.from_time -. t0);
            until_time = Float.min (t1 -. t0) (o.until_time -. t0);
          }
      else None)
    active

let sum = Array.fold_left ( + ) 0

(* Rebuild the fleet without [failed], re-homing orphans best
   benefit-cost ratio first onto survivor free capacity plus at most
   [allowed] fresh VMs; whatever is left over is shed. *)
let rebuild_degraded (plan : Reprovision.plan) ~failed ~allowed =
  let p = plan.Reprovision.problem in
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let failed = List.sort_uniq compare failed in
  let fresh = Allocation.create ~capacity:p.Problem.capacity in
  let orphans = ref [] in
  Array.iter
    (fun vm ->
      if List.mem (Allocation.vm_id vm) failed then
        Allocation.iter_vm_pairs vm (fun t v -> orphans := (t, v) :: !orphans)
      else begin
        let nvm = Allocation.deploy fresh in
        Allocation.iter_vm_pairs vm (fun t v ->
            Allocation.place fresh nvm ~topic:t ~ev:(Workload.event_rate w t)
              ~subscribers:[| v |] ~from:0 ~count:1)
      end)
    (Allocation.vms plan.Reprovision.allocation);
  let ratio (t, v) =
    Selection.benefit_cost_ratio ~ev:(Workload.event_rate w t) ~rem:(Problem.tau_v p v)
  in
  let orphans =
    List.sort
      (fun x y -> match compare (ratio y) (ratio x) with 0 -> compare x y | c -> c)
      !orphans
  in
  let budget = ref allowed and added = ref 0 and shed = ref [] in
  List.iter
    (fun (t, v) ->
      let ev = Workload.event_rate w t in
      let best = ref None in
      Array.iter
        (fun vm ->
          if Allocation.max_pairs_that_fit fresh vm ~topic:t ~ev ~eps > 0 then
            match !best with
            | Some b when Allocation.free fresh b >= Allocation.free fresh vm -> ()
            | _ -> best := Some vm)
        (Allocation.vms fresh);
      match !best with
      | Some vm ->
          Allocation.place fresh vm ~topic:t ~ev ~subscribers:[| v |] ~from:0 ~count:1
      | None ->
          if !budget > 0 && Problem.pair_fits_empty_vm p t then begin
            decr budget;
            incr added;
            let vm = Allocation.deploy fresh in
            Allocation.place fresh vm ~topic:t ~ev ~subscribers:[| v |] ~from:0 ~count:1
          end
          else shed := (t, v) :: !shed)
    orphans;
  ({ plan with Reprovision.allocation = fresh }, List.rev !shed, !added)

let run ?(obs = Registry.noop) ?(policy = default_policy) ?(zones = 1)
    ?(log = fun _ -> ()) ~campaign p =
  check_policy policy;
  if zones < 1 then invalid_arg "Orchestrator.run: zones must be >= 1";
  Failure_model.validate campaign;
  let logf fmt = Printf.ksprintf log fmt in
  let rng = Rng.create (policy.seed lxor campaign.Failure_model.seed) in
  let plan = ref (Reprovision.initial p) in
  let w = p.Problem.workload in
  let num_subs = Workload.num_subscribers w in
  let eps = Problem.epsilon p in
  let d = policy.epoch_duration in
  let faults = Array.of_list campaign.Failure_model.faults in
  let fired = Array.make (Array.length faults) false in
  let active = ref [] in
  let counters = ref (Array.make (Allocation.num_vms (!plan).Reprovision.allocation) 0) in
  let sla = Sla.create () in
  let repairs = ref 0
  and attempts = ref 0
  and backoff_skips = ref 0
  and shed = ref []
  and vms_added = ref 0
  and failures = ref 0
  and cooldown_until = ref 0 in
  (* Observability: first-suspect bookkeeping feeds the recovery-latency
     histogram (epochs from a VM first turning suspect to the repair that
     clears it); totals flush to counters after the campaign. *)
  let detections = ref 0 and suspect_since = ref None in
  let recovery_latency =
    Registry.histogram obs
      ~buckets:(Mcss_obs.Metric.Histogram.linear ~lo:1. ~hi:10. ~buckets:10)
      ~help:"Epochs from first suspicion to an adopted repair"
      "resilience.recovery_latency_epochs"
  in
  let degraded_rebuilds = ref 0 in
  (* Pending windows follow surviving VMs through the replan's
     renumbering (new id = rank among survivors); windows on the
     replaced VMs die with them. Dead-counters restart from zero. *)
  let remap_after_repair failed_ids =
    let failed_ids = List.sort_uniq compare failed_ids in
    active :=
      List.filter_map
        (fun (o : Simulator.outage) ->
          if List.mem o.vm failed_ids then None
          else
            Some
              { o with vm = o.vm - List.length (List.filter (fun f -> f < o.vm) failed_ids) })
        !active;
    counters := Array.make (Allocation.num_vms (!plan).Reprovision.allocation) 0
  in
  for e = 0 to policy.epochs - 1 do
    Span.with_ obs ~name:"epoch" @@ fun () ->
    let t0 = float_of_int e *. d and t1 = float_of_int (e + 1) *. d in
    let a = (!plan).Reprovision.allocation in
    let n = Allocation.num_vms a in
    Array.iteri
      (fun i f ->
        if (not fired.(i)) && Failure_model.start_time f < t1 then begin
          fired.(i) <- true;
          let os = Failure_model.compile_fault f ~num_vms:n ~zones in
          (if os = [] then
             logf "epoch %d: fault %s targets nothing in a %d-VM fleet" e
               (Failure_model.fault_to_string f) n
           else logf "epoch %d: fault %s strikes" e (Failure_model.fault_to_string f));
          active := !active @ os
        end)
      faults;
    let outages = clip_outages !active ~t0 ~t1 in
    let result =
      Simulator.run ~obs p a { Simulator.default_config with duration = d; outages }
    in
    let chk = Simulator.check p a result ~tolerance:policy.tolerance in
    let violations = List.length chk.Simulator.unsatisfied in
    let delivered = sum result.Simulator.delivered in
    let lost = sum result.Simulator.lost in
    if violations = 0 then logf "epoch %d: healthy, %d events delivered" e delivered
    else
      logf "epoch %d: %d/%d subscribers below threshold (%d delivered, %d lost)" e
        violations num_subs delivered lost;
    (* A VM is suspected dead when the plan expects it to move traffic
       but a whole epoch of metering saw none. *)
    let cnt = !counters in
    Array.iteri
      (fun id vm ->
        let load = Allocation.load vm in
        if load > eps && load *. d >= 1. && Simulator.total_vm_traffic result ~vm:id = 0
        then cnt.(id) <- cnt.(id) + 1
        else cnt.(id) <- 0)
      (Allocation.vms a);
    let suspects = ref [] in
    Array.iteri (fun id c -> if c >= policy.hysteresis then suspects := id :: !suspects) cnt;
    let suspects = List.rev !suspects in
    if suspects <> [] then begin
      detections := !detections + List.length suspects;
      if !suspect_since = None then suspect_since := Some e
    end;
    let repaired = ref false in
    if policy.recovery && suspects <> [] && violations > 0 then begin
      if e < !cooldown_until then begin
        incr backoff_skips;
        logf "epoch %d: %d suspect VM(s), holding off until epoch %d (backoff)" e
          (List.length suspects) !cooldown_until
      end
      else begin
        incr attempts;
        let budget_left = max 0 (policy.max_new_vms - !vms_added) in
        let decision =
          try
            let candidate, stats =
              Span.with_ obs ~name:"replan" (fun () -> Recovery.replan !plan ~failed:suspects)
            in
            let survivor_cost =
              Problem.cost p
                ~vms:(n - List.length suspects)
                ~bandwidth:
                  (Allocation.total_load a
                  -. List.fold_left
                       (fun acc id -> acc +. Allocation.load (Allocation.vms a).(id))
                       0. suspects)
            in
            let extra_rate = Reprovision.cost candidate -. survivor_cost in
            let penalty_rate =
              policy.penalty_usd_per_violation_hour *. float_of_int violations
            in
            if extra_rate > penalty_rate then `Degrade 0
            else if stats.Recovery.vms_added > budget_left then `Degrade budget_left
            else `Full (candidate, stats)
          with Problem.Infeasible m -> `Infeasible m
        in
        match decision with
        | `Full (candidate, stats) ->
            plan := candidate;
            vms_added := !vms_added + stats.Recovery.vms_added;
            incr repairs;
            repaired := true;
            failures := 0;
            cooldown_until := e + 1;
            (match !suspect_since with
            | Some e0 ->
                Mcss_obs.Metric.Histogram.observe recovery_latency
                  (float_of_int (e - e0 + 1));
                suspect_since := None
            | None -> ());
            remap_after_repair suspects;
            logf "epoch %d: repaired — %d VM(s) replaced by %d fresh, %d pairs re-homed"
              e stats.Recovery.vms_lost stats.Recovery.vms_added
              stats.Recovery.pairs_rehomed
        | `Degrade allowed ->
            let candidate, newly_shed, added =
              rebuild_degraded !plan ~failed:suspects ~allowed
            in
            plan := candidate;
            vms_added := !vms_added + added;
            shed := !shed @ newly_shed;
            repaired := true;
            incr failures;
            incr degraded_rebuilds;
            cooldown_until := e + 1 + backoff policy rng ~failures:!failures;
            (match !suspect_since with
            | Some e0 ->
                Mcss_obs.Metric.Histogram.observe recovery_latency
                  (float_of_int (e - e0 + 1));
                suspect_since := None
            | None -> ());
            remap_after_repair suspects;
            logf
              "epoch %d: degraded — %d VM(s) dropped, %d fresh allowed, %d pair(s) \
               shed; backing off until epoch %d"
              e (List.length suspects) added (List.length newly_shed) !cooldown_until
        | `Infeasible m ->
            incr failures;
            cooldown_until := e + 1 + backoff policy rng ~failures:!failures;
            logf "epoch %d: repair infeasible (%s); backing off until epoch %d" e m
              !cooldown_until
      end
    end;
    Sla.record sla
      {
        Sla.index = e;
        hours = policy.epoch_hours;
        violations;
        subscribers = num_subs;
        delivered;
        lost;
        repaired = !repaired;
      };
    active := List.filter (fun (o : Simulator.outage) -> o.until_time > t1) !active
  done;
  let verified =
    if !shed <> [] then
      Error (Printf.sprintf "degraded: %d pair(s) shed" (List.length !shed))
    else
      let r =
        Verifier.verify p (!plan).Reprovision.selection (!plan).Reprovision.allocation
      in
      match r.Verifier.violations with
      | [] -> Ok ()
      | v :: _ -> Error (Format.asprintf "%a" Verifier.pp_violation v)
  in
  let outcome =
    {
      plan = !plan;
      sla =
        Sla.report ~penalty_usd_per_violation_hour:policy.penalty_usd_per_violation_hour
          sla;
      epoch_log = Sla.entries sla;
      repairs = !repairs;
      repair_attempts = !attempts;
      backoff_skips = !backoff_skips;
      shed = !shed;
      vms_added = !vms_added;
      verified;
    }
  in
  if Registry.enabled obs then begin
    let c name help v = Counter.add (Registry.counter obs ~help name) v in
    c "resilience.epochs" "Campaign epochs executed" policy.epochs;
    c "resilience.suspect_detections" "Suspect-VM detections (VM-epochs over hysteresis)"
      !detections;
    c "resilience.repair_attempts" "Repairs attempted" outcome.repair_attempts;
    c "resilience.repairs_adopted" "Repairs adopted (full or degraded)" outcome.repairs;
    c "resilience.backoff_skips" "Repair opportunities skipped while backing off"
      outcome.backoff_skips;
    c "resilience.degraded_rebuilds" "Degraded rebuilds (orphans re-homed, rest shed)"
      !degraded_rebuilds;
    c "resilience.vms_added" "Fresh VMs provisioned by repairs" outcome.vms_added;
    c "resilience.pairs_shed" "Pairs shed by degraded rebuilds" (List.length outcome.shed);
    c "resilience.violation_epochs" "Epochs with at least one SLA violation"
      (List.length
         (List.filter (fun (ep : Sla.epoch) -> ep.Sla.violations > 0) outcome.epoch_log))
  end;
  outcome

let evaluate ?(obs = Registry.noop) ?(policy = default_policy) ?(zones = 1) ~campaign p a =
  check_policy policy;
  if zones < 1 then invalid_arg "Orchestrator.evaluate: zones must be >= 1";
  Failure_model.validate campaign;
  let d = policy.epoch_duration in
  let n = Allocation.num_vms a in
  let num_subs = Workload.num_subscribers p.Problem.workload in
  let faults = Array.of_list campaign.Failure_model.faults in
  let fired = Array.make (Array.length faults) false in
  let active = ref [] in
  let sla = Sla.create () in
  for e = 0 to policy.epochs - 1 do
    let t0 = float_of_int e *. d and t1 = float_of_int (e + 1) *. d in
    Array.iteri
      (fun i f ->
        if (not fired.(i)) && Failure_model.start_time f < t1 then begin
          fired.(i) <- true;
          active := !active @ Failure_model.compile_fault f ~num_vms:n ~zones
        end)
      faults;
    let outages = clip_outages !active ~t0 ~t1 in
    let result =
      Simulator.run ~obs p a { Simulator.default_config with duration = d; outages }
    in
    let chk = Simulator.check p a result ~tolerance:policy.tolerance in
    Sla.record sla
      {
        Sla.index = e;
        hours = policy.epoch_hours;
        violations = List.length chk.Simulator.unsatisfied;
        subscribers = num_subs;
        delivered = sum result.Simulator.delivered;
        lost = sum result.Simulator.lost;
        repaired = false;
      };
    active := List.filter (fun (o : Simulator.outage) -> o.until_time > t1) !active
  done;
  Sla.report ~penalty_usd_per_violation_hour:policy.penalty_usd_per_violation_hour sla
