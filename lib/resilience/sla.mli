(** Availability accounting for a failure drill.

    The orchestrator ({!Orchestrator}) runs the simulator in epochs and
    records one {!epoch} entry per epoch; this module folds the entries
    into the SLA ledger an operator would read after the drill:
    delivered fraction, violation-hours, how long violations lasted, and
    what the downtime cost compared to what the resilience (repairs,
    replicas) cost. *)

type epoch = {
  index : int;
  hours : float;  (** Wall-clock hours the epoch represents. *)
  violations : int;  (** Subscribers below [τ_v] this epoch. *)
  subscribers : int;
  delivered : int;  (** Events delivered, summed over subscribers. *)
  lost : int;  (** Events lost to outages, summed over subscribers. *)
  repaired : bool;  (** A repair was adopted during this epoch. *)
}

type report = {
  epochs : int;
  horizon_hours : float;
  delivered_events : int;
  lost_events : int;
  delivered_fraction : float;
      (** [delivered / (delivered + lost)]; [1.] when nothing flowed. *)
  violation_hours : float;
      (** [Σ_epochs violations · hours] — subscriber-hours spent below
          [τ_v], the quantity the SLA bills for. *)
  violation_epochs : int;  (** Epochs with at least one violation. *)
  worst_epoch_violations : int;
  repairs : int;  (** Epochs in which a repair was adopted. *)
  mean_epochs_to_recover : float;
      (** Mean length of maximal runs of consecutive violation epochs
          (a run still open at the horizon counts with its length so
          far); [0.] if no epoch violated. *)
  downtime_cost : float;
      (** [penalty_usd_per_violation_hour · violation_hours]. *)
}

type t
(** A mutable accumulator of epoch entries. *)

val create : unit -> t
val record : t -> epoch -> unit
val entries : t -> epoch list
(** In recording order. *)

val report : ?penalty_usd_per_violation_hour:float -> t -> report
(** Fold the entries; the penalty rate defaults to [0.] (no monetised
    downtime). *)

val pp_report : Format.formatter -> report -> unit
