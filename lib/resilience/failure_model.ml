module Simulator = Mcss_sim.Simulator

type fault =
  | Crash of { vm : int; at : float }
  | Transient of { vm : int; from_time : float; until_time : float }
  | Throttle of { vm : int; from_time : float; until_time : float; severity : float }
  | Zone_burst of { zone : int; at : float; duration : float }

type campaign = { seed : int; faults : fault list }

let zone_of_vm ~zones vm =
  if zones < 1 then invalid_arg "Failure_model.zone_of_vm: zones must be >= 1";
  vm mod zones

let start_time = function
  | Crash { at; _ } -> at
  | Transient { from_time; _ } -> from_time
  | Throttle { from_time; _ } -> from_time
  | Zone_burst { at; _ } -> at

let bad fmt = Printf.ksprintf invalid_arg fmt

(* [0 <= a] written as [not (a >= 0)] so NaN is caught too. *)
let check_time what x = if not (x >= 0.) then bad "Failure_model: %s time %g invalid" what x

let check_window what f u =
  check_time what f;
  if not (f <= u) then bad "Failure_model: %s window inverted (%g > %g)" what f u

let validate c =
  List.iter
    (fun fault ->
      match fault with
      | Crash { vm; at } ->
          if vm < 0 then bad "Failure_model: crash on negative vm %d" vm;
          check_time "crash" at
      | Transient { vm; from_time; until_time } ->
          if vm < 0 then bad "Failure_model: transient on negative vm %d" vm;
          check_window "transient" from_time until_time
      | Throttle { vm; from_time; until_time; severity } ->
          if vm < 0 then bad "Failure_model: throttle on negative vm %d" vm;
          check_window "throttle" from_time until_time;
          if not (severity > 0. && severity < 1.) then
            bad "Failure_model: throttle severity %g outside (0, 1)" severity
      | Zone_burst { zone; at; duration } ->
          if zone < 0 then bad "Failure_model: burst in negative zone %d" zone;
          check_time "zone burst" at;
          if not (duration > 0.) then
            bad "Failure_model: zone burst duration %g must be positive" duration)
    c.faults

let compile_fault fault ~num_vms ~zones =
  if zones < 1 then invalid_arg "Failure_model.compile_fault: zones must be >= 1";
  match fault with
  | Crash { vm; at } ->
      if vm >= num_vms then []
      else [ Simulator.outage ~vm ~from_time:at ~until_time:infinity () ]
  | Transient { vm; from_time; until_time } ->
      if vm >= num_vms then []
      else [ Simulator.outage ~vm ~from_time ~until_time () ]
  | Throttle { vm; from_time; until_time; severity } ->
      if vm >= num_vms then []
      else [ Simulator.outage ~severity ~vm ~from_time ~until_time () ]
  | Zone_burst { zone; at; duration } ->
      if zone >= zones then []
      else
        List.filter_map
          (fun vm ->
            if zone_of_vm ~zones vm = zone then
              Some (Simulator.outage ~vm ~from_time:at ~until_time:(at +. duration) ())
            else None)
          (List.init num_vms (fun i -> i))

let compile c ~num_vms ~zones =
  validate c;
  List.concat_map (fun fault -> compile_fault fault ~num_vms ~zones) c.faults

let random ~seed ~num_vms ~zones ?(crashes = 1) ?(transients = 1) ?(throttles = 1)
    ?(zone_bursts = 1) ?(horizon = 1.) () =
  if num_vms < 1 then invalid_arg "Failure_model.random: num_vms must be >= 1";
  if zones < 1 then invalid_arg "Failure_model.random: zones must be >= 1";
  let rng = Mcss_prng.Rng.create seed in
  let at () = horizon *. (0.05 +. Mcss_prng.Rng.float rng 0.8) in
  let window () =
    let f = at () in
    (f, f +. (horizon *. (0.02 +. Mcss_prng.Rng.float rng 0.2)))
  in
  let faults =
    List.init crashes (fun _ -> Crash { vm = Mcss_prng.Rng.int rng num_vms; at = at () })
    @ List.init transients (fun _ ->
          let from_time, until_time = window () in
          Transient { vm = Mcss_prng.Rng.int rng num_vms; from_time; until_time })
    @ List.init throttles (fun _ ->
          let from_time, until_time = window () in
          Throttle
            {
              vm = Mcss_prng.Rng.int rng num_vms;
              from_time;
              until_time;
              severity = 0.3 +. Mcss_prng.Rng.float rng 0.6;
            })
    @ List.init zone_bursts (fun _ ->
          Zone_burst
            {
              zone = Mcss_prng.Rng.int rng zones;
              at = at ();
              duration = horizon *. (0.05 +. Mcss_prng.Rng.float rng 0.15);
            })
  in
  let faults =
    List.sort (fun a b -> compare (start_time a, a) (start_time b, b)) faults
  in
  { seed; faults }

let fault_to_string = function
  | Crash { vm; at } -> Printf.sprintf "crash:%d@%g" vm at
  | Transient { vm; from_time; until_time } ->
      Printf.sprintf "transient:%d@%g-%g" vm from_time until_time
  | Throttle { vm; from_time; until_time; severity } ->
      Printf.sprintf "throttle:%d@%g-%g*%g" vm from_time until_time severity
  | Zone_burst { zone; at; duration } -> Printf.sprintf "zone:%d@%g+%g" zone at duration

(* Split [s] on the single occurrence of [sep]; None if absent. *)
let split2 sep s =
  match String.index_opt s sep with
  | None -> None
  | Some i ->
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let fault_of_string s =
  let fail () =
    Error
      (Printf.sprintf
         "bad fault %S: expected crash:VM@AT, transient:VM@FROM-UNTIL, \
          throttle:VM@FROM-UNTIL*SEV, or zone:Z@AT+DUR" s)
  in
  let num x = try Some (float_of_string x) with Failure _ -> None in
  let id x = try Some (int_of_string x) with Failure _ -> None in
  match split2 ':' s with
  | None -> fail ()
  | Some (kind, rest) -> (
      match (kind, split2 '@' rest) with
      | "crash", Some (vm, at) -> (
          match (id vm, num at) with
          | Some vm, Some at when vm >= 0 && at >= 0. -> Ok (Crash { vm; at })
          | _ -> fail ())
      | "transient", Some (vm, w) -> (
          match (id vm, split2 '-' w) with
          | Some vm, Some (f, u) -> (
              match (num f, num u) with
              | Some from_time, Some until_time
                when vm >= 0 && from_time >= 0. && from_time <= until_time ->
                  Ok (Transient { vm; from_time; until_time })
              | _ -> fail ())
          | _ -> fail ())
      | "throttle", Some (vm, w) -> (
          match (id vm, split2 '*' w) with
          | Some vm, Some (window, sev) -> (
              match (split2 '-' window, num sev) with
              | Some (f, u), Some severity -> (
                  match (num f, num u) with
                  | Some from_time, Some until_time
                    when vm >= 0 && from_time >= 0. && from_time <= until_time
                         && severity > 0. && severity < 1. ->
                      Ok (Throttle { vm; from_time; until_time; severity })
                  | _ -> fail ())
              | _ -> fail ())
          | _ -> fail ())
      | "zone", Some (zone, w) -> (
          match (id zone, split2 '+' w) with
          | Some zone, Some (at, dur) -> (
              match (num at, num dur) with
              | Some at, Some duration
                when zone >= 0 && at >= 0. && duration > 0. ->
                  Ok (Zone_burst { zone; at; duration })
              | _ -> fail ())
          | _ -> fail ())
      | _ -> fail ())

let pp_fault ppf f = Format.pp_print_string ppf (fault_to_string f)
