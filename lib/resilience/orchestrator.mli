(** The supervision loop: run a deployment through a fault campaign in
    epochs, watch the SLA, and repair.

    Each epoch simulates [epoch_duration] horizons of traffic under the
    campaign's active outages, then reads two signals the way an
    operator would — from measurements, not from the campaign script:

    + {e τ-violations}: subscribers whose measured delivery missed the
      scaled threshold ({!Mcss_sim.Simulator.check});
    + {e dead VMs}: VMs with analytical load but zero measured traffic
      across the whole epoch (a mid-epoch crash is only caught one epoch
      later, and a short zone burst never looks dead — it recovers by
      itself).

    A VM suspected dead for [hysteresis] consecutive epochs (flapping
    guard) while subscribers are in violation triggers a repair:
    {!Mcss_dynamic.Recovery.replan} is consulted, and its plan adopted
    if it stays within the [max_new_vms] budget and its extra hourly
    cost does not exceed the SLA penalty rate
    ([penalty_usd_per_violation_hour · violations]). Otherwise the
    orchestrator enters {e degraded mode}: survivors keep their pairs,
    orphans are re-homed best benefit-cost ratio first onto remaining
    free capacity (plus new VMs only as the budget allows — none at all
    when pricing vetoed the repair), and the leftovers are {e shed}.
    Attempts that end degraded or infeasible arm an exponential backoff
    (with seeded jitter) before the next attempt.

    Repairs renumber the fleet ({!Mcss_dynamic.Recovery.replan} packs
    survivor ids); pending outage windows follow the surviving VMs and
    windows on replaced VMs die with them. Campaign faults always name
    fleet slots {e at the moment they strike}. *)

type policy = {
  epochs : int;  (** How many epochs to supervise. *)
  epoch_duration : float;  (** Simulated horizons per epoch. *)
  epoch_hours : float;  (** Wall-clock hours one epoch represents. *)
  tolerance : float;  (** Measurement slack for {!Mcss_sim.Simulator.check}. *)
  hysteresis : int;
      (** Consecutive dead epochs before a VM is declared failed. *)
  base_backoff : int;  (** Epochs of cooldown after the first failed repair. *)
  max_backoff : int;  (** Cap on the exponential cooldown. *)
  jitter : int;  (** Max extra cooldown epochs, drawn from the seeded RNG. *)
  seed : int;  (** Jitter entropy, mixed with the campaign's own seed. *)
  recovery : bool;  (** [false] = observe only (the ablation baseline). *)
  max_new_vms : int;  (** Replacement-VM budget across the whole drill. *)
  penalty_usd_per_violation_hour : float;
      (** SLA penalty rate; also what {!Sla.report} bills downtime at. *)
}

val default_policy : policy
(** 8 epochs of 0.5 horizons / 1 h each, tolerance 0, hysteresis 1,
    backoff 1 → 8 with jitter 1, seed 42, recovery on, unlimited budget,
    $50 per violation-hour. *)

type outcome = {
  plan : Mcss_dynamic.Reprovision.plan;  (** The plan after the drill. *)
  sla : Sla.report;
  epoch_log : Sla.epoch list;
  repairs : int;  (** Full repairs adopted. *)
  repair_attempts : int;  (** Including degraded and infeasible ones. *)
  backoff_skips : int;
      (** Epochs where a suspect was left alone because a backoff
          cooldown was still running. *)
  shed : (int * int) list;
      (** (topic, subscriber) pairs given up in degraded mode. *)
  vms_added : int;  (** Replacement VMs deployed across all repairs. *)
  verified : (unit, string) result;
      (** Final plan vs {!Mcss_core.Verifier} — [Error] if the drill
          ended degraded (shed pairs cannot verify). *)
}

val run :
  ?obs:Mcss_obs.Registry.t ->
  ?policy:policy ->
  ?zones:int ->
  ?log:(string -> unit) ->
  campaign:Failure_model.campaign ->
  Mcss_core.Problem.t ->
  outcome
(** Solve the problem cold (GSP + CBP), then supervise it through the
    campaign. [obs] (default {!Mcss_obs.Registry.noop}) records one
    [epoch] span per epoch (with the inner [simulate] and [replan]
    children), the campaign counters ([resilience.epochs],
    [resilience.suspect_detections], [resilience.repair_attempts],
    [resilience.repairs_adopted], [resilience.backoff_skips],
    [resilience.degraded_rebuilds], [resilience.vms_added],
    [resilience.pairs_shed], [resilience.violation_epochs]) and the
    [resilience.recovery_latency_epochs] histogram (epochs from first
    suspicion to an adopted repair).
    [zones] (default 1) scopes {!Failure_model.Zone_burst}
    faults. [log] receives one deterministic line per notable event
    (epoch summary, detection, repair decision). *)

val evaluate :
  ?obs:Mcss_obs.Registry.t ->
  ?policy:policy ->
  ?zones:int ->
  campaign:Failure_model.campaign ->
  Mcss_core.Problem.t ->
  Mcss_core.Allocation.t ->
  Sla.report
(** Passive drill: meter a {e fixed} allocation (e.g. a k-redundant
    placement from {!Redundancy.place}) through the campaign with no
    recovery, and report the SLA. This is how replicas are compared
    against repairs. [obs] is forwarded to each epoch's
    {!Mcss_sim.Simulator.run}. *)

val backoff : policy -> Mcss_prng.Rng.t -> failures:int -> int
(** Cooldown epochs after the [failures]-th consecutive failed repair:
    [min max_backoff (base_backoff · 2^(failures-1))] plus a jitter draw
    in [[0, jitter]]. Exposed for tests. *)
