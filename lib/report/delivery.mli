(** The shared delivery/drop accounting schema.

    Three substrates meter the same pub/sub traffic at different levels
    of realism — the counting {!Mcss_sim.Simulator}, the in-memory
    {!Mcss_broker.Fleet}, and the live [Mcss_dataplane] broker ledger —
    and reconciliation compares them pairwise. They all report this one
    record, so a comparison is field-by-field on identical meanings
    rather than a per-substrate translation. *)

type totals = {
  published : int;  (** Events generated at the sources. *)
  handoffs : int;
      (** Event-to-VM handoffs: one per (event, VM hosting the topic)
          copy — the routed/ingress count, [>= published] when every
          topic is placed somewhere. *)
  delivered : int;
      (** Event copies handed to subscribers — one per (event, placed
          pair) that actually arrived. *)
  dropped : int;
      (** Event copies that should have reached a subscriber but did
          not: outage losses in the simulator, queue-overflow and
          no-subscriber drops in the live dataplane. Always [0] for the
          idealised in-memory fleet. *)
}

val zero : totals

val add : totals -> totals -> totals
(** Field-wise sum (merging per-VM or per-window ledgers). *)

val sub : totals -> totals -> totals
(** Field-wise difference — the traffic of a window given cumulative
    snapshots at its ends. *)

val expected : totals -> int
(** [delivered + dropped]: the copies that were owed to subscribers. *)

val loss_fraction : totals -> float
(** [dropped / expected], [0.] when nothing was owed. *)

val fields : totals -> (string * int) list
(** [(name, value)] in declaration order — for JSON or table rendering
    without this library depending on a codec. *)

val pp : Format.formatter -> totals -> unit
(** One line: [published P, handoffs H, delivered D, dropped X]. *)
