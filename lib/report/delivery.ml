type totals = {
  published : int;
  handoffs : int;
  delivered : int;
  dropped : int;
}

let zero = { published = 0; handoffs = 0; delivered = 0; dropped = 0 }

let add a b =
  {
    published = a.published + b.published;
    handoffs = a.handoffs + b.handoffs;
    delivered = a.delivered + b.delivered;
    dropped = a.dropped + b.dropped;
  }

let sub a b =
  {
    published = a.published - b.published;
    handoffs = a.handoffs - b.handoffs;
    delivered = a.delivered - b.delivered;
    dropped = a.dropped - b.dropped;
  }

let expected t = t.delivered + t.dropped

let loss_fraction t =
  let owed = expected t in
  if owed = 0 then 0. else float_of_int t.dropped /. float_of_int owed

let fields t =
  [
    ("published", t.published);
    ("handoffs", t.handoffs);
    ("delivered", t.delivered);
    ("dropped", t.dropped);
  ]

let pp ppf t =
  Format.fprintf ppf "published %d, handoffs %d, delivered %d, dropped %d"
    t.published t.handoffs t.delivered t.dropped
