(** Stage 1 of the MCSS heuristic (§III-A): choose, for every subscriber,
    a subset of its interests whose total event rate reaches the
    subscriber-specific threshold [τ_v], minimising bandwidth.

    Three selectors are provided:
    - {!gsp} — GreedySelectPairs (Alg. 2), driven by the benefit-cost ratio
      of Alg. 1, in an O(Σ_v |T_v| log |T_v|) formulation;
    - {!gsp_reference} — a literal transcription of Alg. 2's quadratic
      rescan loop, kept as an executable specification (tests assert it
      picks exactly the same sets as {!gsp});
    - {!rsp} — RandomSelectPairs (Alg. 6), the paper's naive baseline that
      takes interests in arbitrary order until the threshold is met.

    Additionally {!optimal_per_subscriber} solves each subscriber's
    min-cost covering subproblem exactly by dynamic programming (the paper
    notes the per-subscriber problem is a knapsack variant "that can be
    solved optimally using dynamic programming" but deems it too slow at
    scale); it is used in ablation experiments to measure how far GSP's
    greedy choice is from per-subscriber optimal. *)

type t = {
  chosen : Mcss_workload.Workload.topic array array;
      (** Per subscriber, the selected topics, sorted ascending. *)
  selected_rate : float array;
      (** Per subscriber, [Σ_{t chosen} ev_t]. *)
  num_pairs : int;  (** Total number of selected (t, v) pairs. *)
  outgoing_rate : float;
      (** [Σ_{(t,v) selected} ev_t] — the outgoing-traffic part of the
          bandwidth any allocation of this selection must carry. *)
}

val gsp : ?obs:Mcss_obs.Registry.t -> Problem.t -> t
(** GreedySelectPairs. Deterministic: ties in the benefit-cost ratio are
    broken towards the lowest topic id, matching {!gsp_reference}.
    [obs] (default {!Mcss_obs.Registry.noop}) receives Stage-1 work
    counters: [stage1.subscribers], [stage1.pairs_selected],
    [stage1.candidates_considered], [stage1.eligible_set_ops] and the
    [stage1.outgoing_rate] gauge. *)

val gsp_parallel : ?obs:Mcss_obs.Registry.t -> ?domains:int -> Problem.t -> t
(** {!gsp} fanned out over OCaml 5 domains — subscribers are independent
    in Stage 1, so the selection parallelises embarrassingly. Produces
    {e exactly} the same selection as {!gsp} (property-tested); the
    paper's 25-minute full-Twitter Stage 1 is the part this accelerates.
    [domains] defaults to [Domain.recommended_domain_count ()], and
    values <= 1 fall back to the sequential code. *)

val reselect :
  ?obs:Mcss_obs.Registry.t -> Problem.t -> previous:t -> dirty:bool array -> t
(** Incremental GSP for the planning engine: re-run {!gsp}'s
    per-subscriber kernel only for the subscribers marked [dirty] and
    share [previous]'s arrays for the rest. Because the kernel is a
    deterministic function of the subscriber's interests, those topics'
    rates, and [τ], the result is {e bit-for-bit} the full {!gsp} of the
    new problem whenever [dirty] covers every subscriber whose inputs
    changed (property-tested). [dirty] must have exactly
    [num_subscribers] entries and mark every subscriber beyond
    [previous]'s range; raises [Invalid_argument] otherwise. [obs]
    receives Stage-1 counters for the re-run subscribers only. *)

val gsp_reference : ?obs:Mcss_obs.Registry.t -> Problem.t -> t
(** Literal Alg. 2: recompute every remaining ratio after each pick and
    scan for the argmax (first maximum in topic-id order). Quadratic per
    subscriber; use only on small instances. *)

val rsp : ?obs:Mcss_obs.Registry.t -> Problem.t -> t
(** RandomSelectPairs: interests in topic-id order until satisfied. *)

val rsp_shuffled : ?obs:Mcss_obs.Registry.t -> Mcss_prng.Rng.t -> Problem.t -> t
(** RSP with each subscriber's interests visited in random order. *)

val optimal_per_subscriber : ?max_budget:int -> Problem.t -> t option
(** Exact per-subscriber selection by DP over integer event rates,
    minimising the selected rate subject to reaching [τ_v]. Returns [None]
    if any event rate is not (close to) a nonnegative integer or if some
    [⌈τ_v⌉] exceeds [max_budget] (default 100_000), which bounds the DP
    table. *)

val benefit_cost_ratio : ev:float -> rem:float -> float
(** Alg. 1: [min(1, ev/rem) / (2·ev)] when [rem > 0], else [0]. Exposed
    for unit tests. *)

val satisfies : Problem.t -> t -> bool
(** Every subscriber's selected rate reaches [τ_v] (up to epsilon) — the
    Stage-1 postcondition [Σ_v f_v = |V|]. *)

val pairs_by_topic :
  ?domains:int ->
  Problem.t ->
  t ->
  (Mcss_workload.Workload.topic * Mcss_workload.Workload.subscriber array) array
(** The selection regrouped per topic (only topics with at least one
    selected pair), topic ids ascending, subscriber ids ascending. This is
    the input view Stage-2's CustomBinPacking consumes. [domains] (default
    1) parallelises the counting sort over subscriber chunks with a
    deterministic per-chunk merge: the output is {e identical} at any
    domain count. *)

val iter_pairs :
  t -> (Mcss_workload.Workload.topic -> Mcss_workload.Workload.subscriber -> unit) -> unit
(** Iterate selected pairs grouped by subscriber, ascending ids — the
    arbitrary-order view FFBinPacking consumes. *)
