module Ibuf = struct
  type t = { mutable data : int array; mutable len : int }

  let create ?(capacity = 0) () = { data = Array.make (max capacity 0) 0; len = 0 }
  let length t = t.len

  let check t i =
    if i < 0 || i >= t.len then
      invalid_arg (Printf.sprintf "Arena.Ibuf: index %d out of %d" i t.len)

  let get t i = check t i; t.data.(i)
  let set t i x = check t i; t.data.(i) <- x

  let grow t =
    let cap = Array.length t.data in
    let data = Array.make (if cap = 0 then 16 else 2 * cap) 0 in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data

  let push t x =
    if t.len = Array.length t.data then grow t;
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let push_of t ~src i = push t (get src i)
  let clear t = t.len <- 0

  let sub t ~pos ~len =
    if pos < 0 || len < 0 || pos + len > t.len then
      invalid_arg "Arena.Ibuf.sub: range out of bounds";
    Array.sub t.data pos len

  let to_array t = Array.sub t.data 0 t.len
end

module Fbuf = struct
  type t = { mutable data : float array; mutable len : int }

  let create ?(capacity = 0) () = { data = Array.make (max capacity 0) 0.; len = 0 }
  let length t = t.len

  let check t i =
    if i < 0 || i >= t.len then
      invalid_arg (Printf.sprintf "Arena.Fbuf: index %d out of %d" i t.len)

  let get t i = check t i; t.data.(i)
  let set t i x = check t i; t.data.(i) <- x
  let add t i x = check t i; t.data.(i) <- t.data.(i) +. x

  let grow t =
    let cap = Array.length t.data in
    let data = Array.make (if cap = 0 then 16 else 2 * cap) 0. in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data

  let push t x =
    if t.len = Array.length t.data then grow t;
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let push_of t ~src i = push t (get src i)
  let clear t = t.len <- 0

  let sum t =
    let acc = ref 0. in
    for i = 0 to t.len - 1 do
      acc := !acc +. t.data.(i)
    done;
    !acc

  let to_array t = Array.sub t.data 0 t.len
end

module Stamp_set = struct
  type t = { mutable stamps : int array; mutable gen : int }

  (* gen starts at 1 so a fresh 0-filled slab means "nothing present". *)
  let create n =
    if n < 0 then invalid_arg "Arena.Stamp_set.create: negative universe";
    { stamps = Array.make n 0; gen = 1 }

  let capacity t = Array.length t.stamps

  let ensure t n =
    if n > Array.length t.stamps then begin
      let fresh = Array.make (max n (2 * Array.length t.stamps)) 0 in
      Array.blit t.stamps 0 fresh 0 (Array.length t.stamps);
      t.stamps <- fresh
    end

  let mem t i = t.stamps.(i) = t.gen
  let add t i = t.stamps.(i) <- t.gen
  let clear t = t.gen <- t.gen + 1
end

module Int_table = struct
  (* keys: slot state. empty = min_int, tombstone = min_int + 1, else the
     key itself. vals.(i) is meaningful only for live slots. *)
  let empty_slot = min_int
  let tombstone = min_int + 1
  let absent = -1

  type t = {
    mutable keys : int array;
    mutable vals : int array;
    mutable live : int;  (* live bindings *)
    mutable used : int;  (* live + tombstones *)
  }

  let next_pow2 n =
    let rec go p = if p >= n then p else go (2 * p) in
    go 16

  let create ?(capacity = 16) () =
    let cap = next_pow2 (max capacity 16) in
    { keys = Array.make cap empty_slot; vals = Array.make cap 0; live = 0; used = 0 }

  let length t = t.live

  (* Fibonacci hashing spreads sequential keys across the table. *)
  let slot_of t key =
    let mask = Array.length t.keys - 1 in
    (key * 0x2545F4914F6CDD1D) lsr 8 land mask

  let rec probe_find t key i =
    let k = t.keys.(i) in
    if k = key then i
    else if k = empty_slot then -1
    else probe_find t key ((i + 1) land (Array.length t.keys - 1))

  let find t key =
    if key < 0 then absent
    else
      let i = probe_find t key (slot_of t key) in
      if i < 0 then absent else t.vals.(i)

  let mem t key = find t key <> absent

  let rec insert_fresh t key v i =
    let k = t.keys.(i) in
    if k = empty_slot || k = tombstone then begin
      if k = empty_slot then t.used <- t.used + 1;
      t.keys.(i) <- key;
      t.vals.(i) <- v;
      t.live <- t.live + 1
    end
    else insert_fresh t key v ((i + 1) land (Array.length t.keys - 1))

  let rehash t cap =
    let old_keys = t.keys and old_vals = t.vals in
    t.keys <- Array.make cap empty_slot;
    t.vals <- Array.make cap 0;
    t.live <- 0;
    t.used <- 0;
    Array.iteri
      (fun i k ->
        if k <> empty_slot && k <> tombstone then
          insert_fresh t k old_vals.(i) (slot_of t k))
      old_keys

  let maybe_grow t =
    let cap = Array.length t.keys in
    if 4 * (t.used + 1) > 3 * cap then
      (* Grow only when mostly live; a tombstone-heavy table rehashes in
         place to shed the dead slots. *)
      rehash t (if 2 * t.live >= t.used then 2 * cap else cap)

  let set t key v =
    if key < 0 then invalid_arg "Arena.Int_table.set: negative key";
    if v = absent then invalid_arg "Arena.Int_table.set: reserved value";
    let i = probe_find t key (slot_of t key) in
    if i >= 0 then t.vals.(i) <- v
    else begin
      maybe_grow t;
      insert_fresh t key v (slot_of t key)
    end

  let remove t key =
    if key >= 0 then begin
      let i = probe_find t key (slot_of t key) in
      if i >= 0 then begin
        t.keys.(i) <- tombstone;
        t.live <- t.live - 1
      end
    end

  let reset t =
    Array.fill t.keys 0 (Array.length t.keys) empty_slot;
    t.live <- 0;
    t.used <- 0

  let iter f t =
    Array.iteri
      (fun i k -> if k <> empty_slot && k <> tombstone then f k t.vals.(i))
      t.keys

  let map_values_inplace f t =
    Array.iteri
      (fun i k -> if k <> empty_slot && k <> tombstone then t.vals.(i) <- f t.vals.(i))
      t.keys
end

let pair_limit = 1 lsl 31

let encode_pair ~topic ~subscriber =
  if topic < 0 || subscriber < 0 || topic >= pair_limit || subscriber >= pair_limit
  then invalid_arg "Arena.encode_pair: id out of range";
  (topic lsl 31) lor subscriber

let decode_pair key = (key lsr 31, key land (pair_limit - 1))

module Csr = struct
  type t = { offs : int array; data : int array }

  let rows t = Array.length t.offs - 1
  let row_length t i = t.offs.(i + 1) - t.offs.(i)
  let row t i = Array.sub t.data t.offs.(i) (row_length t i)

  let iter_row t i f =
    for j = t.offs.(i) to t.offs.(i + 1) - 1 do
      f t.data.(j)
    done

  let offsets_of_counts counts =
    let n = Array.length counts in
    let offs = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      offs.(i + 1) <- offs.(i) + counts.(i)
    done;
    offs

  let build_rows ~rows ~counts ~fill =
    if Array.length counts <> rows then
      invalid_arg "Arena.Csr.build_rows: counts length mismatch";
    let offs = offsets_of_counts counts in
    let data = Array.make offs.(rows) 0 in
    (* cursor.(r) = next write position for row r. *)
    let cursor = Array.sub offs 0 rows in
    let write ~row x =
      let pos = cursor.(row) in
      if pos >= offs.(row + 1) then
        invalid_arg (Printf.sprintf "Arena.Csr.build_rows: row %d overfilled" row);
      data.(pos) <- x;
      cursor.(row) <- pos + 1
    in
    fill ~write;
    Array.iteri
      (fun r c ->
        if c <> offs.(r + 1) then
          invalid_arg (Printf.sprintf "Arena.Csr.build_rows: row %d underfilled" r))
      cursor;
    { offs; data }
end
