module Workload = Mcss_workload.Workload
module Registry = Mcss_obs.Registry
module Counter = Mcss_obs.Metric.Counter

type topic_order = Arbitrary | Expensive_first | Heaviest_group_first
type vm_choice = First_fit | Most_free

type options = {
  topic_order : topic_order;
  vm_choice : vm_choice;
  cost_decision : bool;
}

let grouping_only =
  { topic_order = Arbitrary; vm_choice = First_fit; cost_decision = false }

let with_expensive_first = { grouping_only with topic_order = Expensive_first }
let with_most_free = { with_expensive_first with vm_choice = Most_free }
let with_cost_decision = { with_most_free with cost_decision = true }

(* How many whole VMs the group's leftover needs, by the paper's estimate
   ⌈count·ev / BC⌉ (Alg. 7 lines 3 and 17). *)
let estimated_new_vms ~capacity ~ev count =
  if count = 0 then 0 else int_of_float (ceil (float_of_int count *. ev /. capacity))

let cheaper_to_distribute (p : Problem.t) a ~ev ~count ~hosts =
  let capacity = p.Problem.capacity in
  let eps = Problem.epsilon p in
  let cur_bw = Allocation.total_load a in
  let cur_vms = Allocation.num_vms a in
  (* Option 1: fresh VMs only. Each new VM pays one incoming stream. *)
  let new_vms = estimated_new_vms ~capacity ~ev count in
  let new_cost =
    Problem.cost p ~vms:(cur_vms + new_vms)
      ~bandwidth:(cur_bw +. (float_of_int (count + new_vms) *. ev))
  in
  (* Option 2: spread over existing VMs (most-free first), overflow to
     fresh VMs. Simulated on a snapshot of the free capacities. *)
  let slots =
    Array.init cur_vms (fun id -> (Allocation.free_of a id, hosts (Allocation.vm_at a id)))
  in
  Array.sort (fun (fa, _) (fb, _) -> compare fb fa) slots;
  let remaining = ref count in
  let spread_bw = ref 0. in
  Array.iter
    (fun (room, already_hosts) ->
      if !remaining > 0 then begin
        let outgoing_room = (room +. eps) -. (if already_hosts then 0. else ev) in
        if outgoing_room >= ev then begin
          let k = min !remaining (int_of_float (floor (outgoing_room /. ev))) in
          spread_bw :=
            !spread_bw +. (float_of_int k *. ev)
            +. (if already_hosts then 0. else ev);
          remaining := !remaining - k
        end
      end)
    slots;
  let extra_vms = estimated_new_vms ~capacity ~ev !remaining in
  let spread_cost =
    Problem.cost p ~vms:(cur_vms + extra_vms)
      ~bandwidth:
        (cur_bw +. !spread_bw +. (float_of_int (!remaining + extra_vms) *. ev))
  in
  spread_cost < new_cost

let order_groups opts groups =
  match opts.topic_order with
  | Arbitrary -> groups
  | Expensive_first ->
      let groups = Array.copy groups in
      (* Stable by (rate desc, id asc): compare on (-ev, id). *)
      Array.sort
        (fun (ta, _, eva) (tb, _, evb) -> compare (-.eva, ta) (-.evb, tb))
        groups;
      groups
  | Heaviest_group_first ->
      let groups = Array.copy groups in
      let volume (_, subs, ev) = float_of_int (Array.length subs) *. ev in
      Array.sort
        (fun ((ta, _, _) as a) ((tb, _, _) as b) ->
          compare (-.volume a, ta) (-.volume b, tb))
        groups;
      groups

(* Stage-2 work counts: plain mutable ints on the packing path, flushed
   once per run together with the per-VM residual-capacity histogram. *)
type s2_counts = {
  mutable placements : int;
  mutable whole_group_fits : int;
  mutable decision_distribute : int;
  mutable decision_deploy : int;
  mutable cost_decisions : int;
}

let flush_stage2 obs (p : Problem.t) a ~groups counts =
  let c name help v = Counter.add (Registry.counter obs ~help name) v in
  c "stage2.groups" "Topic groups packed by Stage 2" groups;
  c "stage2.vms_deployed" "VMs opened by Stage 2" (Allocation.num_vms a);
  c "stage2.placements" "Allocation.place calls (pair batches placed)" counts.placements;
  c "stage2.whole_group_fits" "Groups placed whole on the current VM" counts.whole_group_fits;
  c "stage2.decision_distribute" "Groups spread over existing VMs" counts.decision_distribute;
  c "stage2.decision_deploy" "Groups sent straight to fresh VMs" counts.decision_deploy;
  c "stage2.cost_decisions" "Alg. 7 cost comparisons evaluated" counts.cost_decisions;
  if Registry.enabled obs then begin
    let h =
      Registry.histogram obs
        ~buckets:(Mcss_obs.Metric.Histogram.linear ~lo:0.1 ~hi:1.0 ~buckets:10)
        ~help:"Residual capacity fraction per deployed VM" "stage2.vm_residual_frac"
    in
    Array.iter
      (fun vm ->
        Mcss_obs.Metric.Histogram.observe h (Allocation.free a vm /. p.Problem.capacity))
      (Allocation.vms a)
  end

let run ?(obs = Registry.noop) ?(domains = 1) (p : Problem.t) (s : Selection.t) opts =
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let counts =
    {
      placements = 0;
      whole_group_fits = 0;
      decision_distribute = 0;
      decision_deploy = 0;
      cost_decisions = 0;
    }
  in
  let a = Allocation.create ~capacity:p.Problem.capacity in
  let groups =
    Selection.pairs_by_topic ~domains p s
    |> Array.map (fun (t, subs) -> (t, subs, Workload.event_rate w t))
  in
  let groups = order_groups opts groups in
  (* The most recently deployed VM; a whole group that fits goes there. *)
  let current = ref None in
  let deploy_for ~topic ~ev ~subs ~from =
    let n = Array.length subs in
    let from = ref from in
    while !from < n do
      let vm = Allocation.deploy a in
      current := Some vm;
      let k = Allocation.max_pairs_that_fit a vm ~topic ~ev ~eps in
      if k = 0 then
        raise
          (Problem.Infeasible
             (Printf.sprintf "topic %d: a single pair needs %g bandwidth but BC is %g"
                topic (2. *. ev) p.Problem.capacity));
      let k = min k (n - !from) in
      Allocation.place a vm ~topic ~ev ~subscribers:subs ~from:!from ~count:k;
      counts.placements <- counts.placements + 1;
      from := !from + k
    done
  in
  (* Spread the group over already-deployed VMs until none can take a
     pair; each VM is picked at most once per topic because we fill it. *)
  let distribute ~topic ~ev ~subs =
    let n = Array.length subs in
    let from = ref 0 in
    let progress = ref true in
    while !from < n && !progress do
      (* Scan the fleet by id over the flat residual arrays — no per-pass
         snapshot of the VM handles. Ties in [Most_free] keep the lowest
         id, as the left-to-right fold always did. *)
      let nv = Allocation.num_vms a in
      let fits id =
        Allocation.max_pairs_that_fit a (Allocation.vm_at a id) ~topic ~ev ~eps > 0
      in
      let candidate =
        match opts.vm_choice with
        | First_fit ->
            let rec first id = if id >= nv then -1 else if fits id then id else first (id + 1) in
            first 0
        | Most_free ->
            let best = ref (-1) in
            for id = 0 to nv - 1 do
              if fits id
                 && (!best < 0 || Allocation.free_of a !best < Allocation.free_of a id)
              then best := id
            done;
            !best
      in
      if candidate < 0 then progress := false
      else begin
        let vm = Allocation.vm_at a candidate in
        let k =
          min (Allocation.max_pairs_that_fit a vm ~topic ~ev ~eps) (n - !from)
        in
        Allocation.place a vm ~topic ~ev ~subscribers:subs ~from:!from ~count:k;
        counts.placements <- counts.placements + 1;
        from := !from + k
      end
    done;
    if !from < n then deploy_for ~topic ~ev ~subs ~from:!from
  in
  Array.iter
    (fun (topic, subs, ev) ->
      let n = Array.length subs in
      let fits_current =
        match !current with
        | Some vm ->
            if Allocation.place_delta vm ~topic ~ev ~count:n <= Allocation.free a vm +. eps
            then Some vm
            else None
        | None -> None
      in
      match fits_current with
      | Some vm ->
          Allocation.place a vm ~topic ~ev ~subscribers:subs ~from:0 ~count:n;
          counts.placements <- counts.placements + 1;
          counts.whole_group_fits <- counts.whole_group_fits + 1
      | None ->
          let spread =
            Allocation.num_vms a > 0
            && (not opts.cost_decision
               ||
               (counts.cost_decisions <- counts.cost_decisions + 1;
                cheaper_to_distribute p a ~ev ~count:n
                  ~hosts:(fun vm -> Allocation.hosts_topic vm topic)))
          in
          if spread then begin
            counts.decision_distribute <- counts.decision_distribute + 1;
            distribute ~topic ~ev ~subs
          end
          else begin
            counts.decision_deploy <- counts.decision_deploy + 1;
            deploy_for ~topic ~ev ~subs ~from:0
          end)
    groups;
  flush_stage2 obs p a ~groups:(Array.length groups) counts;
  a
