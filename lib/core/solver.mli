(** The end-to-end two-stage MCSS heuristic (§III): pick a Stage-1
    selector and a Stage-2 packer, run them, and account the result.

    The paper's evaluation compares six configurations — the naive
    baseline plus the optimisation ladder (a)–(e) — which {!ladder}
    provides by name so benchmarks and the CLI share one source of
    truth. *)

type stage1 =
  | Gsp
  | Gsp_parallel  (** {!Selection.gsp_parallel} over all recommended domains. *)
  | Gsp_reference
  | Rsp
  | Global_greedy  (** The cross-subscriber extension, {!Global_greedy}. *)

type stage2 = Ffbp | Cbp of Cbp.options

type config = { stage1 : stage1; stage2 : stage2 }

type result = {
  selection : Selection.t;
  allocation : Allocation.t;
  num_vms : int;
  bandwidth : float;  (** [Σ_b bw_b], event units. *)
  cost : float;  (** [C1(num_vms) + C2(bandwidth)]. *)
  stage1_seconds : float;
  stage2_seconds : float;
}

val solve :
  ?obs:Mcss_obs.Registry.t -> ?config:config -> ?domains:int -> Problem.t -> result
(** Run both stages ([config] defaults to {!default}: GSP + full CBP).
    Raises {!Problem.Infeasible} when the workload cannot fit the VM
    capacity. [domains] (default 1) fans Stage 1 (and CBP's group
    construction) out over that many OCaml 5 domains; the result is
    {e bit-identical} to the sequential solve at any domain count
    (property-tested), so [--domains] is purely a wall-clock knob.
    [obs] (default {!Mcss_obs.Registry.noop}) records a
    [solve] span with [stage1]/[stage2] children, the Stage-1/Stage-2
    work counters of the chosen selector and packer, per-stage GC
    allocation phases ({!Mcss_obs.Gc_phase}), and the
    [solve.num_vms] / [solve.bandwidth_events] / [solve.cost_usd]
    result gauges. *)

val default : config
(** GSP + CBP with all optimisations (b)–(e). *)

val naive : config
(** RSP + FFBP, the paper's baseline. *)

val ladder : (string * config) list
(** The evaluation ladder, in the paper's order: ["RSP+FFBP"],
    ["(a) GSP+FFBP"], ["(b) +grouping"], ["(c) +expensive-first"],
    ["(d) +most-free-VM"], ["(e) +cost-decision"]. *)

val config_of_name : string -> config option
(** Look up a ladder entry by its name. *)

val pp_result : Format.formatter -> result -> unit
