module Workload = Mcss_workload.Workload
module Registry = Mcss_obs.Registry
module Counter = Mcss_obs.Metric.Counter
module Gauge = Mcss_obs.Metric.Gauge

type t = {
  chosen : Workload.topic array array;
  selected_rate : float array;
  num_pairs : int;
  outgoing_rate : float;
}

let benefit_cost_ratio ~ev ~rem =
  if rem > 0. then Float.min 1. (ev /. rem) /. (2. *. ev) else 0.

(* Both GSP implementations order candidates by the exact key
   (max(ev_t, rem_v), topic id), ascending: minimising max(ev, rem) is
   the same as maximising the Alg. 1 ratio min(1, ev/rem) / (2 ev) =
   1 / (2 max(ev, rem)), but comparing the key avoids float-division
   rounding breaking mathematically exact ties. *)
let gsp_key ~ev ~rem = Float.max ev rem

(* Per-run Stage-1 work counts, accumulated in plain mutable ints on the
   hot path and flushed to the registry once per selection (so the
   enabled-path overhead stays a handful of integer writes per
   subscriber, and the disabled path costs the same). *)
type s1_counts = { mutable considered : int; mutable set_ops : int }

let new_counts () = { considered = 0; set_ops = 0 }

let flush_stage1 obs (s : t) counts =
  Counter.add
    (Registry.counter obs ~help:"Subscribers processed by Stage 1" "stage1.subscribers")
    (Array.length s.chosen);
  Counter.add
    (Registry.counter obs ~help:"(topic, subscriber) pairs accepted into the selection"
       "stage1.pairs_selected")
    s.num_pairs;
  Counter.add
    (Registry.counter obs
       ~help:"Candidate benefit/cost evaluations (Alg. 1 ratio recomputations)"
       "stage1.candidates_considered")
    counts.considered;
  Counter.add
    (Registry.counter obs
       ~help:"Eligible-set insertions and removals (the GSP heap-op analogue)"
       "stage1.eligible_set_ops")
    counts.set_ops;
  Gauge.set
    (Registry.gauge obs ~help:"Selected outgoing event rate (sum over pairs)"
       "stage1.outgoing_rate")
    s.outgoing_rate

let build ~workload per_subscriber =
  let n = Workload.num_subscribers workload in
  let chosen = Array.make n [||] in
  let selected_rate = Array.make n 0. in
  let num_pairs = ref 0 in
  let outgoing_rate = ref 0. in
  for v = 0 to n - 1 do
    let topics, rate = per_subscriber v in
    Array.sort compare topics;
    chosen.(v) <- topics;
    selected_rate.(v) <- rate;
    num_pairs := !num_pairs + Array.length topics;
    outgoing_rate := !outgoing_rate +. rate
  done;
  {
    chosen;
    selected_rate;
    num_pairs = !num_pairs;
    outgoing_rate = !outgoing_rate;
  }

(* Literal Alg. 2 for one subscriber: after every pick, re-derive every
   remaining candidate's ratio from the current remainder and rescan for
   the argmax (lowest topic id on ties). Quadratic in |T_v|. *)
let gsp_reference_subscriber w ~tau ~eps ~counts v =
  let tv = Workload.interests w v in
  let k = Array.length tv in
  let tau_v = Workload.tau_v w ~tau v in
  let selected = Array.make k false in
  let picked = ref [] in
  let sum = ref 0. in
  while !sum < tau_v -. eps do
    let rem = tau_v -. !sum in
    let best = ref (-1) in
    let best_key = ref infinity in
    for i = 0 to k - 1 do
      if not selected.(i) then begin
        counts.considered <- counts.considered + 1;
        let key = gsp_key ~ev:(Workload.event_rate w tv.(i)) ~rem in
        if key < !best_key then begin
          best_key := key;
          best := i
        end
      end
    done;
    (* τ_v <= Σ_{t∈T_v} ev_t guarantees a candidate remains. *)
    assert (!best >= 0);
    selected.(!best) <- true;
    picked := tv.(!best) :: !picked;
    sum := !sum +. Workload.event_rate w tv.(!best)
  done;
  (Array.of_list !picked, !sum)

let gsp_reference ?(obs = Registry.noop) (p : Problem.t) =
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let counts = new_counts () in
  let s = build ~workload:w (gsp_reference_subscriber w ~tau:p.Problem.tau ~eps ~counts) in
  flush_stage1 obs s counts;
  s

(* O(|T_v| log |T_v|) GSP for one subscriber.

   Invariant: while any unselected topic has ev <= rem, all such topics tie
   for the best ratio and the lowest id wins; once none is left, the best
   candidate is the unselected topic with the smallest rate (necessarily
   > rem), and picking it finishes the subscriber.

   The whole per-subscriber state lives in one reusable flat scratch
   (positions sorted by rate, a byte of state per position, cached rates):
   the eligible "set" is the live positions of the prefix [0, hi) of the
   rate order, and because [tv] is id-sorted its minimum element is just
   the first live position — a forward-only cursor, since the set only
   ever shrinks. No per-subscriber Hashtbl, Set nodes or closures. *)

(* Position states. A position leaves [live] exactly once, so the min-live
   and endgame cursors never need to back up. *)
let st_live = '\000'
let st_taken = '\001' (* selected into the result *)
let st_shrunk = '\002' (* dropped from the eligible prefix; endgame may still pick it *)

type gsp_scratch = {
  mutable order : int array; (* positions of tv, sorted by (rate, id) *)
  mutable state : Bytes.t;
  mutable rates : float array; (* rates.(i) = ev of tv.(i) *)
  picked : Arena.Ibuf.t;
}

let gsp_scratch () =
  { order = [||]; state = Bytes.empty; rates = [||]; picked = Arena.Ibuf.create () }

let ensure_scratch s k =
  if Array.length s.order < k then begin
    let cap = max k (2 * Array.length s.order) in
    s.order <- Array.make cap 0;
    s.state <- Bytes.make cap st_live;
    s.rates <- Array.make cap 0.
  end

(* Sort the first [k] entries of [s.order] by (rate, position): the same
   total order as sorting (ev i, i) tuples, without building tuples.
   Insertion sort below a small cutoff, else sort a copy (both realise
   the unique sorted sequence of a total order). *)
let sort_order s k =
  let cmp a b =
    let c = Float.compare s.rates.(a) s.rates.(b) in
    if c <> 0 then c else Int.compare a b
  in
  if k <= 32 then
    for i = 1 to k - 1 do
      let x = s.order.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && cmp s.order.(!j) x > 0 do
        s.order.(!j + 1) <- s.order.(!j);
        decr j
      done;
      s.order.(!j + 1) <- x
    done
  else begin
    let tmp = Array.sub s.order 0 k in
    Array.sort cmp tmp;
    Array.blit tmp 0 s.order 0 k
  end

let gsp_subscriber w ~tau ~eps ~counts ~scratch:s v =
  let tv = Workload.interests w v in
  let k = Array.length tv in
  let tau_v = Workload.tau_v w ~tau v in
  if tau_v <= eps then ([||], 0.)
  else begin
    ensure_scratch s k;
    Bytes.fill s.state 0 k st_live;
    for i = 0 to k - 1 do
      s.order.(i) <- i;
      s.rates.(i) <- Workload.event_rate w tv.(i)
    done;
    sort_order s k;
    Arena.Ibuf.clear s.picked;
    let sum = ref 0. in
    let rem () = tau_v -. !sum in
    (* [hi] = number of leading entries of the rate order with ev <= rem;
       [elig] = live positions among them (= the eligible-set size). *)
    let hi = ref 0 in
    let elig = ref 0 in
    while !hi < k && s.rates.(s.order.(!hi)) <= rem () do
      counts.set_ops <- counts.set_ops + 1;
      incr hi;
      incr elig
    done;
    (* Positions whose rate already exceeds τ_v were never eligible: mark
       them up front so [st_live] means exactly "in the eligible set"
       (the endgame below may still pick shrunk positions). *)
    for j = !hi to k - 1 do
      Bytes.set s.state s.order.(j) st_shrunk
    done;
    let shrink () =
      while !hi > 0 && s.rates.(s.order.(!hi - 1)) > rem () do
        decr hi;
        let pos = s.order.(!hi) in
        if Bytes.get s.state pos = st_live then begin
          Bytes.set s.state pos st_shrunk;
          decr elig
        end;
        counts.set_ops <- counts.set_ops + 1
      done
    in
    let select pos =
      Bytes.set s.state pos st_taken;
      Arena.Ibuf.push s.picked tv.(pos);
      sum := !sum +. s.rates.(pos)
    in
    (* Eligible positions form a shrinking subset, so the min-live cursor
       only moves forward; likewise the endgame cursor over the rate
       order skips already-taken entries. *)
    let minpos = ref 0 in
    let endgame = ref 0 in
    while !sum < tau_v -. eps do
      counts.considered <- counts.considered + 1;
      if !elig > 0 then begin
        while Bytes.get s.state !minpos <> st_live do incr minpos done;
        let pos = !minpos in
        counts.set_ops <- counts.set_ops + 1;
        decr elig;
        select pos;
        shrink ()
      end
      else begin
        (* All unselected rates exceed rem: take the smallest, done. *)
        while !endgame < k && Bytes.get s.state s.order.(!endgame) = st_taken do
          incr endgame
        done;
        assert (!endgame < k);
        select s.order.(!endgame)
      end
    done;
    (Arena.Ibuf.to_array s.picked, !sum)
  end

let gsp ?(obs = Registry.noop) (p : Problem.t) =
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let counts = new_counts () in
  let scratch = gsp_scratch () in
  let s =
    build ~workload:w (gsp_subscriber w ~tau:p.Problem.tau ~eps ~counts ~scratch)
  in
  flush_stage1 obs s counts;
  s

(* Parallel GSP: subscribers are independent, so each domain fills a
   disjoint slice of the result arrays; the aggregate sums are folded
   sequentially afterwards so the result is bit-identical to [gsp]. *)
let gsp_parallel ?(obs = Registry.noop) ?domains (p : Problem.t) =
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let n = Workload.num_subscribers w in
  let domains =
    match domains with Some d -> d | None -> Domain.recommended_domain_count ()
  in
  if domains <= 1 || n < 2 then gsp ~obs p
  else begin
    let domains = min domains n in
    let chosen = Array.make n [||] in
    let rates = Array.make n 0. in
    let chunk = (n + domains - 1) / domains in
    (* One counts record per domain: no shared mutable state across
       domains; merged sequentially after the join. *)
    let domain_counts = Array.init domains (fun _ -> new_counts ()) in
    let worker d () =
      let lo = d * chunk in
      let hi = min n (lo + chunk) - 1 in
      let scratch = gsp_scratch () in
      for v = lo to hi do
        let topics, rate =
          gsp_subscriber w ~tau:p.Problem.tau ~eps ~counts:domain_counts.(d) ~scratch v
        in
        Array.sort compare topics;
        chosen.(v) <- topics;
        rates.(v) <- rate
      done
    in
    let spawned =
      List.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1)))
    in
    worker 0 ();
    List.iter Domain.join spawned;
    let num_pairs = ref 0 in
    let outgoing_rate = ref 0. in
    for v = 0 to n - 1 do
      num_pairs := !num_pairs + Array.length chosen.(v);
      outgoing_rate := !outgoing_rate +. rates.(v)
    done;
    let s =
      {
        chosen;
        selected_rate = rates;
        num_pairs = !num_pairs;
        outgoing_rate = !outgoing_rate;
      }
    in
    let merged = new_counts () in
    Array.iter
      (fun c ->
        merged.considered <- merged.considered + c.considered;
        merged.set_ops <- merged.set_ops + c.set_ops)
      domain_counts;
    flush_stage1 obs s merged;
    s
  end

(* Incremental GSP: [gsp_subscriber] is a deterministic function of the
   subscriber's interest set, those topics' rates, tau and eps — so a
   subscriber none of whose inputs changed keeps its exact old selection,
   and re-running only the dirty ones reproduces [gsp] bit-for-bit. *)
let reselect ?(obs = Registry.noop) (p : Problem.t) ~previous ~dirty =
  let w = p.Problem.workload in
  let n = Workload.num_subscribers w in
  if Array.length dirty <> n then
    invalid_arg
      (Printf.sprintf "Selection.reselect: dirty has %d entries for %d subscribers"
         (Array.length dirty) n);
  let old_n = Array.length previous.chosen in
  let eps = Problem.epsilon p in
  let counts = new_counts () in
  let scratch = gsp_scratch () in
  let chosen = Array.make n [||] in
  let selected_rate = Array.make n 0. in
  let num_pairs = ref 0 in
  let outgoing_rate = ref 0. in
  for v = 0 to n - 1 do
    if dirty.(v) then begin
      let topics, rate = gsp_subscriber w ~tau:p.Problem.tau ~eps ~counts ~scratch v in
      Array.sort compare topics;
      chosen.(v) <- topics;
      selected_rate.(v) <- rate
    end
    else begin
      if v >= old_n then
        invalid_arg
          (Printf.sprintf "Selection.reselect: new subscriber %d not marked dirty" v);
      chosen.(v) <- previous.chosen.(v);
      selected_rate.(v) <- previous.selected_rate.(v)
    end;
    num_pairs := !num_pairs + Array.length chosen.(v);
    outgoing_rate := !outgoing_rate +. selected_rate.(v)
  done;
  let s =
    {
      chosen;
      selected_rate;
      num_pairs = !num_pairs;
      outgoing_rate = !outgoing_rate;
    }
  in
  flush_stage1 obs s counts;
  s

let rsp_order w ~tau ~eps ~counts order v =
  let tv = order v in
  let tau_v = Workload.tau_v w ~tau v in
  let picked = ref [] in
  let sum = ref 0. in
  let i = ref 0 in
  while !sum < tau_v -. eps && !i < Array.length tv do
    counts.considered <- counts.considered + 1;
    let t = tv.(!i) in
    picked := t :: !picked;
    sum := !sum +. Workload.event_rate w t;
    incr i
  done;
  (Array.of_list !picked, !sum)

let rsp ?(obs = Registry.noop) (p : Problem.t) =
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let counts = new_counts () in
  let s = build ~workload:w (rsp_order w ~tau:p.Problem.tau ~eps ~counts (Workload.interests w)) in
  flush_stage1 obs s counts;
  s

let rsp_shuffled ?(obs = Registry.noop) rng (p : Problem.t) =
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let order v =
    let tv = Array.copy (Workload.interests w v) in
    Mcss_prng.Rng.shuffle_in_place rng tv;
    tv
  in
  let counts = new_counts () in
  let s = build ~workload:w (rsp_order w ~tau:p.Problem.tau ~eps ~counts order) in
  flush_stage1 obs s counts;
  s

let integral_rate ev =
  let r = Float.round ev in
  if Float.abs (ev -. r) <= 1e-9 && r >= 1. then Some (int_of_float r) else None

(* Min-cost covering knapsack per subscriber: dp.(j) = least total selected
   rate achieving coverage >= j, with transitions clamped at the target.
   Backpointers record the item used so the chosen set can be rebuilt. *)
let optimal_subscriber w ~tau rates v =
  let tv = Workload.interests w v in
  let k = Array.length tv in
  let tau_v = Workload.tau_v w ~tau v in
  let target = int_of_float (ceil (tau_v -. 1e-9)) in
  if target <= 0 then ([||], 0.)
  else begin
    let dp = Array.make (target + 1) max_int in
    let back_item = Array.make (target + 1) (-1) in
    let back_prev = Array.make (target + 1) (-1) in
    dp.(0) <- 0;
    for i = 0 to k - 1 do
      let r = rates.(tv.(i)) in
      (* Downward iteration with strictly increasing transitions means a
         cell written in this pass is never read in the same pass, so no
         item is used twice. *)
      for j = target - 1 downto 0 do
        if dp.(j) < max_int then begin
          let nj = min target (j + r) in
          if dp.(j) + r < dp.(nj) then begin
            dp.(nj) <- dp.(j) + r;
            back_item.(nj) <- i;
            back_prev.(nj) <- j
          end
        end
      done
    done;
    assert (dp.(target) < max_int);
    let picked = ref [] in
    let j = ref target in
    while !j > 0 do
      picked := tv.(back_item.(!j)) :: !picked;
      j := back_prev.(!j)
    done;
    let topics = Array.of_list !picked in
    let rate = Array.fold_left (fun acc t -> acc +. float_of_int rates.(t)) 0. topics in
    (topics, rate)
  end

let optimal_per_subscriber ?(max_budget = 100_000) (p : Problem.t) =
  let w = p.Problem.workload in
  let rates_opt =
    Array.fold_left
      (fun acc ev ->
        match (acc, integral_rate ev) with
        | Some rs, Some r -> Some (r :: rs)
        | _ -> None)
      (Some []) (Workload.event_rates w)
  in
  match rates_opt with
  | None -> None
  | Some rs ->
      let rates = Array.of_list (List.rev rs) in
      let too_big = ref false in
      for v = 0 to Workload.num_subscribers w - 1 do
        if ceil (Workload.tau_v w ~tau:p.Problem.tau v) > float_of_int max_budget then
          too_big := true
      done;
      if !too_big then None
      else Some (build ~workload:w (optimal_subscriber w ~tau:p.Problem.tau rates))

let satisfies (p : Problem.t) s =
  let eps = Problem.epsilon p in
  let ok = ref true in
  Array.iteri
    (fun v rate -> if rate +. eps < Problem.tau_v p v then ok := false)
    s.selected_rate;
  !ok

(* Counting sort of the selected pairs into per-topic subscriber rows.
   With [domains] > 1 the subscriber range is split into ordered chunks:
   each domain counts its chunk, the per-(topic, domain) counts are
   prefix-summed into disjoint write cursors, and each domain fills its
   own slice of every row — so the rows come out ascending-by-subscriber
   exactly as the sequential pass produces them, at any domain count. *)
let pairs_by_topic ?(domains = 1) (p : Problem.t) s =
  let w = p.Problem.workload in
  let nt = Workload.num_topics w in
  let n = Array.length s.chosen in
  let domains = max 1 (min domains n) in
  let counts = Array.make nt 0 in
  let subs =
    if domains <= 1 then begin
      Array.iter (Array.iter (fun t -> counts.(t) <- counts.(t) + 1)) s.chosen;
      let subs = Array.map (fun c -> Array.make (max c 1) 0) counts in
      let fill = Array.make nt 0 in
      Array.iteri
        (fun v tv ->
          Array.iter
            (fun t ->
              subs.(t).(fill.(t)) <- v;
              fill.(t) <- fill.(t) + 1)
            tv)
        s.chosen;
      subs
    end
    else begin
      let chunk = (n + domains - 1) / domains in
      let counts_d = Array.init domains (fun _ -> Array.make nt 0) in
      let each_chunk worker =
        let spawned =
          List.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
        in
        worker 0;
        List.iter Domain.join spawned
      in
      each_chunk (fun d ->
          let cd = counts_d.(d) in
          for v = d * chunk to min n ((d + 1) * chunk) - 1 do
            Array.iter (fun t -> cd.(t) <- cd.(t) + 1) s.chosen.(v)
          done);
      (* Per-row totals, and per-domain counts turned into write cursors:
         domain d starts where domains < d end within each row. *)
      for t = 0 to nt - 1 do
        let base = ref 0 in
        for d = 0 to domains - 1 do
          let c = counts_d.(d).(t) in
          counts_d.(d).(t) <- !base;
          base := !base + c
        done;
        counts.(t) <- !base
      done;
      let subs = Array.map (fun c -> Array.make (max c 1) 0) counts in
      each_chunk (fun d ->
          let cur = counts_d.(d) in
          for v = d * chunk to min n ((d + 1) * chunk) - 1 do
            Array.iter
              (fun t ->
                subs.(t).(cur.(t)) <- v;
                cur.(t) <- cur.(t) + 1)
              s.chosen.(v)
          done);
      subs
    end
  in
  let nonempty = ref 0 in
  Array.iter (fun c -> if c > 0 then incr nonempty) counts;
  let out = Array.make !nonempty (0, [||]) in
  let i = ref 0 in
  Array.iteri
    (fun t c ->
      if c > 0 then begin
        out.(!i) <- (t, subs.(t));
        incr i
      end)
    counts;
  out

let iter_pairs s f = Array.iteri (fun v tv -> Array.iter (fun t -> f t v) tv) s.chosen
