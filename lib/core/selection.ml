module Workload = Mcss_workload.Workload
module Registry = Mcss_obs.Registry
module Counter = Mcss_obs.Metric.Counter
module Gauge = Mcss_obs.Metric.Gauge

type t = {
  chosen : Workload.topic array array;
  selected_rate : float array;
  num_pairs : int;
  outgoing_rate : float;
}

let benefit_cost_ratio ~ev ~rem =
  if rem > 0. then Float.min 1. (ev /. rem) /. (2. *. ev) else 0.

(* Both GSP implementations order candidates by the exact key
   (max(ev_t, rem_v), topic id), ascending: minimising max(ev, rem) is
   the same as maximising the Alg. 1 ratio min(1, ev/rem) / (2 ev) =
   1 / (2 max(ev, rem)), but comparing the key avoids float-division
   rounding breaking mathematically exact ties. *)
let gsp_key ~ev ~rem = Float.max ev rem

(* Per-run Stage-1 work counts, accumulated in plain mutable ints on the
   hot path and flushed to the registry once per selection (so the
   enabled-path overhead stays a handful of integer writes per
   subscriber, and the disabled path costs the same). *)
type s1_counts = { mutable considered : int; mutable set_ops : int }

let new_counts () = { considered = 0; set_ops = 0 }

let flush_stage1 obs (s : t) counts =
  Counter.add
    (Registry.counter obs ~help:"Subscribers processed by Stage 1" "stage1.subscribers")
    (Array.length s.chosen);
  Counter.add
    (Registry.counter obs ~help:"(topic, subscriber) pairs accepted into the selection"
       "stage1.pairs_selected")
    s.num_pairs;
  Counter.add
    (Registry.counter obs
       ~help:"Candidate benefit/cost evaluations (Alg. 1 ratio recomputations)"
       "stage1.candidates_considered")
    counts.considered;
  Counter.add
    (Registry.counter obs
       ~help:"Eligible-set insertions and removals (the GSP heap-op analogue)"
       "stage1.eligible_set_ops")
    counts.set_ops;
  Gauge.set
    (Registry.gauge obs ~help:"Selected outgoing event rate (sum over pairs)"
       "stage1.outgoing_rate")
    s.outgoing_rate

let build ~workload per_subscriber =
  let n = Workload.num_subscribers workload in
  let chosen = Array.make n [||] in
  let selected_rate = Array.make n 0. in
  let num_pairs = ref 0 in
  let outgoing_rate = ref 0. in
  for v = 0 to n - 1 do
    let topics, rate = per_subscriber v in
    Array.sort compare topics;
    chosen.(v) <- topics;
    selected_rate.(v) <- rate;
    num_pairs := !num_pairs + Array.length topics;
    outgoing_rate := !outgoing_rate +. rate
  done;
  {
    chosen;
    selected_rate;
    num_pairs = !num_pairs;
    outgoing_rate = !outgoing_rate;
  }

(* Literal Alg. 2 for one subscriber: after every pick, re-derive every
   remaining candidate's ratio from the current remainder and rescan for
   the argmax (lowest topic id on ties). Quadratic in |T_v|. *)
let gsp_reference_subscriber w ~tau ~eps ~counts v =
  let tv = Workload.interests w v in
  let k = Array.length tv in
  let tau_v = Workload.tau_v w ~tau v in
  let selected = Array.make k false in
  let picked = ref [] in
  let sum = ref 0. in
  while !sum < tau_v -. eps do
    let rem = tau_v -. !sum in
    let best = ref (-1) in
    let best_key = ref infinity in
    for i = 0 to k - 1 do
      if not selected.(i) then begin
        counts.considered <- counts.considered + 1;
        let key = gsp_key ~ev:(Workload.event_rate w tv.(i)) ~rem in
        if key < !best_key then begin
          best_key := key;
          best := i
        end
      end
    done;
    (* τ_v <= Σ_{t∈T_v} ev_t guarantees a candidate remains. *)
    assert (!best >= 0);
    selected.(!best) <- true;
    picked := tv.(!best) :: !picked;
    sum := !sum +. Workload.event_rate w tv.(!best)
  done;
  (Array.of_list !picked, !sum)

let gsp_reference ?(obs = Registry.noop) (p : Problem.t) =
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let counts = new_counts () in
  let s = build ~workload:w (gsp_reference_subscriber w ~tau:p.Problem.tau ~eps ~counts) in
  flush_stage1 obs s counts;
  s

(* O(|T_v| log |T_v|) GSP for one subscriber.

   Invariant: while any unselected topic has ev <= rem, all such topics tie
   for the best ratio and the lowest id wins; once none is left, the best
   candidate is the unselected topic with the smallest rate (necessarily
   > rem), and picking it finishes the subscriber. We therefore keep the
   unselected topics with ev <= rem in an id-ordered set, shrinking it from
   the high-rate end as rem decreases. *)
module Int_set = Set.Make (Int)

let gsp_subscriber w ~tau ~eps ~counts v =
  let tv = Workload.interests w v in
  let k = Array.length tv in
  let tau_v = Workload.tau_v w ~tau v in
  if tau_v <= eps then ([||], 0.)
  else begin
    let ev i = Workload.event_rate w tv.(i) in
    (* Positions sorted by (rate, id); [tv] is id-sorted so index order
       breaks rate ties by id. *)
    let by_rate = Array.init k (fun i -> i) in
    Array.sort (fun a b -> compare (ev a, a) (ev b, b)) by_rate;
    let selected = Array.make k false in
    let picked = ref [] in
    let sum = ref 0. in
    let rem () = tau_v -. !sum in
    (* [hi] = number of leading entries of [by_rate] with ev <= rem; the
       id set holds exactly the unselected ones among them. *)
    let eligible = ref Int_set.empty in
    let hi = ref 0 in
    while !hi < k && ev by_rate.(!hi) <= rem () do
      eligible := Int_set.add tv.(by_rate.(!hi)) !eligible;
      counts.set_ops <- counts.set_ops + 1;
      incr hi
    done;
    let shrink () =
      while !hi > 0 && ev by_rate.(!hi - 1) > rem () do
        decr hi;
        eligible := Int_set.remove tv.(by_rate.(!hi)) !eligible;
        counts.set_ops <- counts.set_ops + 1
      done
    in
    let pos_of_topic = Hashtbl.create k in
    Array.iteri (fun i topic -> Hashtbl.add pos_of_topic topic i) tv;
    let select pos =
      selected.(pos) <- true;
      picked := tv.(pos) :: !picked;
      sum := !sum +. ev pos
    in
    let endgame = ref 0 in
    while !sum < tau_v -. eps do
      counts.considered <- counts.considered + 1;
      match Int_set.min_elt_opt !eligible with
      | Some topic ->
          let pos = Hashtbl.find pos_of_topic topic in
          eligible := Int_set.remove topic !eligible;
          counts.set_ops <- counts.set_ops + 1;
          select pos;
          shrink ()
      | None ->
          (* All unselected rates exceed rem: take the smallest, done. *)
          while !endgame < k && selected.(by_rate.(!endgame)) do incr endgame done;
          assert (!endgame < k);
          select by_rate.(!endgame)
    done;
    (Array.of_list !picked, !sum)
  end

let gsp ?(obs = Registry.noop) (p : Problem.t) =
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let counts = new_counts () in
  let s = build ~workload:w (gsp_subscriber w ~tau:p.Problem.tau ~eps ~counts) in
  flush_stage1 obs s counts;
  s

(* Parallel GSP: subscribers are independent, so each domain fills a
   disjoint slice of the result arrays; the aggregate sums are folded
   sequentially afterwards so the result is bit-identical to [gsp]. *)
let gsp_parallel ?(obs = Registry.noop) ?domains (p : Problem.t) =
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let n = Workload.num_subscribers w in
  let domains =
    match domains with Some d -> d | None -> Domain.recommended_domain_count ()
  in
  if domains <= 1 || n < 2 then gsp ~obs p
  else begin
    let domains = min domains n in
    let chosen = Array.make n [||] in
    let rates = Array.make n 0. in
    let chunk = (n + domains - 1) / domains in
    (* One counts record per domain: no shared mutable state across
       domains; merged sequentially after the join. *)
    let domain_counts = Array.init domains (fun _ -> new_counts ()) in
    let worker d () =
      let lo = d * chunk in
      let hi = min n (lo + chunk) - 1 in
      for v = lo to hi do
        let topics, rate = gsp_subscriber w ~tau:p.Problem.tau ~eps ~counts:domain_counts.(d) v in
        Array.sort compare topics;
        chosen.(v) <- topics;
        rates.(v) <- rate
      done
    in
    let spawned =
      List.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1)))
    in
    worker 0 ();
    List.iter Domain.join spawned;
    let num_pairs = ref 0 in
    let outgoing_rate = ref 0. in
    for v = 0 to n - 1 do
      num_pairs := !num_pairs + Array.length chosen.(v);
      outgoing_rate := !outgoing_rate +. rates.(v)
    done;
    let s =
      {
        chosen;
        selected_rate = rates;
        num_pairs = !num_pairs;
        outgoing_rate = !outgoing_rate;
      }
    in
    let merged = new_counts () in
    Array.iter
      (fun c ->
        merged.considered <- merged.considered + c.considered;
        merged.set_ops <- merged.set_ops + c.set_ops)
      domain_counts;
    flush_stage1 obs s merged;
    s
  end

(* Incremental GSP: [gsp_subscriber] is a deterministic function of the
   subscriber's interest set, those topics' rates, tau and eps — so a
   subscriber none of whose inputs changed keeps its exact old selection,
   and re-running only the dirty ones reproduces [gsp] bit-for-bit. *)
let reselect ?(obs = Registry.noop) (p : Problem.t) ~previous ~dirty =
  let w = p.Problem.workload in
  let n = Workload.num_subscribers w in
  if Array.length dirty <> n then
    invalid_arg
      (Printf.sprintf "Selection.reselect: dirty has %d entries for %d subscribers"
         (Array.length dirty) n);
  let old_n = Array.length previous.chosen in
  let eps = Problem.epsilon p in
  let counts = new_counts () in
  let chosen = Array.make n [||] in
  let selected_rate = Array.make n 0. in
  let num_pairs = ref 0 in
  let outgoing_rate = ref 0. in
  for v = 0 to n - 1 do
    if dirty.(v) then begin
      let topics, rate = gsp_subscriber w ~tau:p.Problem.tau ~eps ~counts v in
      Array.sort compare topics;
      chosen.(v) <- topics;
      selected_rate.(v) <- rate
    end
    else begin
      if v >= old_n then
        invalid_arg
          (Printf.sprintf "Selection.reselect: new subscriber %d not marked dirty" v);
      chosen.(v) <- previous.chosen.(v);
      selected_rate.(v) <- previous.selected_rate.(v)
    end;
    num_pairs := !num_pairs + Array.length chosen.(v);
    outgoing_rate := !outgoing_rate +. selected_rate.(v)
  done;
  let s =
    {
      chosen;
      selected_rate;
      num_pairs = !num_pairs;
      outgoing_rate = !outgoing_rate;
    }
  in
  flush_stage1 obs s counts;
  s

let rsp_order w ~tau ~eps ~counts order v =
  let tv = order v in
  let tau_v = Workload.tau_v w ~tau v in
  let picked = ref [] in
  let sum = ref 0. in
  let i = ref 0 in
  while !sum < tau_v -. eps && !i < Array.length tv do
    counts.considered <- counts.considered + 1;
    let t = tv.(!i) in
    picked := t :: !picked;
    sum := !sum +. Workload.event_rate w t;
    incr i
  done;
  (Array.of_list !picked, !sum)

let rsp ?(obs = Registry.noop) (p : Problem.t) =
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let counts = new_counts () in
  let s = build ~workload:w (rsp_order w ~tau:p.Problem.tau ~eps ~counts (Workload.interests w)) in
  flush_stage1 obs s counts;
  s

let rsp_shuffled ?(obs = Registry.noop) rng (p : Problem.t) =
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let order v =
    let tv = Array.copy (Workload.interests w v) in
    Mcss_prng.Rng.shuffle_in_place rng tv;
    tv
  in
  let counts = new_counts () in
  let s = build ~workload:w (rsp_order w ~tau:p.Problem.tau ~eps ~counts order) in
  flush_stage1 obs s counts;
  s

let integral_rate ev =
  let r = Float.round ev in
  if Float.abs (ev -. r) <= 1e-9 && r >= 1. then Some (int_of_float r) else None

(* Min-cost covering knapsack per subscriber: dp.(j) = least total selected
   rate achieving coverage >= j, with transitions clamped at the target.
   Backpointers record the item used so the chosen set can be rebuilt. *)
let optimal_subscriber w ~tau rates v =
  let tv = Workload.interests w v in
  let k = Array.length tv in
  let tau_v = Workload.tau_v w ~tau v in
  let target = int_of_float (ceil (tau_v -. 1e-9)) in
  if target <= 0 then ([||], 0.)
  else begin
    let dp = Array.make (target + 1) max_int in
    let back_item = Array.make (target + 1) (-1) in
    let back_prev = Array.make (target + 1) (-1) in
    dp.(0) <- 0;
    for i = 0 to k - 1 do
      let r = rates.(tv.(i)) in
      (* Downward iteration with strictly increasing transitions means a
         cell written in this pass is never read in the same pass, so no
         item is used twice. *)
      for j = target - 1 downto 0 do
        if dp.(j) < max_int then begin
          let nj = min target (j + r) in
          if dp.(j) + r < dp.(nj) then begin
            dp.(nj) <- dp.(j) + r;
            back_item.(nj) <- i;
            back_prev.(nj) <- j
          end
        end
      done
    done;
    assert (dp.(target) < max_int);
    let picked = ref [] in
    let j = ref target in
    while !j > 0 do
      picked := tv.(back_item.(!j)) :: !picked;
      j := back_prev.(!j)
    done;
    let topics = Array.of_list !picked in
    let rate = Array.fold_left (fun acc t -> acc +. float_of_int rates.(t)) 0. topics in
    (topics, rate)
  end

let optimal_per_subscriber ?(max_budget = 100_000) (p : Problem.t) =
  let w = p.Problem.workload in
  let rates_opt =
    Array.fold_left
      (fun acc ev ->
        match (acc, integral_rate ev) with
        | Some rs, Some r -> Some (r :: rs)
        | _ -> None)
      (Some []) (Workload.event_rates w)
  in
  match rates_opt with
  | None -> None
  | Some rs ->
      let rates = Array.of_list (List.rev rs) in
      let too_big = ref false in
      for v = 0 to Workload.num_subscribers w - 1 do
        if ceil (Workload.tau_v w ~tau:p.Problem.tau v) > float_of_int max_budget then
          too_big := true
      done;
      if !too_big then None
      else Some (build ~workload:w (optimal_subscriber w ~tau:p.Problem.tau rates))

let satisfies (p : Problem.t) s =
  let eps = Problem.epsilon p in
  let ok = ref true in
  Array.iteri
    (fun v rate -> if rate +. eps < Problem.tau_v p v then ok := false)
    s.selected_rate;
  !ok

let pairs_by_topic (p : Problem.t) s =
  let w = p.Problem.workload in
  let counts = Array.make (Workload.num_topics w) 0 in
  Array.iter (Array.iter (fun t -> counts.(t) <- counts.(t) + 1)) s.chosen;
  let nonempty = ref 0 in
  Array.iter (fun c -> if c > 0 then incr nonempty) counts;
  let subs = Array.map (fun c -> Array.make (max c 1) 0) counts in
  let fill = Array.make (Workload.num_topics w) 0 in
  Array.iteri
    (fun v tv ->
      Array.iter
        (fun t ->
          subs.(t).(fill.(t)) <- v;
          fill.(t) <- fill.(t) + 1)
        tv)
    s.chosen;
  let out = Array.make !nonempty (0, [||]) in
  let i = ref 0 in
  Array.iteri
    (fun t c ->
      if c > 0 then begin
        out.(!i) <- (t, subs.(t));
        incr i
      end)
    counts;
  out

let iter_pairs s f = Array.iteri (fun v tv -> Array.iter (fun t -> f t v) tv) s.chosen
