(** First-Fit bin packing (Alg. 3), the paper's baseline for Stage 2:
    every selected topic–subscriber pair is taken individually, in the
    arbitrary order Stage 1 produced it (grouped by subscriber), and put
    on the first already-deployed VM with room for it; a new VM is
    deployed when none fits.

    Unlike the paper's pseudocode, the room check accounts for the
    incoming stream a topic's first pair brings to a VM (the pseudocode
    tests [ev_t <= BC - bw_b] only), so the capacity constraint genuinely
    holds — the verifier enforces it.

    Complexity O(|pairs| · |B|); this is the slow, bandwidth-wasteful
    strategy the CustomBinPacking optimisations are measured against. *)

val run : ?obs:Mcss_obs.Registry.t -> Problem.t -> Selection.t -> Allocation.t
(** Raises {!Problem.Infeasible} if some selected pair cannot fit even an
    empty VM. [obs] receives [stage2.vms_deployed], [stage2.placements],
    the [stage2.ffbp_probes] first-fit scan counter and the
    [stage2.vm_residual_frac] per-VM residual-capacity histogram. *)
