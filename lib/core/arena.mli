(** Flat-array storage for the solver's hot paths.

    Everything here is an unboxed [int array] / [float array] under the
    hood: no per-element records, no boxed floats, no tuple keys. The
    planning core keeps its per-pair and per-VM state in these so a
    full-scale solve (millions of pairs) costs O(pairs) flat words
    instead of O(pairs) heap objects — the difference between the GC
    walking a few slabs and walking tens of millions of boxes.

    All structures are single-writer: they are either confined to one
    domain or handed out as disjoint slices (see {!Csr.build_rows}). *)

module Ibuf : sig
  (** A growable flat [int] buffer (amortised-O(1) push). *)

  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val push : t -> int -> unit

  val push_of : t -> src:t -> int -> unit
  (** [push_of t ~src i] appends [src]'s [i]-th element. *)

  val clear : t -> unit
  (** Forget the contents; keeps the backing store. *)

  val sub : t -> pos:int -> len:int -> int array
  val to_array : t -> int array
end

module Fbuf : sig
  (** A growable flat [float] buffer. *)

  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val get : t -> int -> float
  val set : t -> int -> float -> unit
  val add : t -> int -> float -> unit
  (** [add t i x] is [set t i (get t i +. x)] without double bounds
      checks. *)

  val push : t -> float -> unit
  val push_of : t -> src:t -> int -> unit
  val clear : t -> unit
  val sum : t -> float
  (** Left-to-right sum of the live elements. *)

  val to_array : t -> float array
end

module Stamp_set : sig
  (** Membership over a dense int universe [0..n) with O(1) [clear]:
      each slot stores the generation stamp at which it was last added,
      so clearing is one counter increment, never a pass over the
      array. The workhorse behind per-subscriber distinct-topic
      sampling and dirty-set tracking, replacing a fresh [Hashtbl] per
      subscriber. *)

  type t

  val create : int -> t
  (** Universe [0..n). *)

  val capacity : t -> int

  val ensure : t -> int -> unit
  (** Grow the universe to at least [n] (existing membership kept). *)

  val mem : t -> int -> bool
  val add : t -> int -> unit
  val clear : t -> unit
end

module Int_table : sig
  (** An open-addressing [int -> int] hash table on two flat arrays
      (linear probing, power-of-two capacity). Keys must be
      non-negative; [absent] is returned for missing keys so lookups
      never allocate an option. Deletions use tombstones; the table
      rehashes when live+dead slots pass the load factor. *)

  type t

  val absent : int
  (** [-1]; never a valid value. *)

  val create : ?capacity:int -> unit -> t
  val length : t -> int

  val find : t -> int -> int
  (** The value bound to the key, or {!absent}. *)

  val mem : t -> int -> bool

  val set : t -> int -> int -> unit
  (** Bind (or rebind) the key. The value must not be {!absent} and the
      key must be [>= 0]; raises [Invalid_argument] otherwise. *)

  val remove : t -> int -> unit
  val reset : t -> unit
  val iter : (int -> int -> unit) -> t -> unit
  (** Iterate live bindings in unspecified order. *)

  val map_values_inplace : (int -> int) -> t -> unit
  (** Rewrite every binding's value in place. *)
end

val encode_pair : topic:int -> subscriber:int -> int
(** A (topic, subscriber) pair as one non-negative [int] key for
    {!Int_table} — no tuple allocation per lookup. Supports ids up to
    [2^31 - 1] each, far beyond the full published traces; raises
    [Invalid_argument] beyond that. *)

val decode_pair : int -> int * int
(** Inverse of {!encode_pair} (allocates; for iteration, not hot
    paths). *)

module Csr : sig
  (** Compressed sparse rows: a partition of [data] into [rows]
      contiguous slices. The canonical flat form of "per-topic
      subscriber lists" and "per-subscriber topic lists". *)

  type t = private { offs : int array;  (** length [rows + 1] *) data : int array }

  val rows : t -> int
  val row_length : t -> int -> int
  val row : t -> int -> int array
  (** A fresh copy of the row (for callers that need a plain array). *)

  val iter_row : t -> int -> (int -> unit) -> unit

  val build_rows :
    rows:int ->
    counts:int array ->
    fill:(write:(row:int -> int -> unit) -> unit) ->
    t
  (** Build from known row sizes. [fill] must call [write ~row x]
      exactly [counts.(row)] times per row; values land in call order
      within each row. Raises [Invalid_argument] if any row is over- or
      under-filled. *)

  val offsets_of_counts : int array -> int array
  (** Exclusive prefix sums, length [n + 1]. *)
end
