module Workload = Mcss_workload.Workload

exception Parse_error of string

let emit add a =
  add "mcss-plan 1\n";
  add (Printf.sprintf "capacity %.17g\n" (Allocation.capacity a));
  add (Printf.sprintf "vms %d\n" (Allocation.num_vms a));
  Array.iter
    (fun vm ->
      List.iter
        (fun topic ->
          let subs = Allocation.subscribers_of_topic_on vm topic in
          add (Printf.sprintf "place %d %d %d" (Allocation.vm_id vm) topic
                 (List.length subs));
          List.iter (fun v -> add (Printf.sprintf " %d" v)) subs;
          add "\n")
        (Allocation.topics_on vm))
    (Allocation.vms a)

let output oc a = emit (output_string oc) a

let to_string a =
  let buf = Buffer.create 4096 in
  emit (Buffer.add_string buf) a;
  Buffer.contents buf

let save a path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output oc a)

(* The reader pulls raw lines from a closure so channels and in-memory
   strings parse through the same code. *)
type reader = { next_raw : unit -> string option; mutable line_num : int }

let fail r msg = raise (Parse_error (Printf.sprintf "line %d: %s" r.line_num msg))

let rec next_line r =
  match r.next_raw () with
  | None -> None
  | Some line ->
      r.line_num <- r.line_num + 1;
      let line = String.trim line in
      if line = "" || line.[0] = '#' then next_line r else Some line

let expect_line r what =
  match next_line r with
  | Some line -> line
  | None -> fail r (Printf.sprintf "unexpected end of file, expected %s" what)

let parse_int r what s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail r (Printf.sprintf "bad %s %S" what s)

let lines_of_string s =
  let pos = ref 0 in
  let n = String.length s in
  fun () ->
    if !pos >= n then None
    else
      let stop =
        match String.index_from_opt s !pos '\n' with Some i -> i | None -> n
      in
      let line = String.sub s !pos (stop - !pos) in
      pos := stop + 1;
      Some line

let parse ~workload r =
  (match expect_line r "the header" with
  | "mcss-plan 1" -> ()
  | other -> fail r (Printf.sprintf "expected \"mcss-plan 1\", got %S" other));
  let capacity =
    match String.split_on_char ' ' (expect_line r "capacity") with
    | [ "capacity"; c ] -> (
        match float_of_string_opt c with
        | Some c when c > 0. -> c
        | _ -> fail r (Printf.sprintf "bad capacity %S" c))
    | _ -> fail r "expected \"capacity <float>\""
  in
  let num_vms =
    match String.split_on_char ' ' (expect_line r "vms") with
    | [ "vms"; n ] ->
        let n = parse_int r "VM count" n in
        if n < 0 then fail r "negative VM count" else n
    | _ -> fail r "expected \"vms <int>\""
  in
  let a = Allocation.create ~capacity in
  let vms = Array.init num_vms (fun _ -> Allocation.deploy a) in
  let seen : (int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let rec placements () =
    match next_line r with
    | None -> ()
    | Some line -> (
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | "place" :: vm :: topic :: k :: subs ->
            let vm = parse_int r "VM id" vm in
            if vm < 0 || vm >= num_vms then fail r (Printf.sprintf "VM %d out of range" vm);
            let topic = parse_int r "topic" topic in
            if topic < 0 || topic >= Workload.num_topics workload then
              fail r (Printf.sprintf "topic %d outside the workload" topic);
            let k = parse_int r "count" k in
            if List.length subs <> k then
              fail r (Printf.sprintf "count %d does not match %d subscribers" k
                        (List.length subs));
            let subscribers =
              Array.of_list (List.map (parse_int r "subscriber") subs)
            in
            Array.iter
              (fun v ->
                if v < 0 || v >= Workload.num_subscribers workload then
                  fail r (Printf.sprintf "subscriber %d outside the workload" v);
                if not (Array.mem topic (Workload.interests workload v)) then
                  fail r (Printf.sprintf "subscriber %d never subscribed to topic %d" v topic);
                if Hashtbl.mem seen (topic, v) then
                  fail r (Printf.sprintf "pair (%d, %d) placed twice" topic v);
                Hashtbl.add seen (topic, v) ())
              subscribers;
            Allocation.place a vms.(vm) ~topic
              ~ev:(Workload.event_rate workload topic)
              ~subscribers ~from:0 ~count:k;
            placements ()
        | _ -> fail r (Printf.sprintf "expected \"place ...\", got %S" line))
  in
  placements ();
  (* Reconstruct the selection implied by the placements. *)
  let per_subscriber = Array.make (Workload.num_subscribers workload) [] in
  Hashtbl.iter (fun (t, v) () -> per_subscriber.(v) <- t :: per_subscriber.(v)) seen;
  let chosen =
    Array.map
      (fun ts ->
        let a = Array.of_list ts in
        Array.sort compare a;
        a)
      per_subscriber
  in
  let selected_rate =
    Array.map
      (Array.fold_left (fun acc t -> acc +. Workload.event_rate workload t) 0.)
      chosen
  in
  let selection =
    {
      Selection.chosen;
      selected_rate;
      num_pairs = Hashtbl.length seen;
      outgoing_rate = Array.fold_left ( +. ) 0. selected_rate;
    }
  in
  (a, selection)

let input ~workload ic =
  parse ~workload { next_raw = (fun () -> In_channel.input_line ic); line_num = 0 }

let of_string ~workload s =
  parse ~workload { next_raw = lines_of_string s; line_num = 0 }

let load ~workload path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> input ~workload ic)
