(** Persistence for computed deployment plans, so a plan solved once can
    be audited, re-verified, diffed, or replayed (CLI: [mcss solve
    --save-plan] / [mcss simulate --plan]) without re-running the solver.

    Format (line oriented, ['#'] comments allowed):
    {v
    mcss-plan 1
    capacity <BC>
    vms <n>
    place <vm> <topic> <k> <subscriber_1> ... <subscriber_k>
    ...
    v}

    A plan file stores only placements; the selection is reconstructed
    from them (every placed pair is a selected pair — the verifier's
    consistency rules make the two views equivalent for any plan the
    solver emits). *)

exception Parse_error of string

val save : Allocation.t -> string -> unit

val output : out_channel -> Allocation.t -> unit

val load : workload:Mcss_workload.Workload.t -> string -> Allocation.t * Selection.t
(** Rebuild the fleet and the implied selection against the workload the
    plan was computed for. Raises {!Parse_error} on malformed input, a
    topic/subscriber id outside the workload, or a duplicated pair;
    raises [Sys_error] on I/O failure. Loads do {e not} re-check
    capacity — run {!Verifier.verify} on the result, as the CLI does. *)

val input : workload:Mcss_workload.Workload.t -> in_channel -> Allocation.t * Selection.t

val to_string : Allocation.t -> string
(** The canonical rendering {!save} writes — what the planning service
    journals and digests ([plan_digest] in solve replies). *)

val of_string :
  workload:Mcss_workload.Workload.t -> string -> Allocation.t * Selection.t
(** Parse an in-memory rendering; raises {!Parse_error} like {!load}. *)
