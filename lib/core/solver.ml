module Registry = Mcss_obs.Registry
module Span = Mcss_obs.Span
module Counter = Mcss_obs.Metric.Counter
module Gauge = Mcss_obs.Metric.Gauge

type stage1 = Gsp | Gsp_parallel | Gsp_reference | Rsp | Global_greedy
type stage2 = Ffbp | Cbp of Cbp.options

type config = { stage1 : stage1; stage2 : stage2 }

type result = {
  selection : Selection.t;
  allocation : Allocation.t;
  num_vms : int;
  bandwidth : float;
  cost : float;
  stage1_seconds : float;
  stage2_seconds : float;
}

let default = { stage1 = Gsp; stage2 = Cbp Cbp.with_cost_decision }
let naive = { stage1 = Rsp; stage2 = Ffbp }

let ladder =
  [
    ("RSP+FFBP", naive);
    ("(a) GSP+FFBP", { stage1 = Gsp; stage2 = Ffbp });
    ("(b) +grouping", { stage1 = Gsp; stage2 = Cbp Cbp.grouping_only });
    ("(c) +expensive-first", { stage1 = Gsp; stage2 = Cbp Cbp.with_expensive_first });
    ("(d) +most-free-VM", { stage1 = Gsp; stage2 = Cbp Cbp.with_most_free });
    ("(e) +cost-decision", { stage1 = Gsp; stage2 = Cbp Cbp.with_cost_decision });
  ]

let config_of_name name = List.assoc_opt name ladder

(* Monotonic, so the reported stage timings cannot go negative or jump
   when the wall clock is adjusted mid-solve. *)
let timed f =
  let start = Mcss_obs.Clock.now_ns () in
  let x = f () in
  (x, Mcss_obs.Clock.seconds_since start)

let solve ?(obs = Registry.noop) ?(config = default) ?(domains = 1) (p : Problem.t) =
  Span.with_ obs ~name:"solve" @@ fun () ->
  let selection, stage1_seconds =
    timed (fun () ->
        Span.with_ obs ~name:"stage1" (fun () ->
            Mcss_obs.Gc_phase.measure ~obs "stage1" (fun () ->
                match config.stage1 with
                | Gsp ->
                    if domains > 1 then Selection.gsp_parallel ~obs ~domains p
                    else Selection.gsp ~obs p
                | Gsp_parallel ->
                    if domains > 1 then Selection.gsp_parallel ~obs ~domains p
                    else Selection.gsp_parallel ~obs p
                | Gsp_reference -> Selection.gsp_reference ~obs p
                | Rsp -> Selection.rsp ~obs p
                | Global_greedy -> Global_greedy.select p)))
  in
  let allocation, stage2_seconds =
    timed (fun () ->
        Span.with_ obs ~name:"stage2" (fun () ->
            Mcss_obs.Gc_phase.measure ~obs "stage2" (fun () ->
                match config.stage2 with
                | Ffbp -> Ffbp.run ~obs p selection
                | Cbp opts -> Cbp.run ~obs ~domains p selection opts)))
  in
  let num_vms = Allocation.num_vms allocation in
  let bandwidth = Allocation.total_load allocation in
  let cost = Problem.cost p ~vms:num_vms ~bandwidth in
  Counter.inc (Registry.counter obs ~help:"Solver.solve invocations" "solve.runs");
  Gauge.set (Registry.gauge obs ~help:"VMs in the final allocation" "solve.num_vms")
    (float_of_int num_vms);
  Gauge.set
    (Registry.gauge obs ~help:"Total bandwidth of the final allocation (event units)"
       "solve.bandwidth_events")
    bandwidth;
  Gauge.set (Registry.gauge obs ~help:"Deployment cost of the final allocation (USD)"
       "solve.cost_usd")
    cost;
  {
    selection;
    allocation;
    num_vms;
    bandwidth;
    cost;
    stage1_seconds;
    stage2_seconds;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "%d pairs selected, %d VMs, bandwidth %.1f, cost $%.2f (stage1 %.3fs, stage2 %.3fs)"
    r.selection.Selection.num_pairs r.num_vms r.bandwidth r.cost r.stage1_seconds
    r.stage2_seconds
