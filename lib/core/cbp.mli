(** CustomBinPacking (Alg. 4), Stage 2 of the MCSS heuristic, with the
    paper's optimisations as independent switches:

    - grouping of pairs by topic — optimisation (b) — is inherent to this
      algorithm: each topic's selected pairs are allocated together;
    - {!topic_order} = [Expensive_first] — optimisation (c): topics are
      processed in non-increasing order of event rate, so the topics whose
      splitting costs the most incoming bandwidth get first pick of space;
    - {!vm_choice} = [Most_free] — optimisation (d): when a topic's group
      must be spread over already-deployed VMs, the VM with the most free
      capacity is filled first;
    - {!cost_decision} — optimisation (e): before spreading a group over
      existing VMs, compare the estimated total cost of doing so against
      deploying fresh VMs (Alg. 7) and pick the cheaper option.

    The flow per topic group: try the most recently deployed VM first; if
    the whole group does not fit there, spread it over existing VMs (or go
    straight to new VMs when optimisation (e) says so); deploy new VMs for
    whatever remains. *)

type topic_order =
  | Arbitrary  (** Topic-id order, as Stage 1 produced the groups. *)
  | Expensive_first  (** Non-increasing event rate, ties by topic id. *)
  | Heaviest_group_first
      (** Non-increasing total outgoing volume [ev_t · |pairs of t|] —
          the literal reading of Alg. 4 line 3's
          [argmax Σ_{(t,v)∈S} ev_t], kept as a variant because the
          paper's prose describes optimisation (c) as plain
          event-rate order. Compared in the ablation benchmarks. *)

type vm_choice =
  | First_fit  (** Deployment order, first VM with room for a pair. *)
  | Most_free  (** Largest free capacity among VMs with room for a pair. *)

type options = {
  topic_order : topic_order;
  vm_choice : vm_choice;
  cost_decision : bool;
}

val grouping_only : options
(** Optimisation ladder step (b): [Arbitrary], [First_fit], no cost
    decision. *)

val with_expensive_first : options  (** Step (c). *)

val with_most_free : options  (** Step (d). *)

val with_cost_decision : options  (** Step (e) — the full CBP. *)

val run :
  ?obs:Mcss_obs.Registry.t ->
  ?domains:int ->
  Problem.t ->
  Selection.t ->
  options ->
  Allocation.t
(** Raises {!Problem.Infeasible} if some selected pair cannot fit even an
    empty VM. [domains] (default 1) parallelises the per-topic group
    construction ({!Selection.pairs_by_topic}); the packing fold itself is
    inherently sequential (every placement depends on the residuals the
    previous ones left), so the resulting allocation is identical at any
    domain count. [obs] (default {!Mcss_obs.Registry.noop}) receives the
    Stage-2 work counters ([stage2.groups], [stage2.vms_deployed],
    [stage2.placements], [stage2.whole_group_fits],
    [stage2.decision_distribute] / [stage2.decision_deploy],
    [stage2.cost_decisions]) and the [stage2.vm_residual_frac] per-VM
    residual-capacity histogram. *)

val cheaper_to_distribute :
  Problem.t -> Allocation.t -> ev:float -> count:int ->
  hosts:(Allocation.vm -> bool) -> bool
(** The Alg. 7 estimate: [true] if spreading [count] pairs of a topic with
    rate [ev] over the existing fleet is estimated cheaper than deploying
    new VMs for them. [hosts vm] tells whether the VM already carries the
    topic (its incoming stream is then already paid for). Exposed for unit
    tests. *)
