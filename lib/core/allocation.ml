module Workload = Mcss_workload.Workload

(* Per-VM residuals (load, pair count) live in flat arrays indexed by VM
   id, so the packing hot loop updates an unboxed float slab instead of a
   mutable float field in a mixed record (which OCaml boxes on every
   write). A [vm] is just a handle: the id plus its owner. *)
type t = {
  cap : float;
  loads : Arena.Fbuf.t;
  npairs : Arena.Ibuf.t;
  tables : (Workload.topic, Workload.subscriber Vec.t) Hashtbl.t Vec.t;
}

type vm = { id : int; st : t }

let create ~capacity =
  if not (capacity > 0.) then invalid_arg "Allocation.create: capacity must be positive";
  {
    cap = capacity;
    loads = Arena.Fbuf.create ();
    npairs = Arena.Ibuf.create ();
    tables = Vec.create ();
  }

let capacity a = a.cap
let num_vms a = Vec.length a.tables
let vm_at a id = { id; st = a }
let vms a = Array.init (num_vms a) (vm_at a)

let iter_vms a f =
  for id = 0 to num_vms a - 1 do
    f (vm_at a id)
  done

let deploy a =
  let id = num_vms a in
  Arena.Fbuf.push a.loads 0.;
  Arena.Ibuf.push a.npairs 0;
  Vec.push a.tables (Hashtbl.create 8);
  vm_at a id

let vm_id vm = vm.id
let load vm = Arena.Fbuf.get vm.st.loads vm.id
let load_of a id = Arena.Fbuf.get a.loads id
let free a vm = a.cap -. load vm
let free_of a id = a.cap -. Arena.Fbuf.get a.loads id
let table vm = Vec.get vm.st.tables vm.id
let hosts_topic vm t = Hashtbl.mem (table vm) t
let num_pairs_on vm = Arena.Ibuf.get vm.st.npairs vm.id
let num_topics_on vm = Hashtbl.length (table vm)

let place_delta vm ~topic ~ev ~count =
  let incoming = if hosts_topic vm topic then 0. else ev in
  (float_of_int count *. ev) +. incoming

let max_pairs_that_fit a vm ~topic ~ev ~eps =
  let room = a.cap -. load vm +. eps in
  let incoming = if hosts_topic vm topic then 0. else ev in
  let outgoing_room = room -. incoming in
  if outgoing_room < ev then 0 else int_of_float (floor (outgoing_room /. ev))

let place a vm ~topic ~ev ~subscribers ~from ~count =
  ignore a;
  if count < 0 || from < 0 || from + count > Array.length subscribers then
    invalid_arg "Allocation.place: subscriber range out of bounds";
  if count > 0 then begin
    let st = vm.st in
    Arena.Fbuf.add st.loads vm.id (place_delta vm ~topic ~ev ~count);
    let tbl = table vm in
    let slot =
      match Hashtbl.find_opt tbl topic with
      | Some v -> v
      | None ->
          let v = Vec.create () in
          Hashtbl.add tbl topic v;
          v
    in
    for i = from to from + count - 1 do
      Vec.push slot subscribers.(i)
    done;
    Arena.Ibuf.set st.npairs vm.id (Arena.Ibuf.get st.npairs vm.id + count)
  end

let total_load a = Arena.Fbuf.sum a.loads

let iter_vm_pairs vm f =
  Hashtbl.iter (fun topic subs -> Vec.iter (fun v -> f topic v) subs) (table vm)

let topics_on vm = Hashtbl.fold (fun t _ acc -> t :: acc) (table vm) [] |> List.sort compare

let subscribers_of_topic_on vm t =
  match Hashtbl.find_opt (table vm) t with
  | Some subs -> Vec.to_list subs
  | None -> []

let remove a vm ~topic ~ev ~subscriber =
  ignore a;
  let st = vm.st in
  let tbl = table vm in
  match Hashtbl.find_opt tbl topic with
  | None -> false
  | Some subs -> (
      match Vec.find_index (fun v -> v = subscriber) subs with
      | None -> false
      | Some i ->
          Vec.swap_remove subs i;
          Arena.Ibuf.set st.npairs vm.id (Arena.Ibuf.get st.npairs vm.id - 1);
          let last = Vec.is_empty subs in
          if last then Hashtbl.remove tbl topic;
          Arena.Fbuf.set st.loads vm.id
            (Arena.Fbuf.get st.loads vm.id -. ev -. (if last then ev else 0.));
          true)

let rebuild_loads a ~event_rates =
  for id = 0 to num_vms a - 1 do
    let load = ref 0. in
    let pairs = ref 0 in
    Hashtbl.iter
      (fun t subs ->
        let n = Vec.length subs in
        load := !load +. (float_of_int (n + 1) *. event_rates.(t));
        pairs := !pairs + n)
      (Vec.get a.tables id);
    Arena.Fbuf.set a.loads id !load;
    Arena.Ibuf.set a.npairs id !pairs
  done

let compact a =
  let fresh = create ~capacity:a.cap in
  let mapping = Array.make (num_vms a) (-1) in
  for id = 0 to num_vms a - 1 do
    if Arena.Ibuf.get a.npairs id > 0 then begin
      mapping.(id) <- num_vms fresh;
      Arena.Fbuf.push fresh.loads (Arena.Fbuf.get a.loads id);
      Arena.Ibuf.push fresh.npairs (Arena.Ibuf.get a.npairs id);
      (* Placements shared structurally, as before the flat refactor. *)
      Vec.push fresh.tables (Vec.get a.tables id)
    end
  done;
  (fresh, mapping)

let find_pair_vm a ~topic ~subscriber =
  let n = num_vms a in
  let rec scan i =
    if i >= n then None
    else
      match Hashtbl.find_opt (Vec.get a.tables i) topic with
      | Some subs when Vec.exists (fun v -> v = subscriber) subs -> Some (vm_at a i)
      | _ -> scan (i + 1)
  in
  scan 0
