module Workload = Mcss_workload.Workload
module Registry = Mcss_obs.Registry
module Counter = Mcss_obs.Metric.Counter

let run ?(obs = Registry.noop) (p : Problem.t) (s : Selection.t) =
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let a = Allocation.create ~capacity:p.Problem.capacity in
  let placements = ref 0 in
  let probes = ref 0 in
  let place_one t v =
    let ev = Workload.event_rate w t in
    let subscribers = [| v |] in
    let fits vm = Allocation.place_delta vm ~topic:t ~ev ~count:1 <= Allocation.free a vm +. eps in
    let vms = Allocation.vms a in
    let rec first_fit i =
      if i >= Array.length vms then None
      else begin
        incr probes;
        if fits vms.(i) then Some vms.(i) else first_fit (i + 1)
      end
    in
    let vm =
      match first_fit 0 with
      | Some vm -> vm
      | None ->
          let vm = Allocation.deploy a in
          if not (fits vm) then
            raise
              (Problem.Infeasible
                 (Printf.sprintf
                    "pair (topic %d, subscriber %d) needs %g bandwidth but BC is %g" t v
                    (2. *. ev) p.Problem.capacity));
          vm
    in
    Allocation.place a vm ~topic:t ~ev ~subscribers ~from:0 ~count:1;
    incr placements
  in
  Selection.iter_pairs s place_one;
  let c name help v = Counter.add (Registry.counter obs ~help name) v in
  c "stage2.vms_deployed" "VMs opened by Stage 2" (Allocation.num_vms a);
  c "stage2.placements" "Allocation.place calls (pair batches placed)" !placements;
  c "stage2.ffbp_probes" "First-fit VM probes across all pairs" !probes;
  if Registry.enabled obs then begin
    let h =
      Registry.histogram obs
        ~buckets:(Mcss_obs.Metric.Histogram.linear ~lo:0.1 ~hi:1.0 ~buckets:10)
        ~help:"Residual capacity fraction per deployed VM" "stage2.vm_residual_frac"
    in
    Array.iter
      (fun vm ->
        Mcss_obs.Metric.Histogram.observe h (Allocation.free a vm /. p.Problem.capacity))
      (Allocation.vms a)
  end;
  a
