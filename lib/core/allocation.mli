(** The Stage-2 allocation state: a fleet of VMs, each holding
    topic–subscriber pairs, with the paper's bandwidth bookkeeping
    (Eq. 2):

    [bw_b = Σ_{(t,v) on b} ev_t  +  Σ_{t with ≥1 pair on b} ev_t]

    i.e. one outgoing unit per pair plus one incoming unit per distinct
    topic present on the VM. The load is maintained incrementally; the
    verifier recomputes it from scratch to cross-check. *)

type vm
(** One virtual machine. *)

type t
(** A mutable fleet with a fixed per-VM capacity. *)

val create : capacity:float -> t
(** An empty fleet; [capacity] is [BC] in event-rate units. *)

val capacity : t -> float
val num_vms : t -> int
val vms : t -> vm array
(** Snapshot of the fleet, in deployment order. *)

val vm_at : t -> int -> vm
(** The VM with the given deployment index (no bounds check until the
    handle is used). *)

val iter_vms : t -> (vm -> unit) -> unit
(** Visit every VM in deployment order without materialising the
    {!vms} array — the packing inner loops' iteration. *)

val load_of : t -> int -> float
(** [load (vm_at a id)] without building the handle. *)

val free_of : t -> int -> float
(** [free a (vm_at a id)] without building the handle. *)

val deploy : t -> vm
(** Add one empty VM and return it. *)

val vm_id : vm -> int
(** Deployment index, [0]-based. *)

val load : vm -> float
(** Current [bw_b]. *)

val free : t -> vm -> float
(** [capacity - load]. *)

val hosts_topic : vm -> Mcss_workload.Workload.topic -> bool

val num_pairs_on : vm -> int
val num_topics_on : vm -> int

val place_delta : vm -> topic:Mcss_workload.Workload.topic -> ev:float -> count:int -> float
(** The load increase from placing [count] pairs of [topic] on this VM:
    [count·ev], plus [ev] if the topic is not yet present. *)

val max_pairs_that_fit :
  t -> vm -> topic:Mcss_workload.Workload.topic -> ev:float -> eps:float -> int
(** The largest [count] such that [place_delta] fits in the free capacity
    (with [eps] slack); 0 if not even one pair fits. *)

val place :
  t -> vm -> topic:Mcss_workload.Workload.topic -> ev:float ->
  subscribers:Mcss_workload.Workload.subscriber array -> from:int -> count:int -> unit
(** Put pairs [(topic, subscribers.(from)) .. (topic, subscribers.(from + count - 1))]
    on the VM and update its load. Raises [Invalid_argument] if the range
    is out of bounds; does {e not} check capacity (callers check first, so
    algorithmic bugs surface in the verifier rather than being masked). *)

val total_load : t -> float
(** [Σ_b bw_b], the bandwidth term of the objective. *)

val iter_vm_pairs :
  vm ->
  (Mcss_workload.Workload.topic -> Mcss_workload.Workload.subscriber -> unit) -> unit
(** Iterate the pairs on one VM, grouped by topic. *)

val topics_on : vm -> Mcss_workload.Workload.topic list
val subscribers_of_topic_on : vm -> Mcss_workload.Workload.topic -> Mcss_workload.Workload.subscriber list
(** In placement order; [] if the topic is absent. *)

(** {2 Mutation support for dynamic re-provisioning}

    These operations exist for the incremental allocator
    ([Mcss_dynamic]): a static two-stage solve never removes anything. *)

val remove : t -> vm -> topic:Mcss_workload.Workload.topic -> ev:float ->
  subscriber:Mcss_workload.Workload.subscriber -> bool
(** Remove one pair from the VM, updating its load ([ev] outgoing, plus
    the [ev] incoming if this was the topic's last pair on the VM).
    Returns [false] if the pair was not there. *)

val rebuild_loads : t -> event_rates:float array -> unit
(** Recompute every VM's load from its placements under new event rates —
    used after a rate-change delta invalidates the incremental sums. *)

val compact : t -> t * int array
(** Drop empty VMs. Returns a fresh fleet (placements shared
    structurally) and the mapping from old VM id to new id ([-1] for
    dropped VMs). *)

val find_pair_vm : t -> topic:Mcss_workload.Workload.topic ->
  subscriber:Mcss_workload.Workload.subscriber -> vm option
(** The VM hosting the pair, if any (scans the fleet). *)
