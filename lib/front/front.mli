(** Shared front-end plumbing for the [mcss] CLI and the experiment
    harness: the implied per-VM capacity constant, synthetic-trace
    generation with seed overrides, workload/plan loading with uniform
    error strings, instance lookup, problem construction, and
    ladder-configuration selection. Both front-ends answer "which
    problem does this command line describe?" through this module, so
    they cannot drift apart. *)

val implied_bc_full_scale : float
(** The paper's cost figures imply an effective per-VM capacity of ~5e7
    events per 10-day horizon for c3.large (total bandwidth divided by
    VM count at high tau); see EXPERIMENTS.md. *)

val bc_events : scale:float -> Mcss_pricing.Instance.t -> float
(** The utilisation-consistent default capacity:
    {!implied_bc_full_scale} scaled by the trace scale and the
    instance's bandwidth relative to c3.large's 64 mbps. *)

type trace = [ `Spotify | `Twitter ]

val validate_scale : float -> (float, string) result
(** Accept scales in (0, 1]; [Error] is a one-line reason suitable for
    stderr. *)

val validate_domains : int -> (int, string) result
(** Accept domain counts >= 1; [Error] is a one-line reason suitable
    for stderr. *)

val source : ?seed:int -> trace -> scale:float -> Mcss_traces.Stream.source
(** The streaming-generator source for a synthetic trace at [scale]
    relative to the published full-size trace, overriding the family's
    default seed when [seed] is given. *)

val generate : ?seed:int -> trace -> scale:float -> Mcss_workload.Workload.t
(** Generate a synthetic trace at [scale] via {!Mcss_traces.Stream}
    (bit-identical to the materialised generators, without a second
    copy of the edge list). *)

val shared_workload :
  ?seed:int -> trace -> scale:float -> Mcss_workload.Workload.t
(** {!generate}, memoised on [(trace, scale, seed)] for the lifetime of
    the process, so bench sections that share a trace build it once. *)

val load_workload :
  file:string option ->
  trace:trace option ->
  scale:float ->
  seed:int option ->
  (Mcss_workload.Workload.t, string) result
(** A workload from [file] when given (Wio format), else a synthetic
    [trace]; [Error] is a one-line reason (missing file, parse error,
    or neither source named). *)

val load_plan :
  workload:Mcss_workload.Workload.t ->
  string ->
  (Mcss_core.Allocation.t * Mcss_core.Selection.t, string) result
(** A saved plan via {!Mcss_core.Plan_io.load}, with file and parse
    errors as one-line reasons. *)

val resolve_instance : string -> (Mcss_pricing.Instance.t, string) result
(** Catalogue lookup by EC2 instance-type name. *)

val problem_of :
  w:Mcss_workload.Workload.t ->
  tau:float ->
  instance:Mcss_pricing.Instance.t ->
  scale:float ->
  bc_events:float option ->
  Mcss_pricing.Cost_model.t * Mcss_core.Problem.t
(** The 2014 EC2 cost model for [instance] and the MCSS problem it
    prices, with per-VM capacity [bc_events] or the {!bc_events}
    default. *)

val config_or_default : string -> Mcss_core.Solver.config
(** The ladder configuration with that name, or
    {!Mcss_core.Solver.default} when the name is unknown. *)

val configs : ladder:bool -> string -> (string * Mcss_core.Solver.config) list
(** What a solve-style command runs: the whole optimisation ladder when
    [ladder], else the single named configuration (defaulted as in
    {!config_or_default}, keeping the requested name as the label). *)
