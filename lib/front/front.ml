module Wio = Mcss_workload.Wio
module Instance = Mcss_pricing.Instance
module Cost_model = Mcss_pricing.Cost_model
module Problem = Mcss_core.Problem
module Solver = Mcss_core.Solver

let implied_bc_full_scale = 5e7

let bc_events ~scale (instance : Instance.t) =
  implied_bc_full_scale *. scale *. (instance.Instance.bandwidth_mbps /. 64.)

type trace = [ `Spotify | `Twitter ]

let validate_scale scale =
  if Float.is_nan scale || scale <= 0. || scale > 1. then
    Error (Printf.sprintf "--scale must be in (0, 1], got %g" scale)
  else Ok scale

let validate_domains domains =
  if domains < 1 then
    Error (Printf.sprintf "--domains must be >= 1, got %d" domains)
  else Ok domains

let source ?seed trace ~scale =
  match trace with
  | `Spotify ->
      let p = Mcss_traces.Spotify.scaled scale in
      let p =
        match seed with Some s -> { p with Mcss_traces.Spotify.seed = s } | None -> p
      in
      Mcss_traces.Stream.Spotify p
  | `Twitter ->
      let p = Mcss_traces.Twitter.scaled scale in
      let p =
        match seed with Some s -> { p with Mcss_traces.Twitter.seed = s } | None -> p
      in
      Mcss_traces.Stream.Twitter p

let generate ?seed trace ~scale =
  Mcss_traces.Stream.workload (source ?seed trace ~scale)

(* Bench sections previously regenerated the same trace once per
   section; memoising on the full parameter tuple makes the trace a
   shared input instead. *)
let shared_cache :
    (trace * float * int option, Mcss_workload.Workload.t) Hashtbl.t =
  Hashtbl.create 4

let shared_workload ?seed trace ~scale =
  let key = (trace, scale, seed) in
  match Hashtbl.find_opt shared_cache key with
  | Some w -> w
  | None ->
      let w = generate ?seed trace ~scale in
      Hashtbl.replace shared_cache key w;
      w

let load_workload ~file ~trace ~scale ~seed =
  match (file, trace) with
  | Some path, _ -> (
      try Ok (Wio.load path) with
      | Sys_error msg -> Error msg
      | Wio.Parse_error msg | Failure msg -> Error (Printf.sprintf "%s: %s" path msg))
  | None, Some trace -> Ok (generate ?seed trace ~scale)
  | None, None -> Error "pass either --workload FILE or --trace NAME"

let load_plan ~workload path =
  match Mcss_core.Plan_io.load ~workload path with
  | plan -> Ok plan
  | exception Sys_error msg -> Error msg
  | exception Mcss_core.Plan_io.Parse_error msg ->
      Error (Printf.sprintf "%s: %s" path msg)

let resolve_instance name =
  match Instance.find name with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "unknown instance type %S" name)

let problem_of ~w ~tau ~instance ~scale ~bc_events:bc =
  let model = Cost_model.ec2_2014 ~instance () in
  let capacity_events =
    match bc with Some c -> c | None -> bc_events ~scale instance
  in
  (model, Problem.of_pricing ~capacity_events ~workload:w ~tau model)

let config_or_default name =
  match Solver.config_of_name name with Some c -> c | None -> Solver.default

let configs ~ladder name =
  if ladder then Solver.ladder else [ (name, config_or_default name) ]
