module Workload = Mcss_workload.Workload
module Vec = Mcss_core.Vec

type delivery = {
  message : Message.t;
  subscriber : Workload.subscriber;
  depart_time : float;
}

type stats = {
  messages_in : int;
  deliveries_out : int;
  bytes_in : int;
  bytes_out : int;
  busy_until : float;
  max_queue_delay : float;
}

type t = {
  broker_id : int;
  bytes_per_horizon : float;
  table : (Workload.topic, Workload.subscriber Vec.t) Hashtbl.t;
  mutable num_pairs : int;
  mutable messages_in : int;
  mutable deliveries_out : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable busy_until : float;
  mutable last_arrival : float;
  mutable max_queue_delay : float;
}

let create ~id ~bytes_per_horizon =
  if not (bytes_per_horizon > 0.) then
    invalid_arg "Broker.create: bytes_per_horizon must be positive";
  {
    broker_id = id;
    bytes_per_horizon;
    table = Hashtbl.create 64;
    num_pairs = 0;
    messages_in = 0;
    deliveries_out = 0;
    bytes_in = 0;
    bytes_out = 0;
    busy_until = 0.;
    last_arrival = 0.;
    max_queue_delay = 0.;
  }

let id b = b.broker_id

let subscribe b ~topic ~subscriber =
  let subs =
    match Hashtbl.find_opt b.table topic with
    | Some v -> v
    | None ->
        let v = Vec.create () in
        Hashtbl.add b.table topic v;
        v
  in
  if Vec.exists (fun v -> v = subscriber) subs then
    invalid_arg
      (Printf.sprintf "Broker.subscribe: pair (%d, %d) already on broker %d" topic
         subscriber b.broker_id);
  Vec.push subs subscriber;
  b.num_pairs <- b.num_pairs + 1

let subscribed b ~topic ~subscriber =
  match Hashtbl.find_opt b.table topic with
  | None -> false
  | Some subs -> Vec.exists (fun v -> v = subscriber) subs

let unsubscribe b ~topic ~subscriber =
  match Hashtbl.find_opt b.table topic with
  | None -> false
  | Some subs -> (
      match Vec.find_index (fun v -> v = subscriber) subs with
      | None -> false
      | Some i ->
          Vec.swap_remove subs i;
          if Vec.is_empty subs then Hashtbl.remove b.table topic;
          b.num_pairs <- b.num_pairs - 1;
          true)

let hosts b topic = Hashtbl.mem b.table topic
let num_pairs b = b.num_pairs

let ingest b (m : Message.t) =
  if m.Message.publish_time < b.last_arrival then
    invalid_arg "Broker.ingest: messages must arrive in time order";
  b.last_arrival <- m.Message.publish_time;
  match Hashtbl.find_opt b.table m.Message.topic with
  | None -> []
  | Some subs ->
      let fanout = Vec.length subs in
      b.messages_in <- b.messages_in + 1;
      b.bytes_in <- b.bytes_in + m.Message.size_bytes;
      b.bytes_out <- b.bytes_out + (fanout * m.Message.size_bytes);
      (* FIFO single server: receive the message once, transmit one copy
         per local subscriber; all copies complete together. *)
      let work =
        float_of_int ((fanout + 1) * m.Message.size_bytes) /. b.bytes_per_horizon
      in
      let start = Float.max m.Message.publish_time b.busy_until in
      let depart_time = start +. work in
      b.busy_until <- depart_time;
      let delay = depart_time -. m.Message.publish_time in
      if delay > b.max_queue_delay then b.max_queue_delay <- delay;
      b.deliveries_out <- b.deliveries_out + fanout;
      Vec.fold_left
        (fun acc subscriber -> { message = m; subscriber; depart_time } :: acc)
        [] subs

let stats b =
  {
    messages_in = b.messages_in;
    deliveries_out = b.deliveries_out;
    bytes_in = b.bytes_in;
    bytes_out = b.bytes_out;
    busy_until = b.busy_until;
    max_queue_delay = b.max_queue_delay;
  }

let utilization b ~horizon =
  if horizon <= 0. then 0.
  else
    float_of_int (b.bytes_in + b.bytes_out) /. (b.bytes_per_horizon *. horizon)
