(** One broker process — the software running on one VM of the
    allocation. It holds the subscription table for the pairs assigned to
    its VM and models message handling as a FIFO single-server queue:
    each ingested message costs (its own bytes) + (one copy per local
    subscriber) of transmission work, served at the VM's bandwidth. The
    queueing delay this induces is exactly what the MCSS capacity
    constraint is supposed to keep bounded, so fleet-level latency
    becomes an observable consequence of the allocator's decisions. *)

type t

type delivery = {
  message : Message.t;
  subscriber : Mcss_workload.Workload.subscriber;
  depart_time : float;
      (** When the copy leaves the broker: queue wait plus service. *)
}

type stats = {
  messages_in : int;
  deliveries_out : int;
  bytes_in : int;
  bytes_out : int;
  busy_until : float;  (** Server occupied up to this time. *)
  max_queue_delay : float;
      (** Worst (depart - publish) observed, in horizon units. *)
}

val create : id:int -> bytes_per_horizon:float -> t
(** [bytes_per_horizon] is the service capacity (the VM's [BC] in
    bytes); must be positive. *)

val id : t -> int

val subscribe : t -> topic:Mcss_workload.Workload.topic ->
  subscriber:Mcss_workload.Workload.subscriber -> unit
(** Register a pair. Raises [Invalid_argument] if the pair is already
    registered on this broker. *)

val subscribed : t -> topic:Mcss_workload.Workload.topic ->
  subscriber:Mcss_workload.Workload.subscriber -> bool

val unsubscribe : t -> topic:Mcss_workload.Workload.topic ->
  subscriber:Mcss_workload.Workload.subscriber -> bool
(** Drop a pair (the live dataplane re-homes pairs on running brokers).
    Returns [false] when the pair was not registered. Order within the
    topic's subscriber list is not preserved. *)

val hosts : t -> Mcss_workload.Workload.topic -> bool
val num_pairs : t -> int

val ingest : t -> Message.t -> delivery list
(** Process one message: returns the local deliveries, all departing when
    the message finishes service. Messages must arrive in nondecreasing
    publish-time order (raises [Invalid_argument] otherwise). A message
    for a topic with no local subscribers is ignored free of charge — the
    frontend would not have routed it here. *)

val stats : t -> stats

val utilization : t -> horizon:float -> float
(** Fraction of the horizon the server was busy. *)
