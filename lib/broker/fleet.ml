module Workload = Mcss_workload.Workload
module Stats = Mcss_workload.Stats
module Problem = Mcss_core.Problem
module Allocation = Mcss_core.Allocation
module Rng = Mcss_prng.Rng
module Dist = Mcss_prng.Dist
module Registry = Mcss_obs.Registry
module Span = Mcss_obs.Span
module Counter = Mcss_obs.Metric.Counter
module Gauge = Mcss_obs.Metric.Gauge

type t = {
  problem : Problem.t;
  brokers : Broker.t array;
  routing : int list array;  (* topic -> broker ids, ascending *)
  message_bytes : int;
}

type arrivals = Deterministic | Poisson of int

type config = {
  duration : float;
  arrivals : arrivals;
  latency_reservoir : int;
  latency_seed : int;
}

let default_config =
  { duration = 1.0; arrivals = Deterministic; latency_reservoir = 10_000; latency_seed = 1 }

type latency_summary = {
  samples : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

type report = {
  published : int;
  routed : int;
  deliveries : int;
  received : int array;
  latency : latency_summary option;
  max_utilization : float;
  broker_stats : (int * Broker.stats) list;
  totals : Mcss_report.Delivery.totals;
}

let build (p : Problem.t) a ~message_bytes =
  if message_bytes <= 0 then invalid_arg "Fleet.build: message_bytes must be positive";
  let w = p.Problem.workload in
  let bytes_per_horizon = p.Problem.capacity *. float_of_int message_bytes in
  let brokers =
    Array.map
      (fun vm ->
        let broker = Broker.create ~id:(Allocation.vm_id vm) ~bytes_per_horizon in
        Allocation.iter_vm_pairs vm (fun topic subscriber ->
            Broker.subscribe broker ~topic ~subscriber);
        broker)
      (Allocation.vms a)
  in
  let routing = Array.make (Workload.num_topics w) [] in
  Array.iter
    (fun broker ->
      for topic = 0 to Workload.num_topics w - 1 do
        if Broker.hosts broker topic then
          routing.(topic) <- Broker.id broker :: routing.(topic)
      done)
    brokers;
  Array.iteri (fun topic ids -> routing.(topic) <- List.sort compare ids) routing;
  { problem = p; brokers; routing; message_bytes }

let num_brokers fleet = Array.length fleet.brokers

let brokers_for_topic fleet topic = fleet.routing.(topic)

(* Same deterministic per-topic phase as the counting simulator, so the
   two substrates generate identical schedules. *)
let phase_of_topic t =
  let h =
    Int64.to_int
      (Int64.shift_right_logical (Int64.mul (Int64.of_int (t + 1)) 0x9E3779B97F4A7C15L) 11)
  in
  float_of_int h *. 0x1p-53

let schedule_events w ~arrivals ~duration =
  let times : float Mcss_core.Vec.t = Mcss_core.Vec.create () in
  let topics : int Mcss_core.Vec.t = Mcss_core.Vec.create () in
  let emit time topic =
    Mcss_core.Vec.push times time;
    Mcss_core.Vec.push topics topic
  in
  (match arrivals with
  | Deterministic ->
      for t = 0 to Workload.num_topics w - 1 do
        let ev = Workload.event_rate w t in
        let n = int_of_float (Float.round (ev *. duration)) in
        if n > 0 then begin
          let interval = duration /. float_of_int n in
          let phase = phase_of_topic t *. interval in
          for k = 0 to n - 1 do
            emit (phase +. (float_of_int k *. interval)) t
          done
        end
      done
  | Poisson seed ->
      let rng = Rng.create seed in
      for t = 0 to Workload.num_topics w - 1 do
        let ev = Workload.event_rate w t in
        let time = ref (Dist.exponential rng ~mean:(1. /. ev)) in
        while !time < duration do
          emit !time t;
          time := !time +. Dist.exponential rng ~mean:(1. /. ev)
        done
      done);
  let n = Mcss_core.Vec.length times in
  let order = Array.init n (fun i -> i) in
  let times = Mcss_core.Vec.to_array times in
  let topics = Mcss_core.Vec.to_array topics in
  Array.sort (fun a b -> compare (times.(a), topics.(a)) (times.(b), topics.(b))) order;
  Array.map (fun i -> (times.(i), topics.(i))) order

let schedule fleet config =
  schedule_events fleet.problem.Problem.workload ~arrivals:config.arrivals
    ~duration:config.duration

(* Bounded reservoir over delivery latencies so quantiles stay exact for
   small runs and statistically sound for big ones. The eviction draws
   come from the caller's seeded [Mcss_prng] source, so histograms are
   bit-reproducible under a fixed [--trace-seed]. *)
module Reservoir = struct
  type t = {
    mutable seen : int;
    store : float array;
    rng : Rng.t;
    mutable sum : float;
    mutable max_value : float;
  }

  let create ~rng size =
    { seen = 0; store = Array.make (max 1 size) 0.; rng; sum = 0.; max_value = 0. }

  let add r x =
    r.sum <- r.sum +. x;
    if x > r.max_value then r.max_value <- x;
    let cap = Array.length r.store in
    if r.seen < cap then r.store.(r.seen) <- x
    else begin
      let j = Rng.int r.rng (r.seen + 1) in
      if j < cap then r.store.(j) <- x
    end;
    r.seen <- r.seen + 1

  let kept r = Array.sub r.store 0 (min r.seen (Array.length r.store))

  let summary r =
    if r.seen = 0 then None
    else begin
      let kept = kept r in
      Some
        {
          samples = r.seen;
          mean = r.sum /. float_of_int r.seen;
          p50 = Stats.quantile kept 0.5;
          p95 = Stats.quantile kept 0.95;
          p99 = Stats.quantile kept 0.99;
          max = r.max_value;
        }
    end
end

let run ?(obs = Registry.noop) fleet config =
  if not (config.duration > 0.) then invalid_arg "Fleet.run: duration must be positive";
  Span.with_ obs ~name:"fleet" @@ fun () ->
  let w = fleet.problem.Problem.workload in
  let events = Span.with_ obs ~name:"schedule" (fun () -> schedule fleet config) in
  let received = Array.make (Workload.num_subscribers w) 0 in
  let reservoir =
    Reservoir.create ~rng:(Rng.create config.latency_seed) config.latency_reservoir
  in
  let routed = ref 0 in
  let deliveries = ref 0 in
  Span.with_ obs ~name:"deliver" (fun () ->
      Array.iteri
        (fun i (time, topic) ->
          let message =
            Message.make ~id:i ~topic ~publish_time:time ~size_bytes:fleet.message_bytes
          in
          List.iter
            (fun broker_id ->
              incr routed;
              let delivered = Broker.ingest fleet.brokers.(broker_id) message in
              List.iter
                (fun d ->
                  incr deliveries;
                  received.(d.Broker.subscriber) <- received.(d.Broker.subscriber) + 1;
                  Reservoir.add reservoir (d.Broker.depart_time -. time))
                delivered)
            fleet.routing.(topic))
        events);
  let max_utilization =
    Array.fold_left
      (fun acc broker -> Float.max acc (Broker.utilization broker ~horizon:config.duration))
      0. fleet.brokers
  in
  let report =
    {
      published = Array.length events;
      routed = !routed;
      deliveries = !deliveries;
      received;
      latency = Reservoir.summary reservoir;
      max_utilization;
      broker_stats = Array.to_list (Array.map (fun b -> (Broker.id b, Broker.stats b)) fleet.brokers);
      totals =
        {
          Mcss_report.Delivery.published = Array.length events;
          handoffs = !routed;
          delivered = !deliveries;
          dropped = 0;
        };
    }
  in
  if Registry.enabled obs then begin
    let c name help v = Counter.add (Registry.counter obs ~help name) v in
    c "broker.published" "Messages generated by the publishers" report.published;
    c "broker.routed" "Message-to-broker handoffs" report.routed;
    c "broker.deliveries" "Message copies handed to subscribers" report.deliveries;
    Gauge.set
      (Registry.gauge obs ~help:"Busiest broker's bandwidth utilisation"
         "broker.max_utilization")
      report.max_utilization;
    let util =
      Registry.histogram obs
        ~buckets:(Mcss_obs.Metric.Histogram.linear ~lo:0.1 ~hi:2.0 ~buckets:20)
        ~help:"Per-broker bandwidth utilisation over the horizon"
        "broker.utilization"
    in
    Array.iter
      (fun b ->
        Mcss_obs.Metric.Histogram.observe util
          (Broker.utilization b ~horizon:config.duration))
      fleet.brokers;
    (match report.latency with
    | None -> ()
    | Some _ ->
        let h =
          Registry.histogram obs
            ~buckets:(Mcss_obs.Metric.Histogram.exponential ~lo:1e-6 ~factor:4. ~buckets:16)
            ~help:"Delivery latency reservoir summary points (horizon units)"
            "broker.delivery_latency"
        in
        (* The reservoir keeps the exact samples; replay the kept window
           so the histogram's quantiles agree with the report's. *)
        Array.iter
          (fun x -> Mcss_obs.Metric.Histogram.observe h x)
          (Reservoir.kept reservoir))
  end;
  report
