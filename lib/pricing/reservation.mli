(** Reservation-vs-on-demand capacity pricing, à la Pub/Sub Lite: the
    elastic planner commits to [reserved] VMs of pre-provisioned
    capacity at a discounted hourly rate and pays the full (or a
    premium) On-Demand rate only for the overflow VMs a traffic peak
    forces on top. A plan's cost then depends on the {e commitment
    schedule} over time, not just the instant allocation — exactly the
    trade the paper's static per-horizon [C1] cannot express.

    Zonal vs regional: a zonal deployment prices capacity in one
    failure zone; a regional one replicates brokers across zones and
    multiplies the hourly rate by [regional_premium] (the managed
    services price regional Lite reservations at a steep multiple of
    zonal). Bandwidth pricing is unchanged and stays in
    {!Cost_model}. *)

type deployment = Zonal | Regional

type t = {
  instance : Instance.t;  (** The VM type capacity is provisioned in. *)
  reserved_discount : float;
      (** Multiplier on the On-Demand hourly rate for reserved
          capacity, in (0, 1] — default
          [Billing.discount Reserved_1yr] = 0.62. *)
  on_demand_premium : float;
      (** Multiplier on the On-Demand hourly rate for overflow VMs,
          [>= 1] (elastic capacity is never cheaper than committed). *)
  deployment : deployment;
  regional_premium : float;
      (** Hourly multiplier applied to {e both} tiers when
          [deployment = Regional]; [>= 1]. *)
  scaling_usd_per_action : float;
      (** Flat charge per scaling action (a reservation change or a
          fleet consolidation pass) — the operational cost of moving
          pairs and reconnecting subscribers, [>= 0]. *)
}

val default : ?instance:Instance.t -> ?deployment:deployment -> unit -> t
(** c3.large, zonal, 1-yr reserved discount (0.62), premium 1.0,
    regional premium 2.5, $0.10 per scaling action. *)

val validate : t -> unit
(** Raises [Invalid_argument] on out-of-range fields (documented above). *)

val deployment_multiplier : t -> float
val reserved_hourly : t -> float
val on_demand_hourly : t -> float

val slice_vm_cost : t -> reserved:int -> used:int -> hours:float -> float
(** VM cost of one time slice: [reserved] committed VMs billed at the
    reserved rate whether used or not, plus [max 0 (used - reserved)]
    overflow VMs at the on-demand rate. Raises [Invalid_argument] on
    negative inputs. *)

val scaling_cost : t -> actions:int -> float

val deployment_to_string : deployment -> string
val deployment_of_string : string -> deployment option

val pp : Format.formatter -> t -> unit
