type deployment = Zonal | Regional

type t = {
  instance : Instance.t;
  reserved_discount : float;
  on_demand_premium : float;
  deployment : deployment;
  regional_premium : float;
  scaling_usd_per_action : float;
}

let default ?(instance = Instance.c3_large) ?(deployment = Zonal) () =
  {
    instance;
    reserved_discount = Billing.discount Billing.Reserved_1yr;
    on_demand_premium = 1.0;
    deployment;
    regional_premium = 2.5;
    scaling_usd_per_action = 0.10;
  }

let validate r =
  if not (r.reserved_discount > 0. && r.reserved_discount <= 1.) then
    invalid_arg "Reservation: reserved discount must be in (0, 1]";
  if not (r.on_demand_premium >= 1.) then
    invalid_arg "Reservation: on-demand premium must be >= 1";
  if not (r.regional_premium >= 1.) then
    invalid_arg "Reservation: regional premium must be >= 1";
  if not (r.scaling_usd_per_action >= 0.) then
    invalid_arg "Reservation: scaling cost must be >= 0"

let deployment_multiplier r =
  match r.deployment with Zonal -> 1.0 | Regional -> r.regional_premium

let reserved_hourly r =
  r.instance.Instance.hourly_usd *. r.reserved_discount *. deployment_multiplier r

let on_demand_hourly r =
  r.instance.Instance.hourly_usd *. r.on_demand_premium *. deployment_multiplier r

let slice_vm_cost r ~reserved ~used ~hours =
  if reserved < 0 then invalid_arg "Reservation.slice_vm_cost: reserved < 0";
  if used < 0 then invalid_arg "Reservation.slice_vm_cost: used < 0";
  if not (hours >= 0.) then invalid_arg "Reservation.slice_vm_cost: hours < 0";
  let overflow = max 0 (used - reserved) in
  (float_of_int reserved *. reserved_hourly r
  +. float_of_int overflow *. on_demand_hourly r)
  *. hours

let scaling_cost r ~actions =
  if actions < 0 then invalid_arg "Reservation.scaling_cost: actions < 0";
  float_of_int actions *. r.scaling_usd_per_action

let deployment_to_string = function Zonal -> "zonal" | Regional -> "regional"

let deployment_of_string = function
  | "zonal" -> Some Zonal
  | "regional" -> Some Regional
  | _ -> None

let pp ppf r =
  Format.fprintf ppf
    "%s %s: reserved $%.4f/h, on-demand $%.4f/h, $%.2f per scaling action"
    r.instance.Instance.name
    (deployment_to_string r.deployment)
    (reserved_hourly r) (on_demand_hourly r) r.scaling_usd_per_action
