(** The delivery sinks: one connection per broker, attached with the
    [attach] verb, each drained by a collector domain. All collectors
    share one tally — per-subscriber {e unique} event counts
    (deduplicated by (seq, subscriber), which is what makes re-home
    windows count duplicates instead of double-delivering), a duplicate
    counter, and a seeded end-to-end latency reservoir
    ({!Mcss_broker.Fleet.Reservoir} over [now - pub_ns], seconds). *)

module Server := Mcss_serve.Server

type t

val create :
  num_subscribers:int -> ?reservoir:int -> latency_seed:int -> unit -> t
(** [reservoir] defaults to 10_000 samples. *)

val attach : t -> vm:int -> Server.address -> (unit, string) result
(** Connect to the broker, attach as a sink for all subscribers, and
    start a collector domain. Attaching twice to the same [vm] is a
    no-op ([Ok ()]) — which is how a pump running over a plan change
    can idempotently cover spawned brokers. *)

val attach_cluster : t -> Cluster.t -> (unit, string) result
(** {!attach} to every live broker; first error wins (already-attached
    brokers stay attached). *)

val copies : t -> int
(** Delivery copies received, duplicates included — the quiesce
    counter matched against the brokers' ledgers. *)

val unique : t -> int array
(** Per-subscriber unique event counts (a copy). *)

val duplicates : t -> int

val latency : t -> Mcss_broker.Fleet.latency_summary option
(** End-to-end seconds, publisher stamp to sink receipt. *)

val close : t -> unit
(** Close every sink connection and join the collectors. Idempotent. *)
