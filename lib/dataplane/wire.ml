module Json = Mcss_serve.Json
module Server = Mcss_serve.Server

type event = { topic : int; seq : int; pub_ns : int }
type delivery = { topic : int; seq : int; pub_ns : int; subscribers : int list }

let pub_line events =
  let b = Buffer.create (32 * List.length events + 24) in
  Buffer.add_string b {|{"req":"pub","e":[|};
  List.iteri
    (fun i (e : event) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "[%d,%d,%d]" e.topic e.seq e.pub_ns))
    events;
  Buffer.add_string b "]}\n";
  Buffer.contents b

let pub_request events =
  Json.Obj
    [
      ("req", Json.String "pub");
      ( "e",
        Json.List
          (List.map
             (fun (e : event) ->
               Json.List [ Json.Int e.topic; Json.Int e.seq; Json.Int e.pub_ns ])
             events) );
    ]

let int_at j =
  match Json.to_int_opt j with Some x when x >= 0 -> Some x | _ -> None

let events_of j =
  match Json.member "e" j with
  | None -> Error "pub needs an \"e\" array"
  | Some v -> (
      match Json.to_list_opt v with
      | None -> Error "field \"e\" must be an array"
      | Some xs ->
          let rec conv acc = function
            | [] -> Ok (List.rev acc)
            | Json.List [ t; n; p ] :: rest -> (
                match (int_at t, int_at n, int_at p) with
                | Some topic, Some seq, Some pub_ns ->
                    conv ({ topic; seq; pub_ns } :: acc) rest
                | _ -> Error "events must be [topic, seq, pub_ns] of nonnegative ints")
            | _ -> Error "events must be [topic, seq, pub_ns] triples"
          in
          conv [] xs)

let delivery_line d =
  let b = Buffer.create 64 in
  Buffer.add_string b
    (Printf.sprintf {|{"t":%d,"n":%d,"p":%d,"s":[|} d.topic d.seq d.pub_ns);
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int s))
    d.subscribers;
  Buffer.add_string b "]}\n";
  Buffer.contents b

let delivery_of j =
  let field key =
    match Json.member key j with
    | Some v -> (
        match int_at v with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "field %S must be a nonnegative int" key))
    | None -> Error (Printf.sprintf "delivery line needs field %S" key)
  in
  let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e in
  let* topic = field "t" in
  let* seq = field "n" in
  let* pub_ns = field "p" in
  match Json.member "s" j with
  | None -> Error "delivery line needs field \"s\""
  | Some v -> (
      match Json.to_list_opt v with
      | None -> Error "field \"s\" must be an array"
      | Some xs ->
          let rec conv acc = function
            | [] -> Ok { topic; seq; pub_ns; subscribers = List.rev acc }
            | x :: rest -> (
                match int_at x with
                | Some s -> conv (s :: acc) rest
                | None -> Error "field \"s\" must contain nonnegative ints")
          in
          conv [] xs)

let connect address =
  match address with
  | Server.Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e -> Unix.close fd; raise e);
      fd
  | Server.Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (addr, port))
       with e -> Unix.close fd; raise e);
      fd

module Reader = struct
  type t = { fd : Unix.file_descr; pending : Buffer.t; chunk : bytes }

  let create fd = { fd; pending = Buffer.create 4096; chunk = Bytes.create 65536 }

  (* Split out every complete line accumulated so far; the tail (no
     newline yet) stays buffered. *)
  let pop_lines r =
    let s = Buffer.contents r.pending in
    match String.rindex_opt s '\n' with
    | None -> []
    | Some last ->
        Buffer.clear r.pending;
        Buffer.add_substring r.pending s (last + 1) (String.length s - last - 1);
        String.split_on_char '\n' (String.sub s 0 last)
        |> List.filter (fun l -> l <> "")

  let read_lines r =
    match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
    | 0 -> `Eof
    | n ->
        Buffer.add_subbytes r.pending r.chunk 0 n;
        `Lines (pop_lines r)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        `Again
end
