module Fleet = Mcss_broker.Fleet
module Problem = Mcss_core.Problem
module Clock = Mcss_obs.Clock
module Workload = Mcss_workload.Workload
module Delivery = Mcss_report.Delivery

type config = {
  duration : float;
  arrivals : Fleet.arrivals;
  pace : float;
  batch : int;
  latency_seed : int;
  quiesce_timeout : float;
  tolerance : float option;
}

let default_config =
  {
    duration = 1.0;
    arrivals = Fleet.Deterministic;
    pace = 0.;
    batch = 64;
    latency_seed = 1;
    quiesce_timeout = 10.;
    tolerance = None;
  }

type report = {
  publisher : Publisher.stats;
  copies_received : int;
  duplicates : int;
  unique : int array;
  latency : Fleet.latency_summary option;
  ledgers : Ledger.t list;
  totals : Delivery.totals;
  reconcile : Reconcile.t option;
  quiesced : bool;
  wall_s : float;
}

let ledgers_of cluster =
  List.filter_map
    (fun (_, addr) ->
      match Control.ledger addr with Ok l -> Some l | Error _ -> None)
    (Cluster.live cluster)

let run ?(config = default_config) ?sinks cluster p a =
  if not (config.duration > 0.) then invalid_arg "Pump.run: duration must be positive";
  let w = p.Problem.workload in
  let owned, sinks =
    match sinks with
    | Some s -> (false, s)
    | None ->
        ( true,
          Subscriber.create ~num_subscribers:(Workload.num_subscribers w)
            ~latency_seed:config.latency_seed () )
  in
  Fun.protect
    ~finally:(fun () -> if owned then Subscriber.close sinks)
    (fun () ->
      (match Subscriber.attach_cluster sinks cluster with
      | Ok () -> ()
      | Error m -> failwith ("Pump.run: " ^ m));
      let before = ledgers_of cluster in
      let received0 = Subscriber.copies sinks in
      let t0 = Clock.now_ns () in
      let schedule =
        Fleet.schedule_events w ~arrivals:config.arrivals ~duration:config.duration
      in
      let publisher =
        Publisher.run ~batch:config.batch ~pace:config.pace cluster ~schedule
      in
      (* Quiesce: all acked copies are in sink buffers; wait for the
         sinks to have drained as many as the live ledgers enqueued. *)
      let window ledgers_after =
        List.filter_map
          (fun (after : Ledger.t) ->
            match
              List.find_opt (fun (b : Ledger.t) -> b.Ledger.vm = after.Ledger.vm) before
            with
            | Some b -> Some (Ledger.diff ~before:b ~after)
            | None -> Some after (* spawned during the run *))
          ledgers_after
      in
      let deadline =
        Int64.add t0 (Int64.of_float (config.quiesce_timeout *. 1e9))
      in
      let quiesced = ref false in
      let ledgers = ref (window (ledgers_of cluster)) in
      let target ls =
        List.fold_left
          (fun acc (l : Ledger.t) -> acc + l.Ledger.totals.Delivery.delivered)
          0 ls
      in
      while (not !quiesced) && Clock.now_ns () < deadline do
        if Subscriber.copies sinks - received0 >= target !ledgers then
          quiesced := true
        else begin
          Unix.sleepf 0.01;
          ledgers := window (ledgers_of cluster)
        end
      done;
      let ledgers = !ledgers in
      let totals = Ledger.sum_totals ledgers in
      let unique = Subscriber.unique sinks in
      let reconcile =
        Option.map
          (fun tolerance ->
            Reconcile.run p a ~duration:config.duration ~tolerance
              ~measured_unique:unique ~ledgers
              ~assignment:(Cluster.assignment cluster))
          config.tolerance
      in
      {
        publisher;
        copies_received = Subscriber.copies sinks - received0;
        duplicates = Subscriber.duplicates sinks;
        unique;
        latency = Subscriber.latency sinks;
        ledgers;
        totals;
        reconcile;
        quiesced = !quiesced;
        wall_s = Clock.seconds_since t0;
      })
