module Json = Mcss_serve.Json
module Server = Mcss_serve.Server
module Problem = Mcss_core.Problem
module Allocation = Mcss_core.Allocation

type member = {
  id : int;
  addr : Server.address;
  proc : Broker_proc.t option;  (* None when the broker lives in another process *)
  pairs : (int * int, unit) Hashtbl.t;  (* local mirror of the broker's table *)
  topic_count : (int, int) Hashtbl.t;  (* topic -> pairs mirrored, for routing *)
  mutable alive : bool;
}

type t = {
  dir : string;
  message_bytes : int;
  bytes_per_horizon : float;
  config : Broker_proc.config;
  lock : Mutex.t;
  mutable members : member list;
  mutable next_id : int;
  mutable assign : (int * int) list;  (* plan vm -> member id *)
}

type apply_stats = {
  matched : int;
  spawned : int;
  pairs_added : int;
  pairs_removed : int;
  errors : string list;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let mirror_add m (topic, subscriber) =
  if not (Hashtbl.mem m.pairs (topic, subscriber)) then begin
    Hashtbl.replace m.pairs (topic, subscriber) ();
    Hashtbl.replace m.topic_count topic
      (1 + Option.value ~default:0 (Hashtbl.find_opt m.topic_count topic))
  end

let mirror_remove m (topic, subscriber) =
  if Hashtbl.mem m.pairs (topic, subscriber) then begin
    Hashtbl.remove m.pairs (topic, subscriber);
    match Hashtbl.find_opt m.topic_count topic with
    | Some 1 | None -> Hashtbl.remove m.topic_count topic
    | Some n -> Hashtbl.replace m.topic_count topic (n - 1)
  end

let socket_path dir id = Filename.concat dir (Printf.sprintf "broker-%d.sock" id)

let spawn_member t id pairs_list =
  let addr = Server.Unix_socket (socket_path t.dir id) in
  let proc =
    Broker_proc.start ~config:t.config ~vm:id ~address:addr ~pairs:pairs_list
      ~bytes_per_horizon:t.bytes_per_horizon ~message_bytes:t.message_bytes ()
  in
  let m =
    {
      id;
      addr;
      proc = Some proc;
      pairs = Hashtbl.create 256;
      topic_count = Hashtbl.create 64;
      alive = true;
    }
  in
  List.iter (fun p -> mirror_add m p) pairs_list;
  m

let boot ?(config = Broker_proc.default_config) ~dir ~message_bytes p a =
  if message_bytes <= 0 then invalid_arg "Cluster.boot: message_bytes must be positive";
  let bytes_per_horizon = p.Problem.capacity *. float_of_int message_bytes in
  let t =
    {
      dir;
      message_bytes;
      bytes_per_horizon;
      config;
      lock = Mutex.create ();
      members = [];
      next_id = 0;
      assign = [];
    }
  in
  let members =
    Array.to_list
      (Array.map
         (fun vm ->
           let id = Allocation.vm_id vm in
           let pairs = ref [] in
           Allocation.iter_vm_pairs vm (fun topic subscriber ->
               pairs := (topic, subscriber) :: !pairs);
           spawn_member t id !pairs)
         (Allocation.vms a))
  in
  t.members <- members;
  t.next_id <- 1 + List.fold_left (fun acc m -> max acc m.id) (-1) members;
  t.assign <- List.map (fun m -> (m.id, m.id)) members;
  t

(* ----- manifest ----- *)

let save_manifest t path =
  let members =
    List.filter_map
      (fun m ->
        if m.alive then
          Some
            (Json.List
               [ Json.Int m.id; Json.String (Server.address_to_string m.addr) ])
        else None)
      t.members
  in
  let j =
    Json.Obj
      [
        ("message_bytes", Json.Int t.message_bytes);
        ("bytes_per_horizon", Json.Float t.bytes_per_horizon);
        ("members", Json.List members);
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string j ^ "\n"))

let attach ~manifest a =
  let text =
    let ic = open_in manifest in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let j =
    match Json.parse (String.trim text) with
    | Ok j -> j
    | Error m -> failwith (manifest ^ ": " ^ m)
  in
  let int key =
    match Json.member key j |> Fun.flip Option.bind Json.to_int_opt with
    | Some x -> x
    | None -> failwith (manifest ^ ": missing field " ^ key)
  in
  let bph =
    match Json.member "bytes_per_horizon" j |> Fun.flip Option.bind Json.to_float_opt with
    | Some x -> x
    | None -> failwith (manifest ^ ": missing field bytes_per_horizon")
  in
  let members_json =
    match Json.member "members" j |> Fun.flip Option.bind Json.to_list_opt with
    | Some xs -> xs
    | None -> failwith (manifest ^ ": missing field members")
  in
  let t =
    {
      dir = Filename.dirname manifest;
      message_bytes = int "message_bytes";
      bytes_per_horizon = bph;
      config = Broker_proc.default_config;
      lock = Mutex.create ();
      members = [];
      next_id = 0;
      assign = [];
    }
  in
  let members =
    List.map
      (fun entry ->
        match entry with
        | Json.List [ id; addr ] -> (
            match (Json.to_int_opt id, Json.to_string_opt addr) with
            | Some id, Some addr_s -> (
                match Server.address_of_string addr_s with
                | Ok addr ->
                    {
                      id;
                      addr;
                      proc = None;
                      pairs = Hashtbl.create 256;
                      topic_count = Hashtbl.create 64;
                      alive = true;
                    }
                | Error m -> failwith (manifest ^ ": " ^ m))
            | _ -> failwith (manifest ^ ": malformed member entry"))
        | _ -> failwith (manifest ^ ": malformed member entry"))
      members_json
  in
  (* Seed the mirrors from the boot plan: pairs of plan VM [i] live on
     the member with id [i]. *)
  Array.iter
    (fun vm ->
      let id = Allocation.vm_id vm in
      match List.find_opt (fun m -> m.id = id) members with
      | None -> failwith (Printf.sprintf "%s: plan VM %d has no member" manifest id)
      | Some m ->
          Allocation.iter_vm_pairs vm (fun topic subscriber ->
              mirror_add m (topic, subscriber)))
    (Allocation.vms a);
  t.members <- members;
  t.next_id <- 1 + List.fold_left (fun acc m -> max acc m.id) (-1) members;
  t.assign <- List.map (fun m -> (m.id, m.id)) members;
  t

(* ----- queries ----- *)

let live t =
  locked t (fun () ->
      List.filter_map (fun m -> if m.alive then Some (m.id, m.addr) else None) t.members
      |> List.sort compare)

let address t id =
  locked t (fun () ->
      List.find_opt (fun m -> m.id = id && m.alive) t.members
      |> Option.map (fun m -> m.addr))

let routing t ~topic =
  locked t (fun () ->
      List.filter_map
        (fun m ->
          if m.alive && Hashtbl.mem m.topic_count topic then Some m.id else None)
        t.members
      |> List.sort compare)

let assignment t = locked t (fun () -> t.assign)

(* Route-and-send atomicity: a publisher snapshots the routing table and
   sends a whole batch inside one critical section, and [apply_plan]
   issues every [rehome remove] inside the same lock. So when a remove
   is processed by a broker, any batch routed with the pre-add snapshot
   has already been acked (the old home still had the pair), and any
   later batch sees the new home in its snapshot — no window where a
   moving pair can miss both homes. *)
let with_routes t f =
  locked t (fun () ->
      let route ~topic =
        List.filter_map
          (fun m ->
            if m.alive && Hashtbl.mem m.topic_count topic then Some m.id else None)
          t.members
        |> List.sort compare
      in
      let addr id =
        List.find_opt (fun m -> m.id = id && m.alive) t.members
        |> Option.map (fun m -> m.addr)
      in
      f ~route ~addr)

let pairs_on t id =
  locked t (fun () ->
      match List.find_opt (fun m -> m.id = id) t.members with
      | Some m when m.alive -> Hashtbl.length m.pairs
      | _ -> 0)

(* ----- chaos ----- *)

let kill t id =
  let victim =
    locked t (fun () ->
        match List.find_opt (fun m -> m.id = id && m.alive) t.members with
        | None -> None
        | Some m ->
            m.alive <- false;
            Some m)
  in
  match victim with
  | None -> false
  | Some m ->
      Option.iter Broker_proc.kill m.proc;
      Control.kill m.addr;
      true

(* ----- live plan reconciliation ----- *)

let target_of allocation =
  (* plan vm -> its pairs, and pair -> plan vm *)
  let per_vm : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun vm ->
      let id = Allocation.vm_id vm in
      let l = ref [] in
      Allocation.iter_vm_pairs vm (fun topic subscriber ->
          l := (topic, subscriber) :: !l);
      Hashtbl.replace per_vm id l)
    (Allocation.vms allocation);
  per_vm

let apply_plan ?(on_spawn = fun _ _ -> ()) t allocation =
  let per_vm = target_of allocation in
  let alive = locked t (fun () -> List.filter (fun m -> m.alive) t.members) in
  (* Overlap between every plan VM and every live broker: walk the
     target pairs once, crediting whichever broker mirrors the pair. *)
  let home = Hashtbl.create 4096 in
  List.iter
    (fun m -> Hashtbl.iter (fun pair () -> Hashtbl.replace home pair m.id) m.pairs)
    alive;
  let overlap : (int * int, int ref) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun plan_vm pairs ->
      List.iter
        (fun pair ->
          match Hashtbl.find_opt home pair with
          | None -> ()
          | Some member_id -> (
              match Hashtbl.find_opt overlap (plan_vm, member_id) with
              | Some r -> incr r
              | None -> Hashtbl.replace overlap (plan_vm, member_id) (ref 1)))
        !pairs)
    per_vm;
  let candidates =
    Hashtbl.fold (fun (pv, mid) r acc -> (!r, pv, mid) :: acc) overlap []
    |> List.sort (fun (o1, pv1, m1) (o2, pv2, m2) ->
           (* overlap desc, identity-mapping preferred, then stable *)
           match compare o2 o1 with
           | 0 -> compare (pv1 <> m1, pv1, m1) (pv2 <> m2, pv2, m2)
           | c -> c)
  in
  let vm_to_member : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let member_taken : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (_, pv, mid) ->
      if (not (Hashtbl.mem vm_to_member pv)) && not (Hashtbl.mem member_taken mid)
      then begin
        Hashtbl.replace vm_to_member pv mid;
        Hashtbl.replace member_taken mid ()
      end)
    candidates;
  (* Unmatched plan VMs (no overlap with any live broker, or all their
     overlapping brokers were taken): spawn fresh brokers, empty — the
     pairs arrive through the same add phase as everyone else's. *)
  let spawned = ref 0 in
  Hashtbl.iter
    (fun plan_vm _ ->
      if not (Hashtbl.mem vm_to_member plan_vm) then begin
        let m =
          locked t (fun () ->
              let id = t.next_id in
              t.next_id <- id + 1;
              let m = spawn_member t id [] in
              t.members <- t.members @ [ m ];
              m)
        in
        incr spawned;
        on_spawn m.id m.addr;
        Hashtbl.replace vm_to_member plan_vm m.id;
        Hashtbl.replace member_taken m.id ()
      end)
    per_vm;
  let member_by_id id =
    locked t (fun () -> List.find_opt (fun m -> m.id = id) t.members)
  in
  let errors = ref [] in
  let pairs_added = ref 0 and pairs_removed = ref 0 in
  (* Phase 1: adds everywhere. Mirrors are updated on ack, so routing
     serves the union of old and new hosts from here on. *)
  let removals = ref [] in
  Hashtbl.iter
    (fun plan_vm mid ->
      match member_by_id mid with
      | None -> ()
      | Some m ->
          let target = !(Hashtbl.find per_vm plan_vm) in
          let adds =
            List.filter (fun pair -> not (Hashtbl.mem m.pairs pair)) target
          in
          let target_set = Hashtbl.create (List.length target) in
          List.iter (fun pair -> Hashtbl.replace target_set pair ()) target;
          let removes =
            Hashtbl.fold
              (fun pair () acc ->
                if Hashtbl.mem target_set pair then acc else pair :: acc)
              m.pairs []
          in
          if removes <> [] then removals := (m, removes) :: !removals;
          if adds <> [] then begin
            match Control.rehome m.addr ~add:adds ~remove:[] with
            | Ok _ ->
                locked t (fun () -> List.iter (fun p -> mirror_add m p) adds);
                pairs_added := !pairs_added + List.length adds
            | Error e ->
                errors := Printf.sprintf "broker %d add: %s" m.id e :: !errors
          end)
    vm_to_member;
  (* Brokers no plan VM claimed keep running but lose all their pairs. *)
  List.iter
    (fun m ->
      if not (Hashtbl.mem member_taken m.id) then begin
        let all = Hashtbl.fold (fun pair () acc -> pair :: acc) m.pairs [] in
        if all <> [] then removals := (m, all) :: !removals
      end)
    alive;
  (* Phase 2: removes, only after every add acked. Each remove is issued
     under the cluster lock so it serialises with in-flight publisher
     batches (see [with_routes]). *)
  List.iter
    (fun (m, removes) ->
      let outcome =
        locked t (fun () ->
            let r = Control.rehome m.addr ~add:[] ~remove:removes in
            (match r with
            | Ok _ -> List.iter (fun p -> mirror_remove m p) removes
            | Error _ -> ());
            r)
      in
      match outcome with
      | Ok _ -> pairs_removed := !pairs_removed + List.length removes
      | Error e -> errors := Printf.sprintf "broker %d remove: %s" m.id e :: !errors)
    !removals;
  locked t (fun () ->
      t.assign <- Hashtbl.fold (fun pv mid acc -> (pv, mid) :: acc) vm_to_member []
                  |> List.sort compare);
  {
    matched = Hashtbl.length vm_to_member - !spawned;
    spawned = !spawned;
    pairs_added = !pairs_added;
    pairs_removed = !pairs_removed;
    errors = List.rev !errors;
  }

(* ----- lifecycle ----- *)

let join t =
  List.iter (fun m -> Option.iter Broker_proc.join m.proc) t.members

let shutdown t =
  List.iter
    (fun (_, addr) -> ignore (Control.shutdown addr))
    (live t);
  locked t (fun () -> List.iter (fun m -> m.alive <- false) t.members);
  join t
