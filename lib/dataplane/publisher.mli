(** The load generator: drives a publication schedule into a live
    {!Cluster}, one synchronous batch per destination broker.

    Events are taken in schedule order with a global sequence number
    (their index), stamped with {!Mcss_obs.Clock} at send time, and
    routed to {e every} broker currently hosting the topic — the
    cluster's routing table is re-read for each batch, so re-homes and
    kills that land mid-run take effect within one batch. Each batch is
    acked by the broker only after fan-out enqueue, which gives the
    publisher backpressure and makes "all batches acked" mean "all
    copies are in sink buffers or counted dropped". *)

type stats = {
  events : int;  (** Schedule events attempted. *)
  copies_sent : int;  (** Acked (event, broker) copies. *)
  acked_delivered : int;  (** Sink copies the brokers enqueued. *)
  acked_dropped : int;  (** Copies the brokers dropped (overflow/unattached). *)
  send_failures : int;  (** Copies lost to dead brokers (transport errors). *)
  unrouted : int;  (** Events whose topic had no live broker at send time. *)
}

val run :
  ?batch:int ->
  ?pace:float ->
  Cluster.t ->
  schedule:(float * int) array ->
  stats
(** Pump the whole schedule ({!Mcss_broker.Fleet.schedule_events}
    shape: time-sorted (time, topic)). [batch] (default 64) bounds
    events per request; [pace] (default [0.] = as fast as acks allow)
    is wall seconds per horizon — with [pace > 0.] the publisher sleeps
    until each batch's first event is due, so control-plane changes can
    be interleaved with a run deterministically. *)
