(** Byte-level helpers for the dataplane's line protocol: the broker
    processes speak the same one-JSON-object-per-line framing as the
    planning daemon ({!Mcss_serve.Protocol}), plus two dataplane-native
    line shapes that never transit the planning servers:

    {v
    {"req":"pub","e":[[TOPIC,SEQ,PUB_NS],...]}        publisher -> broker
    {"req":"attach"}  (or "subs":[S,...])             sink      -> broker
    {"t":TOPIC,"n":SEQ,"p":PUB_NS,"s":[S,...]}        broker    -> sink
    {"req":"kill"}                                    chaos     -> broker
    v}

    [SEQ] is the publisher's global event sequence number and [PUB_NS]
    the {!Mcss_obs.Clock} stamp taken at send time; both ride through
    the broker untouched, so a sink can deduplicate re-home duplicates
    by (SEQ, subscriber) and measure end-to-end latency against its own
    clock (valid on one machine, which is where the dataplane runs). *)

module Json := Mcss_serve.Json

type event = { topic : int; seq : int; pub_ns : int }
(** One publication as it rides the wire. *)

type delivery = { topic : int; seq : int; pub_ns : int; subscribers : int list }
(** One fan-out line: the broker delivered event [seq] of [topic] to
    [subscribers] (the locally-homed pairs with an attached sink). *)

val pub_line : event list -> string
(** The publisher's batch request, newline-terminated. *)

val pub_request : event list -> Json.t
(** The same request as a JSON value (for {!Mcss_serve.Client}). *)

val events_of : Json.t -> (event list, string) result
(** Decode the ["e"] field of a pub request. *)

val delivery_line : delivery -> string
val delivery_of : Json.t -> (delivery, string) result

val connect : Mcss_serve.Server.address -> Unix.file_descr
(** Blocking connect to a broker (or planning) socket. Raises
    [Unix.Unix_error] when the peer is not there. *)

(** Incremental line reader over a file descriptor that may be in
    non-blocking mode: bytes accumulate across reads, lines pop out as
    they complete. *)
module Reader : sig
  type t

  val create : Unix.file_descr -> t

  val read_lines : t -> [ `Lines of string list | `Eof | `Again ]
  (** One [read] syscall's worth of progress: complete lines received
      (possibly none — partial data stays buffered, yielding
      [`Lines []]), end of stream, or [EAGAIN]/[EINTR]. *)
end
