(** Reconciliation: the measured dataplane against the verified model.

    The pump and {!Mcss_sim.Simulator} generate the {e same}
    deterministic publication schedule ([round(ev_t · duration)] events
    per topic, {!Mcss_broker.Fleet.schedule_events}), so on a healthy
    fleet the per-subscriber unique delivery counts must match the
    simulator's predictions {e exactly}, and per-VM handoffs must match
    [vm_ingress]. A nonzero tolerance only buys slack for runs with
    injected faults or live re-homes in flight — a steady-state
    deviation is a bug in one of the substrates, which is the point of
    measuring it. *)

type vm_row = {
  plan_vm : int;
  broker : int;  (** The broker serving this plan VM ({!Cluster.assignment}). *)
  measured : int;  (** Handoffs in the run's ledger window. *)
  predicted : int;  (** Simulator [vm_ingress]. *)
  deviation : float;  (** [|measured - predicted| / max 1 predicted]. *)
}

type t = {
  duration : float;
  tolerance : float;
  subscribers : int;
  subscriber_mismatches : (int * int * int) list;
      (** (subscriber, measured unique, predicted) where they differ. *)
  vm_rows : vm_row list;
  max_deviation : float;  (** Worst relative deviation, either axis. *)
  measured : Mcss_report.Delivery.totals;  (** Summed ledger window. *)
  predicted : Mcss_report.Delivery.totals;  (** Simulator totals. *)
  pass : bool;  (** [max_deviation <= tolerance]. *)
}

val run :
  Mcss_core.Problem.t ->
  Mcss_core.Allocation.t ->
  duration:float ->
  tolerance:float ->
  measured_unique:int array ->
  ledgers:Ledger.t list ->
  assignment:(int * int) list ->
  t
(** Predict with deterministic arrivals over [duration] horizons and
    compare. [ledgers] are the run's per-broker windows
    ({!Ledger.diff}); [assignment] maps plan VMs to broker ids so a
    recovered fleet (renumbered plan) still lines up. Brokers carrying
    no plan VM are ignored; a plan VM whose broker reported no ledger
    (killed mid-run) counts its prediction as fully missed. *)

val pp : Format.formatter -> t -> unit
