module Json = Mcss_serve.Json
module Protocol = Mcss_serve.Protocol
module Server = Mcss_serve.Server
module Broker = Mcss_broker.Broker
module Message = Mcss_broker.Message
module Clock = Mcss_obs.Clock
module Delivery = Mcss_report.Delivery

type config = { max_sink_buffer : int; tick_s : float; log : string -> unit }

let default_config = { max_sink_buffer = 4 * 1024 * 1024; tick_s = 0.05; log = ignore }

type t = {
  vm : int;
  address : Server.address;
  kill_flag : bool Atomic.t;
  domain : unit Domain.t;
}

let vm t = t.vm
let address t = t.address
let kill t = Atomic.set t.kill_flag true
let join t = Domain.join t.domain

(* ----- per-connection state ----- *)

type sink_filter = All | Subset of (int, unit) Hashtbl.t

type conn = {
  fd : Unix.file_descr;
  reader : Wire.Reader.t;
  mutable sink : sink_filter option;  (* [Some _] once attached *)
  outq : string Queue.t;
  mutable out_bytes : int;
  mutable out_off : int;  (* bytes of the queue front already written *)
  mutable dead : bool;
}

let conn_of fd =
  Unix.set_nonblock fd;
  {
    fd;
    reader = Wire.Reader.create fd;
    sink = None;
    outq = Queue.create ();
    out_bytes = 0;
    out_off = 0;
    dead = false;
  }

let wants_sub filter sub =
  match filter with All -> true | Subset tbl -> Hashtbl.mem tbl sub

let enqueue c line =
  Queue.add line c.outq;
  c.out_bytes <- c.out_bytes + String.length line

(* Write as much pending output as the socket takes right now. *)
let flush_conn c =
  (try
     while (not (Queue.is_empty c.outq)) && not c.dead do
       let front = Queue.peek c.outq in
       let len = String.length front - c.out_off in
       let n = Unix.single_write_substring c.fd front c.out_off len in
       c.out_bytes <- c.out_bytes - n;
       if n = len then begin
         ignore (Queue.pop c.outq);
         c.out_off <- 0
       end
       else c.out_off <- c.out_off + n
     done
   with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | Unix.Unix_error _ -> c.dead <- true);
  ()

(* ----- the serving loop ----- *)

exception Teardown of bool  (* graceful? *)

type state = {
  core : Broker.t;
  config : config;
  message_bytes : int;
  mutable conns : conn list;
  mutable draining : bool;
  mutable last_time : float;
  (* ledger counters *)
  mutable published : int;
  mutable handoffs : int;
  mutable delivered : int;
  mutable dropped_overflow : int;
  mutable dropped_unattached : int;
  mutable rehomed_in : int;
  mutable rehomed_out : int;
  mutable queue_peak_bytes : int;
}

let ledger_of st ~vm =
  {
    Ledger.vm;
    pairs = Broker.num_pairs st.core;
    draining = st.draining;
    totals =
      {
        Delivery.published = st.published;
        handoffs = st.handoffs;
        delivered = st.delivered;
        dropped = st.dropped_overflow + st.dropped_unattached;
      };
    dropped_overflow = st.dropped_overflow;
    dropped_unattached = st.dropped_unattached;
    rehomed_in = st.rehomed_in;
    rehomed_out = st.rehomed_out;
    queue_peak_bytes = st.queue_peak_bytes;
    max_queue_delay = (Broker.stats st.core).Broker.max_queue_delay;
  }

let reply c ?id fields = enqueue c (Json.to_string (Protocol.ok_response ?id fields) ^ "\n")

let reply_error c ?id ~code ~message () =
  enqueue c (Json.to_string (Protocol.error_response ?id ~code ~message ()) ^ "\n")

let handle_pub st ~vm ~now_s c j =
  if st.draining then
    reply_error c ~code:Protocol.Draining
      ~message:(Printf.sprintf "broker %d is draining" vm)
      ()
  else
    match Wire.events_of j with
    | Error m -> reply_error c ~code:Protocol.Bad_request ~message:m ()
    | Ok events ->
        let sinks = List.filter (fun c -> c.sink <> None && not c.dead) st.conns in
        let delivered_batch = ref 0 and dropped_batch = ref 0 in
        List.iter
          (fun (e : Wire.event) ->
            st.published <- st.published + 1;
            let time = Float.max now_s st.last_time in
            st.last_time <- time;
            let msg =
              Message.make ~id:e.Wire.seq ~topic:e.Wire.topic ~publish_time:time
                ~size_bytes:st.message_bytes
            in
            match Broker.ingest st.core msg with
            | [] -> ()
            | deliveries ->
                st.handoffs <- st.handoffs + 1;
                List.iter
                  (fun (d : Broker.delivery) ->
                    let sub = d.Broker.subscriber in
                    let took = ref false in
                    List.iter
                      (fun sc ->
                        match sc.sink with
                        | Some filter when wants_sub filter sub ->
                            if sc.out_bytes > st.config.max_sink_buffer then begin
                              st.dropped_overflow <- st.dropped_overflow + 1;
                              incr dropped_batch;
                              took := true
                            end
                            else begin
                              enqueue sc
                                (Wire.delivery_line
                                   {
                                     Wire.topic = e.Wire.topic;
                                     seq = e.Wire.seq;
                                     pub_ns = e.Wire.pub_ns;
                                     subscribers = [ sub ];
                                   });
                              st.delivered <- st.delivered + 1;
                              incr delivered_batch;
                              took := true
                            end
                        | _ -> ())
                      sinks;
                    if not !took then begin
                      st.dropped_unattached <- st.dropped_unattached + 1;
                      incr dropped_batch
                    end)
                  deliveries)
          events;
        let peak = List.fold_left (fun acc c -> acc + c.out_bytes) 0 st.conns in
        if peak > st.queue_peak_bytes then st.queue_peak_bytes <- peak;
        reply c
          [
            ("published", Json.Int (List.length events));
            ("delivered", Json.Int !delivered_batch);
            ("dropped", Json.Int !dropped_batch);
          ]

let handle_attach c j =
  let filter =
    match Json.member "subs" j with
    | None -> Ok All
    | Some v -> (
        match Json.to_list_opt v with
        | None -> Error "field \"subs\" must be an array of ints"
        | Some xs ->
            let tbl = Hashtbl.create (List.length xs) in
            let rec conv = function
              | [] -> Ok (Subset tbl)
              | x :: rest -> (
                  match Json.to_int_opt x with
                  | Some s ->
                      Hashtbl.replace tbl s ();
                      conv rest
                  | None -> Error "field \"subs\" must contain ints")
            in
            conv xs)
  in
  match filter with
  | Error m -> reply_error c ~code:Protocol.Bad_request ~message:m ()
  | Ok f ->
      c.sink <- Some f;
      reply c [ ("attached", Json.Bool true) ]

let handle_rehome st c ~id ~add ~remove =
  let added = ref 0 and already = ref 0 and removed = ref 0 and absent = ref 0 in
  List.iter
    (fun (topic, subscriber) ->
      if Broker.subscribed st.core ~topic ~subscriber then incr already
      else begin
        Broker.subscribe st.core ~topic ~subscriber;
        st.rehomed_in <- st.rehomed_in + 1;
        incr added
      end)
    add;
  List.iter
    (fun (topic, subscriber) ->
      if Broker.unsubscribe st.core ~topic ~subscriber then begin
        st.rehomed_out <- st.rehomed_out + 1;
        incr removed
      end
      else incr absent)
    remove;
  reply c ~id
    [
      ("added", Json.Int !added);
      ("already_present", Json.Int !already);
      ("removed", Json.Int !removed);
      ("absent", Json.Int !absent);
      ("pairs", Json.Int (Broker.num_pairs st.core));
    ]

let handle_line st ~vm ~now_s c line =
  match Json.parse line with
  | Error m -> reply_error c ~code:Protocol.Bad_request ~message:m ()
  | Ok j -> (
      match Json.member "req" j |> Fun.flip Option.bind Json.to_string_opt with
      | Some "pub" -> handle_pub st ~vm ~now_s c j
      | Some "attach" -> handle_attach c j
      | Some "kill" -> raise (Teardown false)
      | _ -> (
          match Protocol.decode j with
          | Error m -> reply_error c ~id:(Json.member "id" j) ~code:Protocol.Bad_request ~message:m ()
          | Ok env -> (
              let id = env.Protocol.id in
              match env.Protocol.request with
              | Protocol.Health ->
                  reply c ~id
                    [
                      ("role", Json.String "broker");
                      ("vm", Json.Int vm);
                      ("pairs", Json.Int (Broker.num_pairs st.core));
                      ("draining", Json.Bool st.draining);
                    ]
              | Protocol.Drain ->
                  st.draining <- true;
                  reply c ~id [ ("vm", Json.Int vm); ("draining", Json.Bool true) ]
              | Protocol.Rehome { add; remove } -> handle_rehome st c ~id ~add ~remove
              | Protocol.Ledger -> reply c ~id (Ledger.fields (ledger_of st ~vm))
              | Protocol.Shutdown ->
                  st.draining <- true;
                  reply c ~id [ ("vm", Json.Int vm); ("draining", Json.Bool true) ];
                  raise (Teardown true)
              | _ ->
                  reply_error c ~id ~code:Protocol.Bad_request
                    ~message:
                      "planning verb on a broker socket: send it to mcss serve"
                    ())))

let close_all listener st =
  (try Unix.close listener with Unix.Unix_error _ -> ());
  List.iter
    (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    st.conns;
  st.conns <- []

let serve ~vm ~address ~pairs ~bytes_per_horizon ~message_bytes ~config ~kill_flag
    listener =
  let core = Broker.create ~id:vm ~bytes_per_horizon in
  List.iter (fun (topic, subscriber) -> Broker.subscribe core ~topic ~subscriber) pairs;
  let st =
    {
      core;
      config;
      message_bytes;
      conns = [];
      draining = false;
      last_time = 0.;
      published = 0;
      handoffs = 0;
      delivered = 0;
      dropped_overflow = 0;
      dropped_unattached = 0;
      rehomed_in = 0;
      rehomed_out = 0;
      queue_peak_bytes = 0;
    }
  in
  let t0 = Clock.now_ns () in
  let now_s () = Int64.to_float (Int64.sub (Clock.now_ns ()) t0) *. 1e-9 in
  config.log (Printf.sprintf "broker %d: serving %s" vm (Server.address_to_string address));
  (try
     let stopping = ref false in
     let stop_deadline = ref 0. in
     while true do
       if Atomic.get kill_flag then raise (Teardown false);
       st.conns <- List.filter (fun c -> not c.dead) st.conns;
       if !stopping then begin
         (* Graceful exit: flush what the sinks still owe, then leave. *)
         if
           List.for_all (fun c -> Queue.is_empty c.outq) st.conns
           || now_s () > !stop_deadline
         then raise (Teardown true)
       end;
       let reads = if !stopping then [] else listener :: List.map (fun c -> c.fd) st.conns in
       let writes =
         List.filter_map
           (fun c -> if Queue.is_empty c.outq then None else Some c.fd)
           st.conns
       in
       let readable, writable, _ =
         try Unix.select reads writes [] config.tick_s
         with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
       in
       List.iter
         (fun fd ->
           if fd = listener then begin
             match Unix.accept listener with
             | client, _ -> st.conns <- conn_of client :: st.conns
             | exception
                 Unix.Unix_error
                   ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                 ()
           end
           else
             match List.find_opt (fun c -> c.fd = fd) st.conns with
             | None -> ()
             | Some c -> (
                 match Wire.Reader.read_lines c.reader with
                 | `Eof -> c.dead <- true
                 | `Again -> ()
                 | `Lines lines ->
                     List.iter
                       (fun line ->
                         try handle_line st ~vm ~now_s:(now_s ()) c line
                         with
                         | Teardown true ->
                             stopping := true;
                             stop_deadline := now_s () +. 2.0
                         | Unix.Unix_error _ -> c.dead <- true)
                       lines
                 | exception Unix.Unix_error _ -> c.dead <- true))
         readable;
       List.iter
         (fun fd ->
           match List.find_opt (fun c -> c.fd = fd) st.conns with
           | None -> ()
           | Some c -> flush_conn c)
         writable;
       List.iter
         (fun c ->
           if c.dead then try Unix.close c.fd with Unix.Unix_error _ -> ())
         st.conns
     done
   with
  | Teardown graceful ->
      config.log
        (Printf.sprintf "broker %d: %s" vm
           (if graceful then "drained and stopped" else "killed"));
      close_all listener st
  | exn ->
      config.log (Printf.sprintf "broker %d: crashed: %s" vm (Printexc.to_string exn));
      close_all listener st);
  match address with
  | Server.Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Server.Tcp _ -> ()

let start ?(config = default_config) ~vm ~address ~pairs ~bytes_per_horizon
    ~message_bytes () =
  let listener = Server.bind_listener address ~backlog:64 in
  Unix.set_nonblock listener;
  let kill_flag = Atomic.make false in
  let domain =
    Domain.spawn (fun () ->
        serve ~vm ~address ~pairs ~bytes_per_horizon ~message_bytes ~config
          ~kill_flag listener)
  in
  { vm; address; kill_flag; domain }
