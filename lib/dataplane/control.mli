(** Client-side dataplane control: one-shot [drain] / [rehome] /
    [ledger] / [health] / [shutdown] exchanges with a broker socket,
    plus the raw [kill] line. Built on {!Mcss_serve.Client}, so every
    call connects fresh — brokers are cheap to talk to and the caller
    never holds a stale connection to a killed one. *)

module Json := Mcss_serve.Json
module Server := Mcss_serve.Server

val health : Server.address -> (Json.t, string) result
val drain : Server.address -> (unit, string) result

val rehome :
  Server.address ->
  add:(int * int) list ->
  remove:(int * int) list ->
  (Json.t, string) result
(** The reply carries [added] / [already_present] / [removed] /
    [absent] / [pairs]. [Error] covers transport failures {e and} error
    replies. *)

val ledger : Server.address -> (Ledger.t, string) result

val shutdown : Server.address -> (unit, string) result
(** Ask for a graceful drain-and-exit; returns once the broker acked
    (it flushes sinks and exits on its own afterwards). *)

val kill : Server.address -> unit
(** Best effort: connect, write [{"req":"kill"}], close. Errors are
    swallowed — a broker that is already gone is already killed. *)
