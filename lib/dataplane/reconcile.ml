module Simulator = Mcss_sim.Simulator
module Delivery = Mcss_report.Delivery

type vm_row = {
  plan_vm : int;
  broker : int;
  measured : int;
  predicted : int;
  deviation : float;
}

type t = {
  duration : float;
  tolerance : float;
  subscribers : int;
  subscriber_mismatches : (int * int * int) list;
  vm_rows : vm_row list;
  max_deviation : float;
  measured : Delivery.totals;
  predicted : Delivery.totals;
  pass : bool;
}

let deviation ~measured ~predicted =
  float_of_int (abs (measured - predicted)) /. float_of_int (max 1 predicted)

let run p a ~duration ~tolerance ~measured_unique ~ledgers ~assignment =
  let sim_config =
    {
      Simulator.default_config with
      Simulator.duration;
      arrivals = Simulator.Deterministic;
    }
  in
  let sim = Simulator.run p a sim_config in
  let subscribers = Array.length sim.Simulator.delivered in
  let mismatches = ref [] in
  let max_dev = ref 0. in
  for v = subscribers - 1 downto 0 do
    let predicted = sim.Simulator.delivered.(v) in
    let measured =
      if v < Array.length measured_unique then measured_unique.(v) else 0
    in
    if measured <> predicted then begin
      mismatches := (v, measured, predicted) :: !mismatches;
      max_dev := Float.max !max_dev (deviation ~measured ~predicted)
    end
  done;
  let vm_rows =
    List.map
      (fun (plan_vm, broker) ->
        let predicted =
          if plan_vm < Array.length sim.Simulator.vm_ingress then
            sim.Simulator.vm_ingress.(plan_vm)
          else 0
        in
        let measured =
          match List.find_opt (fun l -> l.Ledger.vm = broker) ledgers with
          | Some l -> l.Ledger.totals.Delivery.handoffs
          | None -> 0
        in
        let deviation = deviation ~measured ~predicted in
        max_dev := Float.max !max_dev deviation;
        { plan_vm; broker; measured; predicted; deviation })
      (List.sort compare assignment)
  in
  {
    duration;
    tolerance;
    subscribers;
    subscriber_mismatches = !mismatches;
    vm_rows;
    max_deviation = !max_dev;
    measured = Ledger.sum_totals ledgers;
    predicted = sim.Simulator.totals;
    pass = !max_dev <= tolerance;
  }

let pp fmt t =
  Format.fprintf fmt
    "reconcile: %s (max deviation %.4f, tolerance %.4f)@\n\
     measured:  %a@\n\
     predicted: %a@\n\
     %d/%d subscribers off"
    (if t.pass then "PASS" else "FAIL")
    t.max_deviation t.tolerance Delivery.pp t.measured Delivery.pp t.predicted
    (List.length t.subscriber_mismatches)
    t.subscribers;
  List.iter
    (fun r ->
      if r.deviation > t.tolerance then
        Format.fprintf fmt "@\nvm %d (broker %d): handoffs %d vs predicted %d"
          r.plan_vm r.broker r.measured r.predicted)
    t.vm_rows
