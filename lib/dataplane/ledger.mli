(** A broker's delivery ledger — the measured side of reconciliation.
    Every broker process keeps one and serves it over the [ledger]
    control verb; the pump snapshots ledgers before and after a run and
    diffs them, so several runs can share one long-lived fleet.

    Counter semantics (all monotonic since broker boot):

    - [totals.published] — publication copies that arrived on the pub
      socket (the publisher sends one copy per broker hosting the
      topic, so fleet-wide this is ≥ the schedule's event count);
    - [totals.handoffs] — copies that matched at least one locally
      homed pair (the live analogue of the simulator's [vm_ingress]);
    - [totals.delivered] — delivery copies enqueued to attached sinks,
      one per (event, subscriber);
    - [totals.dropped] — copies dropped instead: [dropped_overflow]
      (sink's bounded buffer was full) + [dropped_unattached] (pair
      homed here but no sink attached for it). *)

module Json := Mcss_serve.Json

type t = {
  vm : int;  (** Broker id, cluster-scoped. *)
  pairs : int;  (** (topic, subscriber) pairs currently homed here. *)
  draining : bool;
  totals : Mcss_report.Delivery.totals;
  dropped_overflow : int;
  dropped_unattached : int;
  rehomed_in : int;  (** Pairs added by [rehome] since boot. *)
  rehomed_out : int;  (** Pairs removed by [rehome] since boot. *)
  queue_peak_bytes : int;
      (** High-water mark of bytes buffered towards sinks. *)
  max_queue_delay : float;
      (** The queueing model's worst (depart - publish), seconds. *)
}

val zero : vm:int -> t

val fields : t -> (string * Json.t) list
(** The ledger as reply fields for an [ok] response. *)

val of_json : Json.t -> (t, string) result
(** Decode a [ledger] reply (tolerates extra fields). *)

val diff : before:t -> after:t -> t
(** Counters subtracted ([after - before]); gauges ([pairs],
    [draining], peaks) taken from [after]. The window view one pump run
    contributes. *)

val sum_totals : t list -> Mcss_report.Delivery.totals

val pp : Format.formatter -> t -> unit
