(** One live broker: an OCaml 5 domain serving a planned VM's share of
    the workload over a line-protocol socket.

    The domain owns a {!Mcss_broker.Broker} as its queueing/accounting
    core (the same model the in-memory fleet runs), a subscription table
    seeded from the plan, and a select loop multiplexing three kinds of
    peers over one listener:

    - {b publishers} send [pub] batches ({!Wire.pub_line}); each event
      is ingested through the broker core and fanned out to the sinks
      attached for its locally homed subscribers. The reply is sent
      only after every copy is enqueued, so a synchronous publisher
      gets backpressure and an acked batch is guaranteed to be in sink
      buffers (or counted as dropped);
    - {b sinks} send [attach] once and then receive delivery lines
      ({!Wire.delivery_line}). Sink writes are buffered and bounded:
      when a sink's buffer exceeds [max_sink_buffer] further copies for
      it are dropped and counted, never blocking the loop;
    - {b control} peers speak {!Mcss_serve.Protocol}: [health],
      [drain], [rehome], [ledger], [shutdown] — plus the raw
      [{"req":"kill"}] line, which tears the broker down abruptly
      (no replies, no flush), the chaos path.

    Planning verbs ([solve], [update], ...) are answered with
    [bad_request], mirroring how planning servers reject dataplane
    verbs. *)

type config = {
  max_sink_buffer : int;  (** Per-sink pending-bytes bound (default 4 MiB). *)
  tick_s : float;  (** Select timeout: kill-flag poll period (default 0.05). *)
  log : string -> unit;
}

val default_config : config

type t

val start :
  ?config:config ->
  vm:int ->
  address:Mcss_serve.Server.address ->
  pairs:(int * int) list ->
  bytes_per_horizon:float ->
  message_bytes:int ->
  unit ->
  t
(** Bind the listener (in the calling domain, so the socket exists when
    this returns) and spawn the serving domain. [bytes_per_horizon] and
    [message_bytes] parameterise the queueing core exactly like
    {!Mcss_broker.Fleet.build}. Raises [Unix.Unix_error] when the
    address cannot be bound. *)

val vm : t -> int
val address : t -> Mcss_serve.Server.address

val kill : t -> unit
(** Raise the kill flag: the domain tears down within one tick even if
    no [kill] line can reach it. Idempotent. *)

val join : t -> unit
(** Wait for the domain to exit (after [shutdown], [kill], or
    {!kill}). *)
