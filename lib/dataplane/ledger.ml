module Json = Mcss_serve.Json
module Delivery = Mcss_report.Delivery

type t = {
  vm : int;
  pairs : int;
  draining : bool;
  totals : Delivery.totals;
  dropped_overflow : int;
  dropped_unattached : int;
  rehomed_in : int;
  rehomed_out : int;
  queue_peak_bytes : int;
  max_queue_delay : float;
}

let zero ~vm =
  {
    vm;
    pairs = 0;
    draining = false;
    totals = Delivery.zero;
    dropped_overflow = 0;
    dropped_unattached = 0;
    rehomed_in = 0;
    rehomed_out = 0;
    queue_peak_bytes = 0;
    max_queue_delay = 0.;
  }

let fields l =
  [
    ("vm", Json.Int l.vm);
    ("pairs", Json.Int l.pairs);
    ("draining", Json.Bool l.draining);
    ("published", Json.Int l.totals.Delivery.published);
    ("handoffs", Json.Int l.totals.Delivery.handoffs);
    ("delivered", Json.Int l.totals.Delivery.delivered);
    ("dropped", Json.Int l.totals.Delivery.dropped);
    ("dropped_overflow", Json.Int l.dropped_overflow);
    ("dropped_unattached", Json.Int l.dropped_unattached);
    ("rehomed_in", Json.Int l.rehomed_in);
    ("rehomed_out", Json.Int l.rehomed_out);
    ("queue_peak_bytes", Json.Int l.queue_peak_bytes);
    ("max_queue_delay", Json.Float l.max_queue_delay);
  ]

let of_json j =
  let int key =
    match Json.member key j with
    | Some v -> (
        match Json.to_int_opt v with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "ledger field %S must be an int" key))
    | None -> Error (Printf.sprintf "ledger reply lacks field %S" key)
  in
  let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e in
  let* vm = int "vm" in
  let* pairs = int "pairs" in
  let* published = int "published" in
  let* handoffs = int "handoffs" in
  let* delivered = int "delivered" in
  let* dropped = int "dropped" in
  let* dropped_overflow = int "dropped_overflow" in
  let* dropped_unattached = int "dropped_unattached" in
  let* rehomed_in = int "rehomed_in" in
  let* rehomed_out = int "rehomed_out" in
  let* queue_peak_bytes = int "queue_peak_bytes" in
  let draining =
    Json.member "draining" j |> Fun.flip Option.bind Json.to_bool_opt
    |> Option.value ~default:false
  in
  let max_queue_delay =
    Json.member "max_queue_delay" j |> Fun.flip Option.bind Json.to_float_opt
    |> Option.value ~default:0.
  in
  Ok
    {
      vm;
      pairs;
      draining;
      totals = { Delivery.published; handoffs; delivered; dropped };
      dropped_overflow;
      dropped_unattached;
      rehomed_in;
      rehomed_out;
      queue_peak_bytes;
      max_queue_delay;
    }

let diff ~before ~after =
  {
    vm = after.vm;
    pairs = after.pairs;
    draining = after.draining;
    totals = Delivery.sub after.totals before.totals;
    dropped_overflow = after.dropped_overflow - before.dropped_overflow;
    dropped_unattached = after.dropped_unattached - before.dropped_unattached;
    rehomed_in = after.rehomed_in - before.rehomed_in;
    rehomed_out = after.rehomed_out - before.rehomed_out;
    queue_peak_bytes = after.queue_peak_bytes;
    max_queue_delay = after.max_queue_delay;
  }

let sum_totals ls =
  List.fold_left (fun acc l -> Delivery.add acc l.totals) Delivery.zero ls

let pp fmt l =
  Format.fprintf fmt "vm %d: %a (pairs %d%s)" l.vm Delivery.pp l.totals l.pairs
    (if l.draining then ", draining" else "")
