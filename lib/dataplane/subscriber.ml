module Json = Mcss_serve.Json
module Server = Mcss_serve.Server
module Fleet = Mcss_broker.Fleet
module Clock = Mcss_obs.Clock
module Rng = Mcss_prng.Rng

type sink = { vm : int; fd : Unix.file_descr; domain : unit Domain.t }

type t = {
  lock : Mutex.t;
  seen : (int * int, unit) Hashtbl.t;  (* (seq, subscriber) *)
  unique : int array;
  mutable copies : int;
  mutable duplicates : int;
  reservoir : Fleet.Reservoir.t;
  mutable sinks : sink list;
  mutable closed : bool;
}

let create ~num_subscribers ?(reservoir = 10_000) ~latency_seed () =
  {
    lock = Mutex.create ();
    seen = Hashtbl.create 65536;
    unique = Array.make num_subscribers 0;
    copies = 0;
    duplicates = 0;
    reservoir = Fleet.Reservoir.create ~rng:(Rng.create latency_seed) reservoir;
    sinks = [];
    closed = false;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let record t (d : Wire.delivery) =
  let now = Int64.to_int (Clock.now_ns ()) in
  locked t (fun () ->
      List.iter
        (fun sub ->
          t.copies <- t.copies + 1;
          if Hashtbl.mem t.seen (d.Wire.seq, sub) then
            t.duplicates <- t.duplicates + 1
          else begin
            Hashtbl.replace t.seen (d.Wire.seq, sub) ();
            if sub >= 0 && sub < Array.length t.unique then
              t.unique.(sub) <- t.unique.(sub) + 1;
            Fleet.Reservoir.add t.reservoir
              (float_of_int (now - d.Wire.pub_ns) *. 1e-9)
          end)
        d.Wire.subscribers)

(* The collector: blocking reads until EOF (broker shutdown, kill, or
   our own close). Reply lines to the attach request carry "ok" and are
   skipped; everything else must be a delivery line. *)
let collect t fd =
  let reader = Wire.Reader.create fd in
  let running = ref true in
  while !running do
    match Wire.Reader.read_lines reader with
    | `Eof -> running := false
    | `Again -> ignore (Unix.select [ fd ] [] [] 0.25)
    | `Lines lines ->
        List.iter
          (fun line ->
            match Json.parse line with
            | Error _ -> ()
            | Ok j -> (
                if Json.member "ok" j = None then
                  match Wire.delivery_of j with
                  | Ok d -> record t d
                  | Error _ -> ()))
          lines
    | exception Unix.Unix_error _ -> running := false
  done

let attach t ~vm address =
  if locked t (fun () -> t.closed) then Error "sinks are closed"
  else if locked t (fun () -> List.exists (fun s -> s.vm = vm) t.sinks) then Ok ()
  else
    match Wire.connect address with
    | exception Unix.Unix_error (e, _, _) ->
        Error
          (Printf.sprintf "broker %d (%s): %s" vm
             (Server.address_to_string address) (Unix.error_message e))
    | fd ->
        Server.write_all fd "{\"req\":\"attach\"}\n";
        let domain = Domain.spawn (fun () -> collect t fd) in
        locked t (fun () -> t.sinks <- { vm; fd; domain } :: t.sinks);
        Ok ()

let attach_cluster t cluster =
  List.fold_left
    (fun acc (vm, address) ->
      match acc with Error _ as e -> e | Ok () -> attach t ~vm address)
    (Ok ()) (Cluster.live cluster)

let copies t = locked t (fun () -> t.copies)
let unique t = locked t (fun () -> Array.copy t.unique)
let duplicates t = locked t (fun () -> t.duplicates)
let latency t = locked t (fun () -> Fleet.Reservoir.summary t.reservoir)

let close t =
  let sinks =
    locked t (fun () ->
        t.closed <- true;
        let s = t.sinks in
        t.sinks <- [];
        s)
  in
  List.iter
    (fun s ->
      (try Unix.shutdown s.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      Domain.join s.domain;
      try Unix.close s.fd with Unix.Unix_error _ -> ())
    sinks
