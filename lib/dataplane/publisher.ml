module Json = Mcss_serve.Json
module Client = Mcss_serve.Client
module Clock = Mcss_obs.Clock

type stats = {
  events : int;
  copies_sent : int;
  acked_delivered : int;
  acked_dropped : int;
  send_failures : int;
  unrouted : int;
}

(* One cached connection per broker; a send failure drops the
   connection and counts the batch, the next batch reconnects. *)
type peer = { id : int; mutable client : Client.t option }

let client_for addr_of peers id =
  let peer =
    match List.find_opt (fun p -> p.id = id) !peers with
    | Some p -> p
    | None ->
        let p = { id; client = None } in
        peers := p :: !peers;
        p
  in
  match peer.client with
  | Some c -> Some (peer, c)
  | None -> (
      match addr_of id with
      | None -> None
      | Some addr -> (
          match Client.connect addr with
          | Ok c ->
              peer.client <- Some c;
              Some (peer, c)
          | Error _ -> None))

let drop_client peer =
  Option.iter Client.close peer.client;
  peer.client <- None

let send_batch addr_of peers acc (by_broker : (int, Wire.event list ref) Hashtbl.t) =
  Hashtbl.iter
    (fun broker events ->
      let events = List.rev !events in
      let n = List.length events in
      match client_for addr_of peers broker with
      | None -> acc.(3) <- acc.(3) + n (* send_failures *)
      | Some (peer, c) -> (
          match Client.request c (Wire.pub_request events) with
          | Ok reply
            when Json.member "ok" reply |> Fun.flip Option.bind Json.to_bool_opt
                 = Some true ->
              acc.(0) <- acc.(0) + n;
              let field k =
                Json.member k reply |> Fun.flip Option.bind Json.to_int_opt
                |> Option.value ~default:0
              in
              acc.(1) <- acc.(1) + field "delivered";
              acc.(2) <- acc.(2) + field "dropped"
          | Ok _ -> acc.(3) <- acc.(3) + n
          | Error _ ->
              drop_client peer;
              acc.(3) <- acc.(3) + n))
    by_broker

let run ?(batch = 64) ?(pace = 0.) cluster ~schedule =
  if batch < 1 then invalid_arg "Publisher.run: batch must be >= 1";
  let peers = ref [] in
  (* acc: copies_sent, acked_delivered, acked_dropped, send_failures *)
  let acc = Array.make 4 0 in
  let unrouted = ref 0 in
  let start_ns = Clock.now_ns () in
  let n = Array.length schedule in
  let i = ref 0 in
  while !i < n do
    let upto = min n (!i + batch) in
    let first_time, _ = schedule.(!i) in
    if pace > 0. then begin
      let due = first_time *. pace in
      let elapsed =
        Int64.to_float (Int64.sub (Clock.now_ns ()) start_ns) *. 1e-9
      in
      if due > elapsed then Unix.sleepf (due -. elapsed)
    end;
    (* Route and send the whole batch inside the cluster's critical
       section: a re-home remove cannot land between our routing
       snapshot and the last ack (see {!Cluster.with_routes}). *)
    Cluster.with_routes cluster (fun ~route ~addr ->
        let by_broker : (int, Wire.event list ref) Hashtbl.t =
          Hashtbl.create 16
        in
        let stamp = Int64.to_int (Clock.now_ns ()) in
        for k = !i to upto - 1 do
          let _, topic = schedule.(k) in
          let ev = { Wire.topic; seq = k; pub_ns = stamp } in
          match route ~topic with
          | [] -> incr unrouted
          | brokers ->
              List.iter
                (fun b ->
                  match Hashtbl.find_opt by_broker b with
                  | Some l -> l := ev :: !l
                  | None -> Hashtbl.replace by_broker b (ref [ ev ]))
                brokers
        done;
        send_batch addr peers acc by_broker);
    i := upto
  done;
  List.iter drop_client !peers;
  {
    events = n;
    copies_sent = acc.(0);
    acked_delivered = acc.(1);
    acked_dropped = acc.(2);
    send_failures = acc.(3);
    unrouted = !unrouted;
  }
