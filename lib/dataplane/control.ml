module Json = Mcss_serve.Json
module Client = Mcss_serve.Client
module Protocol = Mcss_serve.Protocol
module Server = Mcss_serve.Server

let call address request =
  Client.with_connection address (fun c ->
      match
        Client.request_envelope c
          { Protocol.id = None; deadline_ms = None; request }
      with
      | Error _ as e -> e
      | Ok reply -> (
          match Protocol.response_error reply with
          | None -> Ok reply
          | Some (_, message) -> Error message))

let health address = call address Protocol.Health

let drain address =
  match call address Protocol.Drain with Ok _ -> Ok () | Error _ as e -> e

let rehome address ~add ~remove = call address (Protocol.Rehome { add; remove })

let ledger address =
  match call address Protocol.Ledger with
  | Error _ as e -> e
  | Ok reply -> Ledger.of_json reply

let shutdown address =
  match call address Protocol.Shutdown with Ok _ -> Ok () | Error _ as e -> e

let kill address =
  match Wire.connect address with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Server.write_all fd "{\"req\":\"kill\"}\n" with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
