(** The broker fleet behind a plan: one {!Broker_proc} per VM of an
    allocation, a topic → live-broker routing table, and the live
    re-home machinery that replays plan changes onto running brokers
    without losing events.

    {b Zero-loss re-home ordering.} {!apply_plan} moves a pair from
    broker A to broker B as: (1) [rehome add] on B, (2) the routing
    table serves the {e union} of old and new hosts for the affected
    topics (derived from the mirrors, which are updated add-first),
    (3) [rehome remove] on A. Between (1) and (3) every publication of
    the topic reaches both brokers, so the pair may see duplicates —
    sinks deduplicate by (seq, subscriber) — but never a gap. This is
    drain-then-move at the granularity the line protocol allows.

    A cluster handle is either {e owning} (it {!boot}ed the broker
    domains in this process) or {e attached} (the brokers live in
    another process, reached through a manifest file). Either way
    control flows through the same sockets; the only difference is that
    {!join} has domains to wait for only in the owning process, and
    that brokers spawned by an attached handle (recovery VMs) run in
    the attaching process. *)

module Server := Mcss_serve.Server

type t

type apply_stats = {
  matched : int;  (** Plan VMs matched onto already-running brokers. *)
  spawned : int;  (** Fresh brokers started for unmatched plan VMs. *)
  pairs_added : int;
  pairs_removed : int;
  errors : string list;  (** Per-broker control failures (dead brokers). *)
}

val boot :
  ?config:Broker_proc.config ->
  dir:string ->
  message_bytes:int ->
  Mcss_core.Problem.t ->
  Mcss_core.Allocation.t ->
  t
(** Start one broker per VM of the allocation on
    [dir/broker-<vm>.sock], subscription tables copied from the plan.
    [message_bytes] sizes every publication; each broker's service
    capacity is [capacity · message_bytes] bytes per horizon, exactly
    {!Mcss_broker.Fleet.build}'s parameterisation. *)

val save_manifest : t -> string -> unit
(** Write the fleet manifest (JSON: members, message bytes, capacity)
    for another process to {!attach} to. *)

val attach : manifest:string -> Mcss_core.Allocation.t -> t
(** Adopt a running fleet from its manifest. The allocation must be the
    plan the fleet was booted from — it seeds the pair mirrors that
    {!apply_plan} diffs against (brokers are not queried for their
    tables). Raises [Failure] on an unreadable manifest. *)

val live : t -> (int * Server.address) list
(** Alive brokers, ascending id. *)

val address : t -> int -> Server.address option
val routing : t -> topic:int -> int list
(** Alive brokers currently hosting the topic (via the mirrors). *)

val assignment : t -> (int * int) list
(** Current plan-VM → broker-id mapping (identity after {!boot},
    updated by {!apply_plan}). *)

val with_routes :
  t ->
  (route:(topic:int -> int list) -> addr:(int -> Server.address option) -> 'a) ->
  'a
(** Run [f] inside the cluster's critical section with unlocked routing
    and address accessors. Publishers route {e and send} each batch in
    here; {!apply_plan} issues every [rehome remove] under the same
    lock, which closes the stale-snapshot race — a batch routed before
    a pair's new home appeared is fully acked before the old home can
    be told to drop it. Keep [f] short; do not call other [Cluster]
    functions from inside it (the lock is not reentrant). *)

val pairs_on : t -> int -> int
(** Mirrored pair count of one broker (0 for unknown/dead). *)

val kill : t -> int -> bool
(** Abrupt chaos kill: mark dead, drop from routing, send the [kill]
    line and raise the local kill flag. [false] if already dead or
    unknown. The broker's undelivered sink buffers are lost — that is
    the point. *)

val apply_plan :
  ?on_spawn:(int -> Server.address -> unit) ->
  t ->
  Mcss_core.Allocation.t ->
  apply_stats
(** Reconcile the live fleet onto a new allocation. Plan VMs are
    matched to running brokers by pair-overlap (greedy, identity
    preferred on ties) — plan VM ids need not equal broker ids, which
    is what lets {!Mcss_engine.Engine.fail}'s dense renumbering land on
    a fleet that kept its survivors. Unmatched plan VMs get fresh
    brokers ([on_spawn] fires after the socket exists and {e before}
    any pair is added, so the caller can attach sinks first); matched
    brokers receive adds before any broker receives removes (see the
    ordering note above). *)

val shutdown : t -> unit
(** Graceful: [shutdown] every live broker, then {!join}. *)

val join : t -> unit
(** Wait for every locally-owned broker domain to exit. *)
