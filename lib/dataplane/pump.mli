(** One measured run against a live fleet: attach sinks, generate the
    deterministic schedule, pump it, wait for the fan-out to quiesce,
    and report the window — optionally reconciled against the
    simulator's predictions.

    Quiescing uses the backpressure contract: once every batch is
    acked, all copies are in broker sink buffers, so the pump polls
    until the sinks have received as many copies as the live brokers'
    ledger windows say were enqueued (killed brokers are out of the
    count — their buffered copies are the outage's drop window). *)

type config = {
  duration : float;  (** Horizons of load; positive. *)
  arrivals : Mcss_broker.Fleet.arrivals;
      (** Reconciliation requires [Deterministic] (the default). *)
  pace : float;  (** Wall seconds per horizon; [0.] = full speed. *)
  batch : int;
  latency_seed : int;
  quiesce_timeout : float;  (** Wall seconds (default 10). *)
  tolerance : float option;  (** [Some tol] runs reconciliation. *)
}

val default_config : config
(** 1 horizon, deterministic, unpaced, batch 64, seed 1, no
    reconciliation. *)

type report = {
  publisher : Publisher.stats;
  copies_received : int;
  duplicates : int;
  unique : int array;
  latency : Mcss_broker.Fleet.latency_summary option;
  ledgers : Ledger.t list;  (** Per-broker window ({!Ledger.diff}). *)
  totals : Mcss_report.Delivery.totals;  (** Summed ledger window. *)
  reconcile : Reconcile.t option;
  quiesced : bool;  (** [false]: the quiesce timeout expired first. *)
  wall_s : float;
}

val run :
  ?config:config ->
  ?sinks:Subscriber.t ->
  Cluster.t ->
  Mcss_core.Problem.t ->
  Mcss_core.Allocation.t ->
  report
(** [sinks] defaults to a fresh set attached to every live broker and
    closed before returning; pass a shared one to keep sinks (and their
    dedup state) alive across phases — the caller then owns its
    lifecycle, and [unique]/[duplicates]/[latency] in the report are
    cumulative over the sink's life, while [ledgers]/[totals] are this
    run's window. The allocation must be the plan the fleet currently
    serves; it feeds the schedule's reconciliation prediction. *)
