examples/failure_drill.ml: Format List Mcss_core Mcss_dynamic Mcss_resilience Mcss_workload Printf
