examples/twitter_scenario.mli:
