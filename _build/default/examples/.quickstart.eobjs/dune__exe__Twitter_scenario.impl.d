examples/twitter_scenario.ml: Array Format List Mcss_core Mcss_pricing Mcss_report Mcss_sim Mcss_traces Mcss_workload Printf
