examples/failure_drill.mli:
