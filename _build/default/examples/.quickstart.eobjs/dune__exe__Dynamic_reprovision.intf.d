examples/dynamic_reprovision.mli:
