examples/whatif_pricing.mli:
