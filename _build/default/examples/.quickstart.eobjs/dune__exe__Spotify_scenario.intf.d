examples/spotify_scenario.mli:
