examples/quickstart.mli:
