examples/spotify_scenario.ml: Format List Mcss_core Mcss_pricing Mcss_report Mcss_traces Mcss_workload Printf
