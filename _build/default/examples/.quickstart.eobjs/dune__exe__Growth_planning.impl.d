examples/growth_planning.ml: Format List Mcss_dynamic Mcss_pricing Mcss_report Mcss_traces Mcss_workload Printf
