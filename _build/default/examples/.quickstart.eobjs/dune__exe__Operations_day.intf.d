examples/operations_day.mli:
