examples/operations_day.ml: Array Format List Mcss_core Mcss_dynamic Mcss_pricing Mcss_prng Mcss_report Mcss_sim Mcss_traces Mcss_workload Printf String
