examples/quickstart.ml: Array Format Mcss_core Mcss_pricing Mcss_workload Printf
