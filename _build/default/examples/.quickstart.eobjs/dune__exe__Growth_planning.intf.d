examples/growth_planning.mli:
