(* Quickstart: define a pub/sub workload, ask MCSS how to deploy it on
   EC2, and inspect the answer.

   Run with: dune exec examples/quickstart.exe *)

module Workload = Mcss_workload.Workload
module Cost_model = Mcss_pricing.Cost_model
module Problem = Mcss_core.Problem
module Solver = Mcss_core.Solver
module Allocation = Mcss_core.Allocation
module Verifier = Mcss_core.Verifier

let () =
  (* Four topics with event rates (events per 10 days), five subscribers
     with their interests. Think of topics as artists and subscribers as
     listeners following them. *)
  let workload =
    Workload.create
      ~event_rates:[| 1200.; 300.; 90.; 2500. |]
      ~interests:
        [| [| 0; 1 |]; [| 0; 2; 3 |]; [| 1; 2 |]; [| 3 |]; [| 0; 1; 2; 3 |] |]
  in
  Format.printf "%a@." Workload.pp_summary workload;

  (* Every subscriber should receive at least 500 events per 10 days
     (capped by what they subscribed to). Price it like 2014 EC2. *)
  let model = Cost_model.ec2_2014 () in
  let problem =
    Problem.of_pricing ~capacity_events:6000. ~workload ~tau:500. model
  in

  (* Solve: GreedySelectPairs + CustomBinPacking with all optimisations. *)
  let result = Solver.solve problem in
  Format.printf "solution: %a@." Solver.pp_result result;

  (* Always verify before trusting an allocation. *)
  ignore (Verifier.check_exn problem result.Solver.selection result.Solver.allocation);
  print_endline "verifier: all subscribers satisfied, no VM over capacity";

  (* What landed where? *)
  Array.iter
    (fun vm ->
      Printf.printf "  VM %d: load %.0f events (%d pairs, %d topics)\n"
        (Allocation.vm_id vm) (Allocation.load vm) (Allocation.num_pairs_on vm)
        (Allocation.num_topics_on vm))
    (Allocation.vms result.Solver.allocation);

  (* Compare against the naive baseline and the theoretical floor. *)
  let naive = Solver.solve ~config:Solver.naive problem in
  let lb = Mcss_core.Lower_bound.compute problem in
  Printf.printf "naive RSP+FFBP would cost $%.2f; we pay $%.2f; lower bound $%.2f\n"
    naive.Solver.cost result.Solver.cost lb.Mcss_core.Lower_bound.cost
