(* Failure drill: push one seeded fault campaign — a crash, a transient
   outage, a zone-correlated burst and a throttled VM — through the same
   small deployment three ways:

     1. unsupervised: nobody repairs anything, measure the damage;
     2. supervised:   the orchestrator detects dead VMs from metering,
                      replans, and verifies the repaired fleet;
     3. k=2 replicas: zone-diverse redundant placement rides out every
                      fault with zero violations, at a reported cost
                      overhead.

   The program aborts loudly if any of the three stories fails to hold.

   Run with: dune exec examples/failure_drill.exe *)

module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Selection = Mcss_core.Selection
module Reprovision = Mcss_dynamic.Reprovision
module Failure_model = Mcss_resilience.Failure_model
module Orchestrator = Mcss_resilience.Orchestrator
module Redundancy = Mcss_resilience.Redundancy
module Sla = Mcss_resilience.Sla

let zones = 3

let campaign =
  {
    Failure_model.seed = 7;
    faults =
      [
        Failure_model.Crash { vm = 0; at = 0.6 };
        Failure_model.Transient { vm = 1; from_time = 1.1; until_time = 1.4 };
        Failure_model.Zone_burst { zone = 0; at = 2.0; duration = 0.3 };
        Failure_model.Throttle { vm = 1; from_time = 2.6; until_time = 2.9; severity = 0.5 };
      ];
  }

let () =
  let w =
    Workload.create ~event_rates:[| 20.; 10. |]
      ~interests:[| [| 0; 1 |]; [| 0; 1 |]; [| 1 |] |]
  in
  let p =
    Problem.create ~workload:w ~tau:30. ~capacity:80.
      (Problem.linear_costs ~vm_usd:0.24 ~per_event_usd:0.001)
  in
  Format.printf "workload: %a@." Workload.pp_summary w;
  Printf.printf "campaign (seed %d):\n" campaign.Failure_model.seed;
  List.iter
    (fun f -> Printf.printf "  %s\n" (Failure_model.fault_to_string f))
    campaign.Failure_model.faults;

  let policy = Orchestrator.default_policy in

  (* 1. Nobody watching. *)
  let baseline =
    Orchestrator.run ~policy:{ policy with Orchestrator.recovery = false } ~zones
      ~campaign p
  in
  Format.printf "@.[unsupervised] %a@." Sla.pp_report baseline.Orchestrator.sla;

  (* 2. The orchestrator on duty. *)
  print_newline ();
  print_endline "[supervised]";
  let supervised =
    Orchestrator.run ~policy ~zones ~log:(fun l -> print_endline ("  " ^ l)) ~campaign p
  in
  Format.printf "[supervised] %a@." Sla.pp_report supervised.Orchestrator.sla;
  Printf.printf "[supervised] %d repair(s), %d replacement VM(s), plan verified: %b\n"
    supervised.Orchestrator.repairs supervised.Orchestrator.vms_added
    (supervised.Orchestrator.verified = Ok ());

  (* 3. Replicas instead of repairs. *)
  let selection = Selection.gsp p in
  let redundant, stats = Redundancy.place ~zones ~k:2 p selection in
  (match Redundancy.check p selection ~k:2 redundant with
  | Ok () -> ()
  | Error m -> failwith m);
  Format.printf "@.[k=2] %a@." Redundancy.pp_stats stats;
  let sla2 = Orchestrator.evaluate ~policy ~zones ~campaign p redundant in
  Format.printf "[k=2] %a@." Sla.pp_report sla2;

  (* The three stories, checked. *)
  let vh r = r.Sla.violation_hours in
  if supervised.Orchestrator.verified <> Ok () then
    failwith "supervised drill ended with an unverifiable plan";
  (match List.rev supervised.Orchestrator.epoch_log with
  | last :: _ when last.Sla.violations = 0 -> ()
  | _ -> failwith "supervised drill did not end healthy");
  if not (vh supervised.Orchestrator.sla < vh baseline.Orchestrator.sla) then
    failwith "recovery did not reduce violation-hours";
  if not (vh sla2 < vh baseline.Orchestrator.sla) then
    failwith "redundancy did not reduce violation-hours";
  Printf.printf
    "\nrecovery cut violation-hours %.1f -> %.1f; k=2 (+%.0f%% cost) cut them to %.1f\n"
    (vh baseline.Orchestrator.sla)
    (vh supervised.Orchestrator.sla)
    stats.Redundancy.overhead_vs_base_pct (vh sla2);
  print_endline "all three stories verified."
