(* Growth planning: a service expecting +30% subscribers per billing
   period must decide between elastic On-Demand fleets, reserving
   capacity for the future size, or a hybrid baseline+burst — the
   purchasing question sitting right on top of the paper's sizing
   question. The Forecast planner solves MCSS for every period and
   prices all three strategies.

   Run with: dune exec examples/growth_planning.exe *)

module Workload = Mcss_workload.Workload
module Cost_model = Mcss_pricing.Cost_model
module Billing = Mcss_pricing.Billing
module Forecast = Mcss_dynamic.Forecast
module Table = Mcss_report.Table
module Spotify = Mcss_traces.Spotify

let () =
  let scale = 0.005 in
  let base = Spotify.generate { (Spotify.scaled scale) with Spotify.seed = 7 } in
  Format.printf "base period: %a@.@." Workload.pp_summary base;
  let model = Cost_model.ec2_2014 () in
  let plan =
    Forecast.plan ~base ~tau:100. ~capacity_events:(5e7 *. scale) ~model
      ~growth_per_period:1.3 ~periods:6 ~reserved_term:Billing.Reserved_1yr
  in
  let table =
    Table.create
      [
        ("period", Table.Right);
        ("subscribers", Table.Right);
        ("VMs", Table.Right);
        ("on-demand", Table.Right);
        ("all-reserved", Table.Right);
        ("hybrid", Table.Right);
      ]
  in
  List.iter
    (fun pp ->
      Table.add_row table
        [
          string_of_int pp.Forecast.period;
          string_of_int pp.Forecast.subscribers;
          string_of_int pp.Forecast.vms_needed;
          Table.cell_usd pp.Forecast.cost_on_demand;
          Table.cell_usd pp.Forecast.cost_all_reserved;
          Table.cell_usd pp.Forecast.cost_hybrid;
        ])
    plan.Forecast.periods;
  Table.print table;
  Printf.printf "\ntotals: on-demand %s | all-reserved %s | hybrid %s\n"
    (Table.cell_usd plan.Forecast.total_on_demand)
    (Table.cell_usd plan.Forecast.total_all_reserved)
    (Table.cell_usd plan.Forecast.total_hybrid);
  Format.printf "winner under +30%%/period growth: %a@." Forecast.pp_strategy
    plan.Forecast.best
