(* Capacity planning for a Spotify-like social pub/sub service: given the
   notification workload, which EC2 instance type gives the cheapest fleet
   that keeps every subscriber satisfied?

   This is the deployment question the paper's introduction poses: "what
   is the cost of hosting it on a public IaaS provider like Amazon EC2".

   Run with: dune exec examples/spotify_scenario.exe *)

module Workload = Mcss_workload.Workload
module Instance = Mcss_pricing.Instance
module Cost_model = Mcss_pricing.Cost_model
module Problem = Mcss_core.Problem
module Solver = Mcss_core.Solver
module Lower_bound = Mcss_core.Lower_bound
module Table = Mcss_report.Table
module Spotify = Mcss_traces.Spotify

(* The utilisation-consistent per-VM capacity implied by the paper's
   figures for c3.large, at full trace scale (see EXPERIMENTS.md). *)
let implied_bc_c3_large = 5e7

let () =
  let scale = 0.01 in
  let params = { (Spotify.scaled scale) with Spotify.seed = 42 } in
  let workload = Spotify.generate params in
  Format.printf "generated %a@.@." Workload.pp_summary workload;

  let tau = 100. in
  Printf.printf
    "Satisfaction threshold: %g events per 10 days per subscriber.\n\n" tau;

  let table =
    Table.create
      [
        ("instance", Table.Left);
        ("VMs", Table.Right);
        ("VM cost", Table.Right);
        ("BW cost", Table.Right);
        ("total", Table.Right);
      ]
  in
  let best = ref None in
  List.iter
    (fun instance ->
      let model = Cost_model.ec2_2014 ~instance () in
      let capacity_events =
        implied_bc_c3_large *. scale *. (instance.Instance.bandwidth_mbps /. 64.)
      in
      let p = Problem.of_pricing ~capacity_events ~workload ~tau model in
      let r = Solver.solve p in
      let vm_cost = Cost_model.vm_cost model r.Solver.num_vms in
      let bw_cost = Cost_model.bandwidth_cost model r.Solver.bandwidth in
      Table.add_row table
        [
          instance.Instance.name;
          string_of_int r.Solver.num_vms;
          Table.cell_usd vm_cost;
          Table.cell_usd bw_cost;
          Table.cell_usd r.Solver.cost;
        ];
      match !best with
      | Some (_, c) when c <= r.Solver.cost -> ()
      | _ -> best := Some (instance.Instance.name, r.Solver.cost))
    Instance.catalogue;
  Table.print table;
  (match !best with
  | Some (name, cost) ->
      Printf.printf "\ncheapest fleet: %s at %s for the 10-day horizon\n" name
        (Table.cell_usd cost)
  | None -> ());

  (* How much headroom is left on the table? Compare with the bound. *)
  let model = Cost_model.ec2_2014 () in
  let p =
    Problem.of_pricing
      ~capacity_events:(implied_bc_c3_large *. scale)
      ~workload ~tau model
  in
  let lb = Lower_bound.compute p in
  let r = Solver.solve p in
  Printf.printf
    "on c3.large the heuristic pays %s against a theoretical floor of %s (+%.1f%%)\n"
    (Table.cell_usd r.Solver.cost)
    (Table.cell_usd lb.Lower_bound.cost)
    ((r.Solver.cost -. lb.Lower_bound.cost) /. lb.Lower_bound.cost *. 100.);

  (* Re-provisioning cadence: the paper (§IV-F) argues the solver is fast
     enough to run hourly. Measure it here. *)
  Printf.printf "solver runtime: stage 1 %.3fs + stage 2 %.3fs\n" r.Solver.stage1_seconds
    r.Solver.stage2_seconds;

  (* A steady pub/sub baseline is ideal for Reserved Instances: price the
     same fleet under each billing term. *)
  let module Billing = Mcss_pricing.Billing in
  print_newline ();
  let terms = Table.create [ ("billing term", Table.Left); ("10-day cost", Table.Right) ] in
  List.iter
    (fun term ->
      let m = Cost_model.ec2_2014 ~term () in
      let p' =
        Problem.of_pricing
          ~capacity_events:(implied_bc_c3_large *. scale)
          ~workload ~tau m
      in
      let r' = Solver.solve p' in
      Table.add_row terms
        [ Format.asprintf "%a" Billing.pp term; Table.cell_usd r'.Solver.cost ])
    Billing.all;
  Table.print terms
