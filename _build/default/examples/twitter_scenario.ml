(* A Twitter-like firehose: walk the paper's optimisation ladder one rung
   at a time, watch where the money goes, then replay the winning plan
   through the discrete-event simulator to confirm the fleet would really
   deliver.

   Run with: dune exec examples/twitter_scenario.exe *)

module Workload = Mcss_workload.Workload
module Instance = Mcss_pricing.Instance
module Cost_model = Mcss_pricing.Cost_model
module Problem = Mcss_core.Problem
module Solver = Mcss_core.Solver
module Allocation = Mcss_core.Allocation
module Simulator = Mcss_sim.Simulator
module Table = Mcss_report.Table
module Twitter = Mcss_traces.Twitter

let () =
  let scale = 0.002 in
  let params = { (Twitter.scaled scale) with Twitter.seed = 7 } in
  let workload = Twitter.generate params in
  Format.printf "generated %a@.@." Workload.pp_summary workload;

  let model = Cost_model.ec2_2014 () in
  let capacity_events = 5e7 *. scale in
  let tau = 100. in
  let p = Problem.of_pricing ~capacity_events ~workload ~tau model in

  (* The ladder, one rung at a time. *)
  let table =
    Table.create
      [
        ("configuration", Table.Left);
        ("VMs", Table.Right);
        ("bandwidth GB", Table.Right);
        ("cost", Table.Right);
        ("saving", Table.Right);
      ]
  in
  let naive_cost = ref 0. in
  let last = ref None in
  List.iter
    (fun (name, config) ->
      let r = Solver.solve ~config p in
      if name = "RSP+FFBP" then naive_cost := r.Solver.cost;
      Table.add_row table
        [
          name;
          string_of_int r.Solver.num_vms;
          Table.cell_float ~decimals:2 (Cost_model.gb_of_events model r.Solver.bandwidth);
          Table.cell_usd r.Solver.cost;
          Table.cell_pct (Table.pct_change ~baseline:!naive_cost r.Solver.cost);
        ];
      last := Some r)
    Solver.ladder;
  Table.print table;

  match !last with
  | None -> ()
  | Some best ->
      (* Replay one full horizon through the simulator: deterministic
         arrivals make measured traffic equal the analytical plan. *)
      let res = Simulator.run p best.Solver.allocation Simulator.default_config in
      let c = Simulator.check p best.Solver.allocation res ~tolerance:0. in
      Printf.printf
        "\nsimulated one 10-day horizon: %d publications fanned out through %d VMs\n"
        res.Simulator.events_published best.Solver.num_vms;
      Printf.printf "measured traffic matches the plan exactly: %b\n" (Simulator.all_ok c);
      (* Burstiness: the plan promises average-rate feasibility; the
         bucket meters show the instantaneous picture. *)
      let worst = ref 0. in
      Array.iter
        (fun vm ->
          let peak = Simulator.peak_bucket_rate res ~vm:(Allocation.vm_id vm) in
          if peak /. p.Problem.capacity > !worst then
            worst := peak /. p.Problem.capacity)
        (Allocation.vms best.Solver.allocation);
      Printf.printf "worst instantaneous VM utilisation across 20 buckets: %.0f%%\n"
        (100. *. !worst);
      (* Poisson arrivals: reality is noisier; allow sampling tolerance. *)
      let res' =
        Simulator.run p best.Solver.allocation
          { Simulator.default_config with Simulator.arrivals = Simulator.Poisson 2024 }
      in
      let c' = Simulator.check p best.Solver.allocation res' ~tolerance:0.5 in
      Printf.printf "poisson replay stays within 50%% + noise tolerance: %b\n"
        (Simulator.all_ok c')
