(* Dynamic re-provisioning: the paper closes by proposing to re-run the
   allocator periodically "to adapt to the changes in the event rates,
   new subscriptions, unsubscriptions" (§IV-F) and names an online
   algorithm as future work (§VI). This example plays out that future:
   a Spotify-like service absorbs a day of churn every tick, and the
   incremental planner adapts the running fleet while counting exactly
   how much state would migrate — versus re-solving from scratch.

   Run with: dune exec examples/dynamic_reprovision.exe *)

module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Allocation = Mcss_core.Allocation
module Solver = Mcss_core.Solver
module Verifier = Mcss_core.Verifier
module Delta = Mcss_dynamic.Delta
module Churn = Mcss_dynamic.Churn
module Reprovision = Mcss_dynamic.Reprovision
module Table = Mcss_report.Table
module Rng = Mcss_prng.Rng
module Spotify = Mcss_traces.Spotify

let problem_for w =
  Problem.of_pricing ~capacity_events:250_000. ~workload:w ~tau:100.
    (Mcss_pricing.Cost_model.ec2_2014 ())

(* One tick of churn: fresh users join, follows appear and disappear, a
   few artists get hot or go quiet — the parametric model from
   Mcss_dynamic.Churn, doubled. *)
let day = Churn.scaled 2.0

let () =
  let rng = Rng.create 2026 in
  let w = ref (Spotify.generate { (Spotify.scaled 0.005) with Spotify.seed = 99 }) in
  Format.printf "day 0: %a@.@." Workload.pp_summary !w;
  let plan = ref (Reprovision.initial (problem_for !w)) in
  let table =
    Table.create
      [
        ("day", Table.Right);
        ("VMs", Table.Right);
        ("incr cost", Table.Right);
        ("cold cost", Table.Right);
        ("kept", Table.Right);
        ("added", Table.Right);
        ("removed", Table.Right);
        ("evicted", Table.Right);
        ("moved %", Table.Right);
        ("incr ms", Table.Right);
      ]
  in
  for day_num = 1 to 7 do
    let deltas = Churn.tick rng day !w in
    w := Delta.apply !w deltas;
    let p = problem_for !w in
    let t0 = Unix.gettimeofday () in
    let plan', stats = Reprovision.reprovision ~previous:!plan p in
    let incr_ms = 1000. *. (Unix.gettimeofday () -. t0) in
    plan := plan';
    ignore
      (Verifier.check_exn p plan'.Reprovision.selection plan'.Reprovision.allocation);
    let cold = Solver.solve p in
    let total_pairs = stats.Reprovision.pairs_kept + stats.Reprovision.pairs_added in
    let moved =
      100.
      *. float_of_int (stats.Reprovision.pairs_added + stats.Reprovision.pairs_evicted)
      /. float_of_int (max 1 total_pairs)
    in
    Table.add_row table
      [
        string_of_int day_num;
        string_of_int (Allocation.num_vms plan'.Reprovision.allocation);
        Table.cell_usd (Reprovision.cost plan');
        Table.cell_usd cold.Solver.cost;
        string_of_int stats.Reprovision.pairs_kept;
        string_of_int stats.Reprovision.pairs_added;
        string_of_int stats.Reprovision.pairs_removed;
        string_of_int stats.Reprovision.pairs_evicted;
        Table.cell_float ~decimals:2 moved;
        Table.cell_float ~decimals:1 incr_ms;
      ]
  done;
  Table.print table;
  print_endline
    "\nEvery day the incremental plan stays verifier-clean, touches a tiny\n\
     fraction of the pairs (a cold re-solve would reshuffle nearly all of\n\
     them), and its cost tracks the from-scratch optimiser."
