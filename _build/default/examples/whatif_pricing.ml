(* What-if pricing: the paper (§IV-D) observes that optimisation (e) — the
   cost-model-based distribute-vs-deploy decision — barely matters at
   Amazon's $0.12/GB, because bandwidth is so much cheaper than VM hours.
   Sweep the bandwidth price and watch where the decision starts to pay:
   the trade-off between number of VMs and bandwidth made concrete.

   Run with: dune exec examples/whatif_pricing.exe *)

module Workload = Mcss_workload.Workload
module Cost_model = Mcss_pricing.Cost_model
module Problem = Mcss_core.Problem
module Solver = Mcss_core.Solver
module Cbp = Mcss_core.Cbp
module Table = Mcss_report.Table
module Twitter = Mcss_traces.Twitter

let () =
  let params = { (Twitter.scaled 0.002) with Twitter.seed = 11 } in
  let workload = Twitter.generate params in
  Format.printf "%a@.@." Workload.pp_summary workload;

  let model = Cost_model.ec2_2014 () in
  let capacity_events = 5e7 *. 0.002 in
  let tau = 100. in
  (* Event volume -> money at a configurable $/GB. *)
  let costs_at usd_per_gb =
    {
      Problem.vm_cost = Cost_model.vm_cost model;
      bandwidth_cost =
        (fun events -> Cost_model.gb_of_events model events *. usd_per_gb);
    }
  in
  let table =
    Table.create
      [
        ("$/GB", Table.Right);
        ("(d) cost", Table.Right);
        ("(e) cost", Table.Right);
        ("(e) VMs vs (d)", Table.Right);
        ("(e) saving", Table.Right);
      ]
  in
  let prices = [ 0.12; 1.2; 12.; 60.; 120.; 600. ] in
  List.iter
    (fun usd_per_gb ->
      let p =
        Problem.create ~workload ~tau ~capacity:capacity_events (costs_at usd_per_gb)
      in
      let without =
        Solver.solve ~config:{ Solver.stage1 = Solver.Gsp; stage2 = Solver.Cbp Cbp.with_most_free } p
      in
      let with_e =
        Solver.solve ~config:{ Solver.stage1 = Solver.Gsp; stage2 = Solver.Cbp Cbp.with_cost_decision } p
      in
      Table.add_row table
        [
          Printf.sprintf "%.2f" usd_per_gb;
          Table.cell_usd without.Solver.cost;
          Table.cell_usd with_e.Solver.cost;
          Printf.sprintf "%+d" (with_e.Solver.num_vms - without.Solver.num_vms);
          Table.cell_pct (Table.pct_change ~baseline:without.Solver.cost with_e.Solver.cost);
        ])
    prices;
  Table.print table;
  print_endline
    "\nAt EC2's real $0.12/GB the cost decision is nearly a no-op (the paper\n\
     measured at most 1.2% on Spotify and 0.2% on Twitter); as bandwidth\n\
     grows dearer, deploying extra VMs to avoid splitting topics wins."
