(* Tests for plan persistence. *)

module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Allocation = Mcss_core.Allocation
module Selection = Mcss_core.Selection
module Solver = Mcss_core.Solver
module Verifier = Mcss_core.Verifier
module Plan_io = Mcss_core.Plan_io

let roundtrip p =
  let r = Solver.solve p in
  let path = Filename.temp_file "mcss_plan" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Plan_io.save r.Solver.allocation path;
      let a, s = Plan_io.load ~workload:p.Problem.workload path in
      (r, a, s))

let test_roundtrip_fig1 () =
  let p = Helpers.fig1_problem ~capacity:50. () in
  let r, a, s = roundtrip p in
  Helpers.check_int "VM count" r.Solver.num_vms (Allocation.num_vms a);
  Helpers.check_float "total load" r.Solver.bandwidth (Allocation.total_load a);
  Helpers.check_int "pairs" r.Solver.selection.Selection.num_pairs s.Selection.num_pairs;
  Helpers.check_bool "reloaded plan verifies" true
    (Verifier.is_valid (Verifier.verify p s a))

let parse ~workload content =
  let path = Filename.temp_file "mcss_plan" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc -> output_string oc content);
      Plan_io.load ~workload path)

let expect_error name ~workload content =
  match parse ~workload content with
  | _ -> Alcotest.failf "%s: expected Parse_error" name
  | exception Plan_io.Parse_error _ -> ()

let test_parse_errors () =
  let w = Helpers.fig1_workload () in
  expect_error "bad header" ~workload:w "mcss-plan 2\n";
  expect_error "bad capacity" ~workload:w "mcss-plan 1\ncapacity -3\nvms 0\n";
  expect_error "vm out of range" ~workload:w
    "mcss-plan 1\ncapacity 50\nvms 1\nplace 2 0 1 0\n";
  expect_error "topic out of range" ~workload:w
    "mcss-plan 1\ncapacity 50\nvms 1\nplace 0 9 1 0\n";
  expect_error "subscriber out of range" ~workload:w
    "mcss-plan 1\ncapacity 50\nvms 1\nplace 0 0 1 9\n";
  expect_error "pair never subscribed" ~workload:w
    "mcss-plan 1\ncapacity 50\nvms 1\nplace 0 0 1 2\n";
  expect_error "duplicate pair" ~workload:w
    "mcss-plan 1\ncapacity 50\nvms 2\nplace 0 0 1 0\nplace 1 0 1 0\n";
  expect_error "count mismatch" ~workload:w
    "mcss-plan 1\ncapacity 50\nvms 1\nplace 0 0 2 0\n"

let test_accepts_comments () =
  let w = Helpers.fig1_workload () in
  let a, s =
    parse ~workload:w "# a plan\nmcss-plan 1\ncapacity 50\nvms 1\n# one pair\nplace 0 1 1 2\n"
  in
  Helpers.check_int "one vm" 1 (Allocation.num_vms a);
  Helpers.check_int "one pair" 1 s.Selection.num_pairs;
  Helpers.check_float "load = 2 ev" 20. (Allocation.total_load a)

let prop_roundtrip_preserves_everything =
  Helpers.qtest ~count:80 "plan save/load preserves fleet, loads and selection"
    Helpers.problem_arbitrary (fun p ->
      let r, a, s = roundtrip p in
      Allocation.num_vms a = r.Solver.num_vms
      && Float.abs (Allocation.total_load a -. r.Solver.bandwidth) < 1e-6
      && s.Selection.chosen = r.Solver.selection.Selection.chosen
      && Verifier.is_valid (Verifier.verify p s a))

let suite =
  [
    Alcotest.test_case "roundtrip fig1" `Quick test_roundtrip_fig1;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "accepts comments" `Quick test_accepts_comments;
    prop_roundtrip_preserves_everything;
  ]
