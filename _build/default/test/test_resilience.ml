(* Tests for the resilience subsystem: fault campaigns, the supervision
   loop, k-redundant placement and the SLA ledger. *)

module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Selection = Mcss_core.Selection
module Allocation = Mcss_core.Allocation
module Cbp = Mcss_core.Cbp
module Simulator = Mcss_sim.Simulator
module Reprovision = Mcss_dynamic.Reprovision
module Failure_model = Mcss_resilience.Failure_model
module Orchestrator = Mcss_resilience.Orchestrator
module Redundancy = Mcss_resilience.Redundancy
module Sla = Mcss_resilience.Sla

let all_faults =
  [
    Failure_model.Crash { vm = 3; at = 0.25 };
    Failure_model.Transient { vm = 0; from_time = 0.1; until_time = 0.4 };
    Failure_model.Throttle { vm = 2; from_time = 0.5; until_time = 0.75; severity = 0.5 };
    Failure_model.Zone_burst { zone = 1; at = 0.8; duration = 0.15 };
  ]

(* ----- failure model ----- *)

let test_fault_string_round_trip () =
  List.iter
    (fun f ->
      let s = Failure_model.fault_to_string f in
      match Failure_model.fault_of_string s with
      | Ok f' -> Helpers.check_bool ("round trip " ^ s) true (f = f')
      | Error m -> Alcotest.failf "%s did not parse back: %s" s m)
    all_faults

let test_fault_of_string_rejects_garbage () =
  List.iter
    (fun s ->
      match Failure_model.fault_of_string s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error m -> Helpers.check_bool "message names input" true (Helpers.contains ~needle:s m))
    [
      "nonsense";
      "crash:0";
      "crash:x@1";
      "crash:-1@1";
      "transient:0@2-1";       (* inverted window *)
      "throttle:0@1-2*1.5";    (* severity out of range *)
      "throttle:0@1-2*0";
      "zone:0@1+0";            (* nonpositive duration *)
      "zone:0@1-2";            (* wrong separator *)
    ]

let test_validate_rejects_malformed () =
  let rejects f =
    let c = { Failure_model.seed = 0; faults = [ f ] } in
    match Failure_model.validate c with
    | () -> Alcotest.failf "%s should not validate" (Failure_model.fault_to_string f)
    | exception Invalid_argument _ -> ()
  in
  rejects (Failure_model.Crash { vm = -1; at = 0. });
  rejects (Failure_model.Crash { vm = 0; at = -1. });
  rejects (Failure_model.Crash { vm = 0; at = Float.nan });
  rejects (Failure_model.Transient { vm = 0; from_time = 0.5; until_time = 0.2 });
  rejects (Failure_model.Throttle { vm = 0; from_time = 0.1; until_time = 0.2; severity = 0. });
  rejects (Failure_model.Throttle { vm = 0; from_time = 0.1; until_time = 0.2; severity = 1. });
  rejects (Failure_model.Zone_burst { zone = -1; at = 0.; duration = 0.1 });
  rejects (Failure_model.Zone_burst { zone = 0; at = 0.; duration = 0. });
  (* And the good ones pass. *)
  Failure_model.validate { Failure_model.seed = 0; faults = all_faults }

let test_compile_shapes () =
  let c = { Failure_model.seed = 0; faults = all_faults } in
  (* 6 VMs, 3 zones: zone 1 = VMs 1 and 4, so 3 single-VM faults plus a
     2-VM burst. *)
  let outages = Failure_model.compile c ~num_vms:6 ~zones:3 in
  Helpers.check_int "outage count" 5 (List.length outages);
  let crash = List.hd outages in
  Helpers.check_int "crash vm" 3 crash.Simulator.vm;
  Helpers.check_bool "crash is permanent" true (crash.Simulator.until_time = infinity);
  let burst_vms =
    List.filter_map
      (fun o ->
        if o.Simulator.from_time = 0.8 then Some o.Simulator.vm else None)
      outages
  in
  Helpers.check_bool "burst covers zone 1" true (List.sort compare burst_vms = [ 1; 4 ]);
  List.iter
    (fun o ->
      if o.Simulator.from_time = 0.8 then
        Helpers.check_float "burst window" 0.95 o.Simulator.until_time)
    outages

let test_compile_drops_out_of_range () =
  let c = { Failure_model.seed = 0; faults = all_faults } in
  (* Fleet of 2 with 1 zone: the crash on vm 3 and throttle on vm 2 are
     aimed at empty slots; zone 1 does not exist. Only the transient on
     vm 0 survives. *)
  let outages = Failure_model.compile c ~num_vms:2 ~zones:1 in
  Helpers.check_int "only in-range faults compile" 1 (List.length outages);
  Helpers.check_int "the transient" 0 (List.hd outages).Simulator.vm;
  Helpers.check_int "empty fleet compiles to nothing" 0
    (List.length (Failure_model.compile c ~num_vms:0 ~zones:1))

let test_random_campaign_deterministic () =
  let gen () =
    Failure_model.random ~seed:5 ~num_vms:10 ~zones:3 ~crashes:2 ~transients:2
      ~throttles:2 ~zone_bursts:2 ~horizon:4. ()
  in
  let c1 = gen () and c2 = gen () in
  Helpers.check_bool "same seed, same campaign" true (c1 = c2);
  Helpers.check_int "fault count" 8 (List.length c1.Failure_model.faults);
  Failure_model.validate c1;
  let c3 = Failure_model.random ~seed:6 ~num_vms:10 ~zones:3 ~horizon:4. () in
  Helpers.check_bool "different seed, different campaign" true
    (c1.Failure_model.faults <> c3.Failure_model.faults);
  (* Faults come out sorted by start time. *)
  let starts = List.map Failure_model.start_time c1.Failure_model.faults in
  Helpers.check_bool "sorted by start" true (List.sort compare starts = starts)

let test_zone_of_vm () =
  Helpers.check_int "vm 7 of 3 zones" 1 (Failure_model.zone_of_vm ~zones:3 7);
  Helpers.check_int "one zone" 0 (Failure_model.zone_of_vm ~zones:1 42)

(* ----- throttle behaviour through the simulator ----- *)

let test_throttle_thins_not_kills () =
  let p = Helpers.fig1_problem ~capacity:50. () in
  let r = Mcss_core.Solver.solve p in
  let lost severity =
    let outages =
      [ Simulator.outage ~severity ~vm:0 ~from_time:0.25 ~until_time:0.75 () ]
    in
    let res =
      Simulator.run p r.Mcss_core.Solver.allocation
        { Simulator.default_config with Simulator.outages }
    in
    Array.fold_left ( + ) 0 res.Simulator.lost
  in
  let full = lost 1.0 and half = lost 0.5 and light = lost 0.1 in
  Helpers.check_bool "full outage loses most" true (full > half);
  Helpers.check_bool "half loses more than light" true (half > light);
  Helpers.check_bool "light still loses" true (light > 0)

(* ----- redundancy ----- *)

let fig1_80 () =
  let p = Helpers.fig1_problem ~capacity:80. () in
  (p, Selection.gsp p)

let test_redundancy_k1_is_plain_cbp () =
  let p, s = fig1_80 () in
  let a, stats = Redundancy.place ~zones:3 ~k:1 p s in
  let plain = Cbp.run p s Cbp.with_cost_decision in
  Helpers.check_int "same fleet" (Allocation.num_vms plain) (Allocation.num_vms a);
  Helpers.check_int "no replicas" 0 stats.Redundancy.replicas_placed;
  Helpers.check_float "no overhead" 0. stats.Redundancy.overhead_vs_base_pct;
  Helpers.check_bool "audits clean" true (Redundancy.check p s ~k:1 a = Ok ())

let test_redundancy_k2_zone_diverse () =
  let p, s = fig1_80 () in
  let a, stats = Redundancy.place ~zones:3 ~k:2 p s in
  (match Redundancy.check p s ~k:2 a with
  | Ok () -> ()
  | Error m -> Alcotest.failf "audit failed: %s" m);
  Helpers.check_int "every pair replicated" s.Selection.num_pairs
    stats.Redundancy.replicas_placed;
  Helpers.check_int "all pairs zone-diverse" s.Selection.num_pairs
    stats.Redundancy.zone_diverse_pairs;
  Helpers.check_bool "fleet grew" true (stats.Redundancy.vms > stats.Redundancy.base_vms);
  Helpers.check_bool "costs more than k=1" true
    (stats.Redundancy.overhead_vs_base_pct > 0.);
  Helpers.check_bool "LB overhead above base overhead" true
    (stats.Redundancy.overhead_vs_lb_pct >= stats.Redundancy.overhead_vs_base_pct)

let test_redundancy_check_catches_missing_copy () =
  let p, s = fig1_80 () in
  let a, _ = Redundancy.place ~zones:3 ~k:2 p s in
  (* Knock one copy out and the audit must notice the count mismatch. *)
  let rates = Workload.event_rates p.Problem.workload in
  let vm0 = (Allocation.vms a).(0) in
  let first = ref None in
  Allocation.iter_vm_pairs vm0 (fun t v -> if !first = None then first := Some (t, v));
  match !first with
  | None -> Alcotest.fail "vm 0 hosts nothing"
  | Some (t, v) ->
      Helpers.check_bool "pair removed" true
        (Allocation.remove a vm0 ~topic:t ~ev:rates.(t) ~subscriber:v);
      Helpers.check_bool "audit flags missing copy" true
        (Redundancy.check p s ~k:2 a <> Ok ())

let test_redundancy_rejects_bad_k () =
  let p, s = fig1_80 () in
  (match Redundancy.place ~k:0 p s with
  | _ -> Alcotest.fail "k=0 should be rejected"
  | exception Invalid_argument _ -> ());
  match Redundancy.place ~zones:0 ~k:2 p s with
  | _ -> Alcotest.fail "zones=0 should be rejected"
  | exception Invalid_argument _ -> ()

let prop_redundant_placement_audits_clean =
  Helpers.qtest ~count:40 "k=2 placement passes its own audit"
    Helpers.problem_arbitrary (fun p ->
      let s = Selection.gsp p in
      match Redundancy.place ~zones:3 ~k:2 p s with
      | a, stats ->
          Redundancy.check p s ~k:2 a = Ok ()
          && stats.Redundancy.replicas_placed = s.Selection.num_pairs
      | exception Problem.Infeasible _ -> true)

(* ----- SLA ledger ----- *)

let epoch ~index ~violations ?(repaired = false) () =
  {
    Sla.index;
    hours = 1.;
    violations;
    subscribers = 10;
    delivered = 90;
    lost = 10;
    repaired;
  }

let test_sla_arithmetic () =
  let t = Sla.create () in
  List.iteri
    (fun i v -> Sla.record t (epoch ~index:i ~violations:v ~repaired:(i = 2) ()))
    [ 0; 2; 3; 0; 1 ];
  let r = Sla.report ~penalty_usd_per_violation_hour:50. t in
  Helpers.check_int "epochs" 5 r.Sla.epochs;
  Helpers.check_float "horizon" 5. r.Sla.horizon_hours;
  Helpers.check_float "violation-hours" 6. r.Sla.violation_hours;
  Helpers.check_int "violation epochs" 3 r.Sla.violation_epochs;
  Helpers.check_int "worst epoch" 3 r.Sla.worst_epoch_violations;
  Helpers.check_int "repairs" 1 r.Sla.repairs;
  (* Two violation runs: epochs 1-2 (length 2) and epoch 4 (length 1). *)
  Helpers.check_float "mean epochs to recover" 1.5 r.Sla.mean_epochs_to_recover;
  Helpers.check_float "downtime cost" 300. r.Sla.downtime_cost;
  Helpers.check_float "delivered fraction" 0.9 r.Sla.delivered_fraction;
  Helpers.check_int "delivered events" 450 r.Sla.delivered_events

let test_sla_empty_and_healthy () =
  let r = Sla.report (Sla.create ()) in
  Helpers.check_float "no flow = full delivery" 1. r.Sla.delivered_fraction;
  Helpers.check_float "no violations" 0. r.Sla.violation_hours;
  Helpers.check_float "nothing to recover from" 0. r.Sla.mean_epochs_to_recover;
  let t = Sla.create () in
  Sla.record t (epoch ~index:0 ~violations:0 ());
  let r = Sla.report t in
  Helpers.check_float "healthy epoch, zero recovery time" 0. r.Sla.mean_epochs_to_recover

(* ----- orchestrator ----- *)

let tiny_policy =
  { Orchestrator.default_policy with Orchestrator.seed = 42; jitter = 0 }

let test_backoff_schedule () =
  let rng = Mcss_prng.Rng.create 1 in
  let p = { tiny_policy with Orchestrator.base_backoff = 1; max_backoff = 8 } in
  List.iter
    (fun (failures, expect) ->
      Helpers.check_int
        (Printf.sprintf "backoff after %d failures" failures)
        expect
        (Orchestrator.backoff p rng ~failures))
    [ (1, 1); (2, 2); (3, 4); (4, 8); (5, 8); (10, 8) ];
  (* Jitter only ever adds, within its bound. *)
  let pj = { p with Orchestrator.jitter = 3 } in
  for failures = 1 to 6 do
    let b = Orchestrator.backoff pj rng ~failures in
    let base = Orchestrator.backoff p rng ~failures in
    Helpers.check_bool "jitter within bounds" true (b >= base && b <= base + 3)
  done

let drill_campaign =
  {
    Failure_model.seed = 7;
    faults =
      [
        Failure_model.Crash { vm = 0; at = 0.6 };
        Failure_model.Transient { vm = 1; from_time = 1.1; until_time = 1.4 };
        Failure_model.Zone_burst { zone = 0; at = 2.0; duration = 0.3 };
        Failure_model.Throttle { vm = 1; from_time = 2.6; until_time = 2.9; severity = 0.5 };
      ];
  }

let test_quiet_campaign_is_uneventful () =
  let p = Helpers.fig1_problem ~capacity:80. () in
  let campaign = { Failure_model.seed = 1; faults = [] } in
  let o = Orchestrator.run ~policy:tiny_policy ~zones:3 ~campaign p in
  Helpers.check_int "no repairs" 0 o.Orchestrator.repairs;
  Helpers.check_int "no attempts" 0 o.Orchestrator.repair_attempts;
  Helpers.check_float "no violations" 0. o.Orchestrator.sla.Sla.violation_hours;
  Helpers.check_float "full delivery" 1. o.Orchestrator.sla.Sla.delivered_fraction;
  Helpers.check_bool "verified" true (o.Orchestrator.verified = Ok ())

let test_supervised_drill_recovers () =
  (* The acceptance drill: a fixed seeded campaign with a crash, a
     transient, a zone burst and a throttle. Supervised recovery must end
     healthy and verified with strictly fewer violation-hours than the
     observe-only baseline; k=2 replicas must also beat the baseline. *)
  let p = Helpers.fig1_problem ~capacity:80. () in
  let baseline =
    Orchestrator.run
      ~policy:{ tiny_policy with Orchestrator.recovery = false }
      ~zones:3 ~campaign:drill_campaign p
  in
  let supervised =
    Orchestrator.run ~policy:tiny_policy ~zones:3 ~campaign:drill_campaign p
  in
  Helpers.check_bool "baseline suffers" true
    (baseline.Orchestrator.sla.Sla.violation_hours > 0.);
  Helpers.check_int "baseline never repairs" 0 baseline.Orchestrator.repairs;
  Helpers.check_bool "supervised repairs" true (supervised.Orchestrator.repairs >= 1);
  Helpers.check_bool "recovery reduces violation-hours" true
    (supervised.Orchestrator.sla.Sla.violation_hours
    < baseline.Orchestrator.sla.Sla.violation_hours);
  Helpers.check_bool "repaired plan verifies" true
    (supervised.Orchestrator.verified = Ok ());
  Helpers.check_bool "nothing shed" true (supervised.Orchestrator.shed = []);
  (match List.rev supervised.Orchestrator.epoch_log with
  | last :: _ -> Helpers.check_int "drill ends healthy" 0 last.Sla.violations
  | [] -> Alcotest.fail "empty epoch log");
  (* Same campaign, k=2 zone-diverse replicas, no recovery at all. *)
  let s = Selection.gsp p in
  let redundant, _ = Redundancy.place ~zones:3 ~k:2 p s in
  let sla2 =
    Orchestrator.evaluate ~policy:tiny_policy ~zones:3 ~campaign:drill_campaign p
      redundant
  in
  Helpers.check_bool "replicas beat the unsupervised baseline" true
    (sla2.Sla.violation_hours < baseline.Orchestrator.sla.Sla.violation_hours)

let test_determinism () =
  let p = Helpers.fig1_problem ~capacity:80. () in
  let run () = Orchestrator.run ~policy:tiny_policy ~zones:3 ~campaign:drill_campaign p in
  let a = run () and b = run () in
  Helpers.check_bool "same outcome" true
    (a.Orchestrator.sla = b.Orchestrator.sla
    && a.Orchestrator.repairs = b.Orchestrator.repairs
    && a.Orchestrator.vms_added = b.Orchestrator.vms_added
    && List.map (fun (e : Sla.epoch) -> e.Sla.violations) a.Orchestrator.epoch_log
       = List.map (fun (e : Sla.epoch) -> e.Sla.violations) b.Orchestrator.epoch_log)

let test_budget_zero_blocks_repair () =
  let p = Helpers.fig1_problem ~capacity:80. () in
  let o =
    Orchestrator.run
      ~policy:{ tiny_policy with Orchestrator.max_new_vms = 0 }
      ~zones:3 ~campaign:drill_campaign p
  in
  Helpers.check_int "no replacement VMs deployed" 0 o.Orchestrator.vms_added

let suite =
  [
    Alcotest.test_case "fault string round trip" `Quick test_fault_string_round_trip;
    Alcotest.test_case "fault parser rejects garbage" `Quick
      test_fault_of_string_rejects_garbage;
    Alcotest.test_case "validate rejects malformed" `Quick test_validate_rejects_malformed;
    Alcotest.test_case "compile shapes" `Quick test_compile_shapes;
    Alcotest.test_case "compile drops out-of-range" `Quick test_compile_drops_out_of_range;
    Alcotest.test_case "random campaign deterministic" `Quick
      test_random_campaign_deterministic;
    Alcotest.test_case "zone of vm" `Quick test_zone_of_vm;
    Alcotest.test_case "throttle thins, not kills" `Quick test_throttle_thins_not_kills;
    Alcotest.test_case "redundancy k=1 is plain CBP" `Quick test_redundancy_k1_is_plain_cbp;
    Alcotest.test_case "redundancy k=2 zone-diverse" `Quick test_redundancy_k2_zone_diverse;
    Alcotest.test_case "redundancy audit catches corruption" `Quick
      test_redundancy_check_catches_missing_copy;
    Alcotest.test_case "redundancy rejects bad k/zones" `Quick test_redundancy_rejects_bad_k;
    prop_redundant_placement_audits_clean;
    Alcotest.test_case "sla arithmetic" `Quick test_sla_arithmetic;
    Alcotest.test_case "sla empty and healthy" `Quick test_sla_empty_and_healthy;
    Alcotest.test_case "backoff schedule" `Quick test_backoff_schedule;
    Alcotest.test_case "quiet campaign uneventful" `Quick test_quiet_campaign_is_uneventful;
    Alcotest.test_case "supervised drill recovers" `Quick test_supervised_drill_recovers;
    Alcotest.test_case "drill is deterministic" `Quick test_determinism;
    Alcotest.test_case "zero budget blocks repair" `Quick test_budget_zero_blocks_repair;
  ]
