(* Tests for the table and series report helpers. *)

module Table = Mcss_report.Table
module Series = Mcss_report.Series
module Plot = Mcss_report.Plot

let test_table_render () =
  let t = Table.create [ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_separator t;
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Helpers.check_int "five lines" 5 (List.length lines);
  Helpers.check_bool "header present" true (Helpers.contains ~needle:"name" s);
  (* Right-aligned numbers line up on the right edge. *)
  Helpers.check_bool "right aligned" true (Helpers.contains ~needle:"    1" s)

let test_table_arity_check () =
  let t = Table.create [ ("a", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: 2 cells for 1 columns")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_cells () =
  Alcotest.(check string) "float" "3.14" (Table.cell_float ~decimals:2 3.14159);
  Alcotest.(check string) "float default" "3.1" (Table.cell_float 3.14159);
  Alcotest.(check string) "usd" "$12.50" (Table.cell_usd 12.5);
  Alcotest.(check string) "pct" "12.3%" (Table.cell_pct 12.34)

let test_pct_change () =
  Helpers.check_float "reduction" 25. (Table.pct_change ~baseline:100. 75.);
  Helpers.check_float "increase is negative" (-50.) (Table.pct_change ~baseline:100. 150.);
  Helpers.check_float "zero baseline" 0. (Table.pct_change ~baseline:0. 5.)

let test_series_to_string () =
  let s = Series.of_int_pairs ~name:"ccdf" [ (1, 0.5); (10, 0.25) ] in
  let text = Series.to_string s in
  Helpers.check_bool "header" true (Helpers.contains ~needle:"# ccdf" text);
  Helpers.check_bool "point" true (Helpers.contains ~needle:"10 0.25" text)

let test_series_save () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "mcss_series_test" in
  let s = Series.of_pairs ~name:"demo" [ (1., 2.) ] in
  Series.save_all [ s ] ~dir;
  let path = Filename.concat dir "demo.dat" in
  Helpers.check_bool "file written" true (Sys.file_exists path);
  let content = In_channel.with_open_text path In_channel.input_all in
  Helpers.check_bool "contains point" true (Helpers.contains ~needle:"1 2" content);
  Sys.remove path

let test_plot_script () =
  let spec =
    {
      Plot.title = "CCDF \"quoted\"";
      xlabel = "x";
      ylabel = "P(X > x)";
      xaxis = Plot.Log;
      yaxis = Plot.Log;
      style = Plot.Lines;
      series = [ ("followers", "a.dat"); ("followings", "b.dat") ];
    }
  in
  let s = Plot.script spec ~output:"out.png" in
  List.iter
    (fun needle -> Helpers.check_bool (needle ^ " present") true (Helpers.contains ~needle s))
    [
      "set terminal pngcairo";
      "set output \"out.png\"";
      "set logscale x";
      "set logscale y";
      "\"a.dat\" using 1:2 with lines";
      "title \"followings\"";
    ];
  (* The quote in the title is escaped. *)
  Helpers.check_bool "escaped quote" true (Helpers.contains ~needle:"CCDF \\\"quoted" s)

let test_plot_save () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "mcss_plot_test" in
  Plot.save ~dir ~name:"demo"
    {
      Plot.title = "t";
      xlabel = "x";
      ylabel = "y";
      xaxis = Plot.Linear;
      yaxis = Plot.Linear;
      style = Plot.Points;
      series = [ ("s", "s.dat") ];
    };
  let path = Filename.concat dir "demo.gp" in
  Helpers.check_bool "written" true (Sys.file_exists path);
  let content = In_channel.with_open_text path In_channel.input_all in
  Helpers.check_bool "targets png" true (Helpers.contains ~needle:"demo.png" content);
  Helpers.check_bool "no logscale" false (Helpers.contains ~needle:"logscale" content);
  Sys.remove path

let suite =
  [
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "plot script" `Quick test_plot_script;
    Alcotest.test_case "plot save" `Quick test_plot_save;
    Alcotest.test_case "table arity check" `Quick test_table_arity_check;
    Alcotest.test_case "cells" `Quick test_cells;
    Alcotest.test_case "pct change" `Quick test_pct_change;
    Alcotest.test_case "series to_string" `Quick test_series_to_string;
    Alcotest.test_case "series save" `Quick test_series_save;
  ]
