(* Tests that the verifier actually catches each class of violation —
   built by hand-placing pairs outside the algorithms. *)

module Problem = Mcss_core.Problem
module Selection = Mcss_core.Selection
module Allocation = Mcss_core.Allocation
module Verifier = Mcss_core.Verifier
module Solver = Mcss_core.Solver

let has pred report = List.exists pred report.Verifier.violations

let test_clean_solution_is_valid () =
  let p = Helpers.fig1_problem () in
  let r = Solver.solve p in
  let report = Verifier.verify p r.Solver.selection r.Solver.allocation in
  Helpers.check_bool "valid" true (Verifier.is_valid report);
  Helpers.check_int "vms agree" r.Solver.num_vms report.Verifier.num_vms;
  Helpers.check_float "bandwidth agrees" r.Solver.bandwidth report.Verifier.total_bandwidth

let test_detects_missing_pair () =
  let p = Helpers.fig1_problem () in
  let s = Selection.gsp p in
  let a = Allocation.create ~capacity:80. in
  let b = Allocation.deploy a in
  (* Place only one of the five selected pairs. *)
  Allocation.place a b ~topic:0 ~ev:20. ~subscribers:[| 0 |] ~from:0 ~count:1;
  let report = Verifier.verify p s a in
  Helpers.check_bool "missing pair flagged" true
    (has (function Verifier.Pair_missing _ -> true | _ -> false) report);
  Helpers.check_bool "unsatisfied flagged" true
    (has (function Verifier.Unsatisfied _ -> true | _ -> false) report)

let test_detects_over_capacity () =
  let p = Helpers.fig1_problem ~capacity:35. ~tau:10. () in
  let selection =
    (* A hand-built selection of all five pairs; packing them all on one
       35-capacity VM must trip the capacity check. *)
    let chosen = [| [| 0; 1 |]; [| 0; 1 |]; [| 1 |] |] in
    {
      Selection.chosen;
      selected_rate = [| 30.; 30.; 10. |];
      num_pairs = 5;
      outgoing_rate = 70.;
    }
  in
  let a = Allocation.create ~capacity:35. in
  let b = Allocation.deploy a in
  Allocation.place a b ~topic:0 ~ev:20. ~subscribers:[| 0; 1 |] ~from:0 ~count:2;
  Allocation.place a b ~topic:1 ~ev:10. ~subscribers:[| 0; 1; 2 |] ~from:0 ~count:3;
  let report = Verifier.verify p selection a in
  Helpers.check_bool "over capacity flagged" true
    (has (function Verifier.Over_capacity _ -> true | _ -> false) report)

let test_detects_foreign_pair () =
  let p = Helpers.fig1_problem () in
  let s = Selection.gsp p in
  let a = Allocation.create ~capacity:80. in
  let b = Allocation.deploy a in
  Allocation.place a b ~topic:0 ~ev:20. ~subscribers:[| 0; 1 |] ~from:0 ~count:2;
  Allocation.place a b ~topic:1 ~ev:10. ~subscribers:[| 0; 1; 2 |] ~from:0 ~count:3;
  (* Subscriber 2 never selected topic 0 — smuggle the pair in. *)
  let b2 = Allocation.deploy a in
  Allocation.place a b2 ~topic:0 ~ev:20. ~subscribers:[| 2 |] ~from:0 ~count:1;
  let report = Verifier.verify p s a in
  Helpers.check_bool "foreign pair flagged" true
    (has (function Verifier.Pair_not_selected { topic = 0; subscriber = 2 } -> true | _ -> false)
       report)

let test_detects_duplicate_pair () =
  let p = Helpers.fig1_problem () in
  let s = Selection.gsp p in
  let a = Allocation.create ~capacity:80. in
  let b0 = Allocation.deploy a in
  Allocation.place a b0 ~topic:0 ~ev:20. ~subscribers:[| 0; 1 |] ~from:0 ~count:2;
  Allocation.place a b0 ~topic:1 ~ev:10. ~subscribers:[| 0; 1; 2 |] ~from:0 ~count:3;
  let b1 = Allocation.deploy a in
  (* (t1, v2) again, on another VM. *)
  Allocation.place a b1 ~topic:1 ~ev:10. ~subscribers:[| 2 |] ~from:0 ~count:1;
  let report = Verifier.verify p s a in
  Helpers.check_bool "duplicate flagged" true
    (has (function Verifier.Pair_duplicated { topic = 1; subscriber = 2 } -> true | _ -> false)
       report)

let test_pp_violation_renders () =
  let s =
    Format.asprintf "%a" Verifier.pp_violation
      (Verifier.Unsatisfied { subscriber = 3; delivered = 1.; required = 2. })
  in
  Helpers.check_bool "mentions subscriber" true (Helpers.contains ~needle:"subscriber 3" s)

let test_check_exn () =
  let p = Helpers.fig1_problem () in
  let s = Selection.gsp p in
  let a = Allocation.create ~capacity:80. in
  (match Verifier.check_exn p s a with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
      Helpers.check_bool "message mentions violations" true
        (Helpers.contains ~needle:"violation" msg));
  let r = Solver.solve p in
  ignore (Verifier.check_exn p r.Solver.selection r.Solver.allocation)

let prop_solver_output_always_verifies =
  Helpers.qtest ~count:150 "Solver output is always verifier-clean (all configs)"
    Helpers.problem_arbitrary (fun p ->
      List.for_all
        (fun (_, config) ->
          let r = Solver.solve ~config p in
          Verifier.is_valid (Verifier.verify p r.Solver.selection r.Solver.allocation))
        Solver.ladder)

let suite =
  [
    Alcotest.test_case "clean solution valid" `Quick test_clean_solution_is_valid;
    Alcotest.test_case "detects missing pair" `Quick test_detects_missing_pair;
    Alcotest.test_case "detects over capacity" `Quick test_detects_over_capacity;
    Alcotest.test_case "detects foreign pair" `Quick test_detects_foreign_pair;
    Alcotest.test_case "detects duplicate pair" `Quick test_detects_duplicate_pair;
    Alcotest.test_case "pp_violation renders" `Quick test_pp_violation_renders;
    Alcotest.test_case "check_exn" `Quick test_check_exn;
    prop_solver_output_always_verifies;
  ]
