(* Tests for the extension modules: the global cross-subscriber Stage-1
   selector, the textbook packing baselines, allocation mutation support,
   and simulator failure injection. *)

module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Selection = Mcss_core.Selection
module Allocation = Mcss_core.Allocation
module Verifier = Mcss_core.Verifier
module Solver = Mcss_core.Solver
module Global_greedy = Mcss_core.Global_greedy
module Baselines = Mcss_core.Baselines
module Vec = Mcss_core.Vec
module Simulator = Mcss_sim.Simulator

(* ----- Global_greedy ----- *)

let test_global_greedy_shares_topics () =
  (* Three subscribers share topic 0 (rate 30); each also has a private
     topic of rate 30. tau = 30. Per-subscriber GSP is indifferent (all
     single picks cover), but the global view prefers the shared topic,
     selecting it for everyone. *)
  let w =
    Helpers.workload
      ~rates:[ 30.; 30.; 30.; 30. ]
      ~interests:[ [ 0; 1 ]; [ 0; 2 ]; [ 0; 3 ] ]
  in
  let p = Problem.create ~workload:w ~tau:30. ~capacity:1000. Problem.unit_costs in
  let s = Global_greedy.select p in
  Alcotest.(check (list (list int)))
    "everyone on the shared topic"
    [ [ 0 ]; [ 0 ]; [ 0 ] ]
    (Array.to_list (Array.map Array.to_list s.Selection.chosen));
  Helpers.check_bool "satisfies" true (Selection.satisfies p s)

let prop_global_greedy_satisfies =
  Helpers.qtest ~count:120 "global greedy always satisfies" Helpers.problem_arbitrary
    (fun p ->
      let s = Global_greedy.select p in
      Selection.satisfies p s)

let prop_global_greedy_packs_validly =
  Helpers.qtest ~count:80 "global greedy + CBP passes the verifier"
    Helpers.problem_arbitrary (fun p ->
      let config =
        { Solver.stage1 = Solver.Global_greedy; stage2 = Solver.Cbp Mcss_core.Cbp.with_cost_decision }
      in
      let r = Solver.solve ~config p in
      Verifier.is_valid (Verifier.verify p r.Solver.selection r.Solver.allocation))

let prop_global_greedy_chooses_interests =
  Helpers.qtest "global greedy only picks real interests, without duplicates"
    Helpers.problem_arbitrary (fun p ->
      let w = p.Problem.workload in
      let s = Global_greedy.select p in
      let ok = ref true in
      Array.iteri
        (fun v chosen ->
          let tv = Workload.interests w v in
          Array.iter (fun t -> if not (Array.mem t tv) then ok := false) chosen;
          for i = 1 to Array.length chosen - 1 do
            if chosen.(i) = chosen.(i - 1) then ok := false
          done)
        s.Selection.chosen;
      !ok)

(* ----- Baselines ----- *)

let prop_baseline_packers_valid =
  Helpers.qtest ~count:100 "next-fit and BFD produce verifier-clean allocations"
    Helpers.problem_arbitrary (fun p ->
      let s = Selection.gsp p in
      let nf = Baselines.next_fit p s in
      let bfd = Baselines.best_fit_decreasing p s in
      Verifier.is_valid (Verifier.verify p s nf)
      && Verifier.is_valid (Verifier.verify p s bfd))

let test_next_fit_never_looks_back () =
  (* Pairs of the same topic interleave; next-fit only ever considers the
     latest VM, so it uses at least as many VMs as first-fit. *)
  let rng = Mcss_prng.Rng.create 17 in
  let p =
    Helpers.random_problem rng ~num_topics:30 ~num_subscribers:60 ~max_rate:20
      ~max_interests:6 ~tau:40. ~capacity:120.
  in
  let s = Selection.gsp p in
  let nf = Baselines.next_fit p s in
  let ff = Mcss_core.Ffbp.run p s in
  Helpers.check_bool "NF uses >= FF VMs" true
    (Allocation.num_vms nf >= Allocation.num_vms ff)

let test_bfd_prefers_tightest () =
  (* One big topic fills VM0 partially; a small topic then has the choice
     between VM0 (tight) and nothing else — BFD must reuse VM0. *)
  let w = Helpers.workload ~rates:[ 40.; 10. ] ~interests:[ [ 0 ]; [ 1 ] ] in
  let p = Problem.create ~workload:w ~tau:40. ~capacity:120. Problem.unit_costs in
  let s = Selection.gsp p in
  let a = Baselines.best_fit_decreasing p s in
  Helpers.check_int "one VM" 1 (Allocation.num_vms a)

let test_baselines_infeasible () =
  let w = Helpers.workload ~rates:[ 100. ] ~interests:[ [ 0 ] ] in
  let p = Problem.create ~workload:w ~tau:10. ~capacity:50. Problem.unit_costs in
  let s = Selection.gsp p in
  (match Baselines.next_fit p s with
  | _ -> Alcotest.fail "next-fit: expected Infeasible"
  | exception Problem.Infeasible _ -> ());
  match Baselines.best_fit_decreasing p s with
  | _ -> Alcotest.fail "bfd: expected Infeasible"
  | exception Problem.Infeasible _ -> ()

(* ----- Allocation mutation support ----- *)

let test_remove_pair () =
  let a = Allocation.create ~capacity:100. in
  let b = Allocation.deploy a in
  Allocation.place a b ~topic:0 ~ev:10. ~subscribers:[| 1; 2 |] ~from:0 ~count:2;
  Helpers.check_float "load before" 30. (Allocation.load b);
  Helpers.check_bool "removed" true (Allocation.remove a b ~topic:0 ~ev:10. ~subscriber:1);
  Helpers.check_float "outgoing freed" 20. (Allocation.load b);
  Helpers.check_bool "still hosts" true (Allocation.hosts_topic b 0);
  Helpers.check_bool "last pair frees incoming" true
    (Allocation.remove a b ~topic:0 ~ev:10. ~subscriber:2);
  Helpers.check_float "empty" 0. (Allocation.load b);
  Helpers.check_bool "topic gone" false (Allocation.hosts_topic b 0);
  Helpers.check_bool "absent pair" false (Allocation.remove a b ~topic:0 ~ev:10. ~subscriber:7)

let test_rebuild_loads () =
  let a = Allocation.create ~capacity:1000. in
  let b = Allocation.deploy a in
  Allocation.place a b ~topic:0 ~ev:10. ~subscribers:[| 1; 2 |] ~from:0 ~count:2;
  Allocation.place a b ~topic:1 ~ev:5. ~subscribers:[| 1 |] ~from:0 ~count:1;
  Helpers.check_float "initial" 40. (Allocation.load b);
  (* Topic 0 doubles, topic 1 triples. *)
  Allocation.rebuild_loads a ~event_rates:[| 20.; 15. |];
  Helpers.check_float "repriced" 90. (Allocation.load b)

let test_compact () =
  let a = Allocation.create ~capacity:100. in
  let b0 = Allocation.deploy a in
  let _empty = Allocation.deploy a in
  let b2 = Allocation.deploy a in
  Allocation.place a b0 ~topic:0 ~ev:10. ~subscribers:[| 1 |] ~from:0 ~count:1;
  Allocation.place a b2 ~topic:1 ~ev:5. ~subscribers:[| 2 |] ~from:0 ~count:1;
  let fresh, mapping = Allocation.compact a in
  Helpers.check_int "two survivors" 2 (Allocation.num_vms fresh);
  Alcotest.(check (array int)) "mapping" [| 0; -1; 1 |] mapping;
  Helpers.check_float "loads preserved" 30. (Allocation.total_load fresh)

let test_find_pair_vm () =
  let a = Allocation.create ~capacity:100. in
  let b0 = Allocation.deploy a in
  let b1 = Allocation.deploy a in
  Allocation.place a b0 ~topic:0 ~ev:10. ~subscribers:[| 1 |] ~from:0 ~count:1;
  Allocation.place a b1 ~topic:0 ~ev:10. ~subscribers:[| 2 |] ~from:0 ~count:1;
  (match Allocation.find_pair_vm a ~topic:0 ~subscriber:2 with
  | Some vm -> Helpers.check_int "found on b1" 1 (Allocation.vm_id vm)
  | None -> Alcotest.fail "pair not found");
  Helpers.check_bool "missing pair" true (Allocation.find_pair_vm a ~topic:1 ~subscriber:1 = None)

(* ----- Vec mutation support ----- *)

let test_vec_swap_remove () =
  let v = Vec.of_array [| 10; 20; 30; 40 |] in
  Vec.swap_remove v 1;
  Alcotest.(check (list int)) "last moved in" [ 10; 40; 30 ] (Vec.to_list v);
  Vec.swap_remove v 2;
  Alcotest.(check (list int)) "remove last" [ 10; 40 ] (Vec.to_list v)

let test_vec_find_index () =
  let v = Vec.of_array [| 5; 6; 7 |] in
  Alcotest.(check (option int)) "found" (Some 1) (Vec.find_index (fun x -> x = 6) v);
  Alcotest.(check (option int)) "absent" None (Vec.find_index (fun x -> x = 9) v)

(* ----- Failure injection ----- *)

let test_outage_loses_exactly_the_window () =
  let p = Helpers.fig1_problem ~capacity:50. () in
  let r = Solver.solve p in
  (* Crash VM 0 for the second half of the horizon. *)
  let config =
    {
      Simulator.default_config with
      Simulator.outages =
        [ Simulator.outage ~vm:0 ~from_time:0.5 ~until_time:infinity () ];
    }
  in
  let res = Simulator.run p r.Solver.allocation config in
  let healthy = Simulator.run p r.Solver.allocation Simulator.default_config in
  (* Global publication count is unaffected. *)
  Helpers.check_int "same publications" healthy.Simulator.events_published
    res.Simulator.events_published;
  (* Someone lost roughly half their events. *)
  let total_lost = Array.fold_left ( + ) 0 res.Simulator.lost in
  Helpers.check_bool "events were lost" true (total_lost > 0);
  (* delivered + lost = healthy delivered, per subscriber. *)
  Array.iteri
    (fun v d ->
      Helpers.check_int
        (Printf.sprintf "conservation for v%d" v)
        healthy.Simulator.delivered.(v)
        (d + res.Simulator.lost.(v)))
    res.Simulator.delivered;
  (* The satisfaction check now flags the victims. *)
  let c = Simulator.check p r.Solver.allocation res ~tolerance:0. in
  Helpers.check_bool "under-delivery flagged" true (c.Simulator.unsatisfied <> [])

let test_outage_with_recovery () =
  let p = Helpers.fig1_problem ~capacity:50. () in
  let r = Solver.solve p in
  let brief =
    {
      Simulator.default_config with
      Simulator.outages = [ Simulator.outage ~vm:0 ~from_time:0.4 ~until_time:0.6 () ];
    }
  in
  let long =
    {
      Simulator.default_config with
      Simulator.outages = [ Simulator.outage ~vm:0 ~from_time:0.2 ~until_time:0.9 () ];
    }
  in
  let lost cfg =
    let res = Simulator.run p r.Solver.allocation cfg in
    Array.fold_left ( + ) 0 res.Simulator.lost
  in
  Helpers.check_bool "longer outage loses more" true (lost long > lost brief);
  Helpers.check_int "no outage loses nothing" 0 (lost Simulator.default_config)

let test_outage_on_unknown_vm_rejected () =
  let p = Helpers.fig1_problem ~capacity:50. () in
  let r = Solver.solve p in
  let config =
    {
      Simulator.default_config with
      Simulator.outages =
        [ Simulator.outage ~vm:99 ~from_time:0. ~until_time:infinity () ];
    }
  in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Simulator.run: outage vm 99 out of range (fleet has 3 VMs)")
    (fun () -> ignore (Simulator.run p r.Solver.allocation config))

let test_outage_inverted_window_rejected () =
  let p = Helpers.fig1_problem ~capacity:50. () in
  let r = Solver.solve p in
  let config =
    {
      Simulator.default_config with
      Simulator.outages = [ Simulator.outage ~vm:0 ~from_time:0.8 ~until_time:0.2 () ];
    }
  in
  Alcotest.check_raises "inverted"
    (Invalid_argument "Simulator.run: outage on vm 0 has inverted window (0.8 > 0.2)")
    (fun () -> ignore (Simulator.run p r.Solver.allocation config))

let test_outage_bad_severity_rejected () =
  let p = Helpers.fig1_problem ~capacity:50. () in
  let r = Solver.solve p in
  let with_severity s =
    {
      Simulator.default_config with
      Simulator.outages =
        [ Simulator.outage ~severity:s ~vm:0 ~from_time:0.2 ~until_time:0.8 () ];
    }
  in
  Alcotest.check_raises "zero"
    (Invalid_argument "Simulator.run: outage on vm 0 has severity 0 outside (0, 1]")
    (fun () -> ignore (Simulator.run p r.Solver.allocation (with_severity 0.)));
  Alcotest.check_raises "above one"
    (Invalid_argument "Simulator.run: outage on vm 0 has severity 1.5 outside (0, 1]")
    (fun () -> ignore (Simulator.run p r.Solver.allocation (with_severity 1.5)))

let suite =
  [
    Alcotest.test_case "global greedy shares topics" `Quick test_global_greedy_shares_topics;
    prop_global_greedy_satisfies;
    prop_global_greedy_packs_validly;
    prop_global_greedy_chooses_interests;
    prop_baseline_packers_valid;
    Alcotest.test_case "next-fit never looks back" `Quick test_next_fit_never_looks_back;
    Alcotest.test_case "bfd prefers tightest" `Quick test_bfd_prefers_tightest;
    Alcotest.test_case "baselines infeasible" `Quick test_baselines_infeasible;
    Alcotest.test_case "remove pair" `Quick test_remove_pair;
    Alcotest.test_case "rebuild loads" `Quick test_rebuild_loads;
    Alcotest.test_case "compact" `Quick test_compact;
    Alcotest.test_case "find pair vm" `Quick test_find_pair_vm;
    Alcotest.test_case "vec swap_remove" `Quick test_vec_swap_remove;
    Alcotest.test_case "vec find_index" `Quick test_vec_find_index;
    Alcotest.test_case "outage loses the window" `Quick test_outage_loses_exactly_the_window;
    Alcotest.test_case "outage with recovery" `Quick test_outage_with_recovery;
    Alcotest.test_case "outage on unknown vm rejected" `Quick
      test_outage_on_unknown_vm_rejected;
    Alcotest.test_case "outage inverted window rejected" `Quick
      test_outage_inverted_window_rejected;
    Alcotest.test_case "outage bad severity rejected" `Quick
      test_outage_bad_severity_rejected;
  ]
