(* End-to-end checks pinned to the paper's own worked numbers: the Fig. 1
   workload, the NP-hardness construction, and the documented behaviour of
   the optimisation ladder on a trace-shaped instance. *)

module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Selection = Mcss_core.Selection
module Allocation = Mcss_core.Allocation
module Solver = Mcss_core.Solver
module Verifier = Mcss_core.Verifier
module Lower_bound = Mcss_core.Lower_bound
module Spotify = Mcss_traces.Spotify

(* Fig. 1 (§III-B): topics at 20 and 10 KB/min (1 KB messages, so rates
   20 and 10), tau = 30, five pairs. With BC = 50 the optimum is forced:
   each (t0, v) pair costs 40 alone, so t0 splits, and all of t1 shares
   one VM — 3 VMs, 120 KB/min total. Every ladder configuration finds it,
   and it matches the exact optimum. *)
let test_fig1_all_configs_reach_forced_optimum () =
  let p = Helpers.fig1_problem ~capacity:50. () in
  List.iter
    (fun (name, config) ->
      let r = Solver.solve ~config p in
      if r.Solver.num_vms <> 3 || Float.abs (r.Solver.bandwidth -. 120.) > 1e-9 then
        Alcotest.failf "%s: got %d VMs / %g bandwidth" name r.Solver.num_vms
          r.Solver.bandwidth)
    Solver.ladder;
  match Mcss_exact.Brute.solve p with
  | None -> Alcotest.fail "exact refused fig1"
  | Some ex -> Helpers.check_float "heuristic = exact here" 3. ex.Mcss_exact.Brute.cost

(* The same workload with BC = 80 leaves room for choices; the section-III
   argument that grouping pairs of one topic reduces incoming bandwidth
   translates to: CBP's bandwidth <= FFBP's. *)
let test_fig1_grouping_saves_bandwidth () =
  let w =
    Helpers.workload ~rates:[ 20.; 10. ]
      ~interests:[ [ 0; 1 ]; [ 0; 1 ]; [ 0; 1 ]; [ 0; 1 ]; [ 1 ] ]
  in
  let p = Problem.create ~workload:w ~tau:30. ~capacity:100. Problem.unit_costs in
  let s = Selection.gsp p in
  let ff = Mcss_core.Ffbp.run p s in
  let cb = Mcss_core.Cbp.run p s Mcss_core.Cbp.with_most_free in
  Helpers.check_bool "CBP <= FFBP bandwidth" true
    (Allocation.total_load cb <= Allocation.total_load ff);
  ignore (Verifier.check_exn p s ff);
  ignore (Verifier.check_exn p s cb)

(* Theorem II.2's worked construction: doubling every input value leaves
   the reduced instance equivalent. *)
let test_reduction_scale_invariance () =
  let base = [| 3; 1; 1; 2; 2; 1 |] in
  let doubled = Array.map (fun x -> 2 * x) base in
  let answer xs =
    Mcss_exact.Brute.dcss (Mcss_exact.Partition.reduce xs)
      ~threshold:Mcss_exact.Partition.dcss_cost_threshold
  in
  Helpers.check_bool "same answer" true (answer base = answer doubled)

(* §IV-C's qualitative claims on a (small) Spotify-like trace:
   - GSP+FFBP is cheaper than RSP+FFBP;
   - the full ladder is cheaper than GSP+FFBP;
   - the lower bound is below everything;
   - savings shrink as tau grows. *)
let test_ladder_shape_on_spotify_trace () =
  let w = Spotify.generate { (Spotify.scaled 0.002) with Spotify.seed = 9 } in
  let model = Mcss_pricing.Cost_model.ec2_2014 () in
  let run tau config =
    let p = Problem.of_pricing ~capacity_events:200_000. ~workload:w ~tau model in
    (Solver.solve ~config p, p)
  in
  let cost tau config = (fst (run tau config)).Solver.cost in
  let naive10 = cost 10. Solver.naive in
  let gsp10 = cost 10. { Solver.stage1 = Solver.Gsp; stage2 = Solver.Ffbp } in
  let full10 = cost 10. Solver.default in
  Helpers.check_bool "GSP beats RSP (tau=10)" true (gsp10 < naive10);
  Helpers.check_bool "full ladder beats GSP+FFBP (tau=10)" true (full10 <= gsp10);
  let r10, p10 = run 10. Solver.default in
  let lb10 = Lower_bound.compute p10 in
  Helpers.check_bool "LB below heuristic" true (lb10.Lower_bound.cost <= r10.Solver.cost);
  (* Relative saving shrinks with tau (the paper's Figs. 2-3 trend). *)
  let saving tau =
    let naive = cost tau Solver.naive in
    (naive -. cost tau Solver.default) /. naive
  in
  Helpers.check_bool "saving(10) > saving(1000)" true (saving 10. > saving 1000.)

let suite =
  [
    Alcotest.test_case "fig1: all configs reach forced optimum" `Quick
      test_fig1_all_configs_reach_forced_optimum;
    Alcotest.test_case "fig1: grouping saves bandwidth" `Quick
      test_fig1_grouping_saves_bandwidth;
    Alcotest.test_case "reduction scale invariance" `Quick test_reduction_scale_invariance;
    Alcotest.test_case "ladder shape on spotify trace" `Slow
      test_ladder_shape_on_spotify_trace;
  ]
