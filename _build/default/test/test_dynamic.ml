(* Tests for workload deltas and incremental re-provisioning. *)

module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Selection = Mcss_core.Selection
module Allocation = Mcss_core.Allocation
module Verifier = Mcss_core.Verifier
module Delta = Mcss_dynamic.Delta
module Reprovision = Mcss_dynamic.Reprovision

let base () =
  Helpers.workload ~rates:[ 20.; 10.; 5. ] ~interests:[ [ 0; 1 ]; [ 1; 2 ]; [ 2 ] ]

let test_apply_subscribe () =
  let w = Delta.apply (base ()) [ Delta.Subscribe { subscriber = 2; topic = 0 } ] in
  Alcotest.(check (array int)) "added" [| 0; 2 |] (Workload.interests w 2);
  Helpers.check_int "pairs" 6 (Workload.num_pairs w)

let test_apply_unsubscribe () =
  let w = Delta.apply (base ()) [ Delta.Unsubscribe { subscriber = 0; topic = 1 } ] in
  Alcotest.(check (array int)) "removed" [| 0 |] (Workload.interests w 0)

let test_apply_rate_change () =
  let w = Delta.apply (base ()) [ Delta.Rate_change { topic = 1; rate = 99. } ] in
  Helpers.check_float "changed" 99. (Workload.event_rate w 1);
  Helpers.check_float "others untouched" 20. (Workload.event_rate w 0)

let test_apply_new_topic_and_subscriber () =
  let w =
    Delta.apply (base ())
      [
        Delta.New_topic { rate = 7. };
        Delta.New_subscriber { interests = [| 3; 0 |] };
        Delta.Subscribe { subscriber = 3; topic = 1 };
      ]
  in
  Helpers.check_int "topics" 4 (Workload.num_topics w);
  Helpers.check_int "subscribers" 4 (Workload.num_subscribers w);
  Helpers.check_float "new rate" 7. (Workload.event_rate w 3);
  Alcotest.(check (array int)) "new subscriber" [| 0; 1; 3 |] (Workload.interests w 3)

let test_apply_order_sensitive () =
  (* A topic introduced in the batch can be referenced later in it. *)
  let w =
    Delta.apply (base ())
      [ Delta.New_topic { rate = 3. }; Delta.Subscribe { subscriber = 0; topic = 3 } ]
  in
  Alcotest.(check (array int)) "uses fresh id" [| 0; 1; 3 |] (Workload.interests w 0)

let expect_invalid name deltas =
  match Delta.apply (base ()) deltas with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_apply_rejects () =
  expect_invalid "double subscribe" [ Delta.Subscribe { subscriber = 0; topic = 0 } ];
  expect_invalid "unsubscribe unheld" [ Delta.Unsubscribe { subscriber = 0; topic = 2 } ];
  expect_invalid "bad topic" [ Delta.Subscribe { subscriber = 0; topic = 9 } ];
  expect_invalid "bad subscriber" [ Delta.Subscribe { subscriber = 9; topic = 0 } ];
  expect_invalid "zero rate" [ Delta.Rate_change { topic = 0; rate = 0. } ];
  expect_invalid "future id" [ Delta.Subscribe { subscriber = 0; topic = 3 } ]

let test_pp () =
  let s = Format.asprintf "%a" Delta.pp (Delta.Rate_change { topic = 3; rate = 5. }) in
  Helpers.check_bool "renders" true (Helpers.contains ~needle:"rate(3" s)

let problem_for w =
  Problem.create ~workload:w ~tau:25. ~capacity:120.
    (Problem.linear_costs ~vm_usd:10. ~per_event_usd:0.001)

let valid_plan (plan : Reprovision.plan) =
  Verifier.is_valid
    (Verifier.verify plan.Reprovision.problem plan.Reprovision.selection
       plan.Reprovision.allocation)

let test_noop_reprovision_zero_churn () =
  let p = problem_for (base ()) in
  let plan = Reprovision.initial p in
  let plan', stats = Reprovision.reprovision ~previous:plan p in
  Helpers.check_bool "valid" true (valid_plan plan');
  Helpers.check_int "nothing added" 0 stats.Reprovision.pairs_added;
  Helpers.check_int "nothing removed" 0 stats.Reprovision.pairs_removed;
  Helpers.check_int "nothing evicted" 0 stats.Reprovision.pairs_evicted;
  Helpers.check_float "same cost" (Reprovision.cost plan) (Reprovision.cost plan')

let test_subscribe_reprovision () =
  let w = base () in
  let p = problem_for w in
  let plan = Reprovision.initial p in
  let w' = Delta.apply w [ Delta.Subscribe { subscriber = 2; topic = 0 } ] in
  let p' = problem_for w' in
  let plan', stats = Reprovision.reprovision ~previous:plan p' in
  Helpers.check_bool "valid" true (valid_plan plan');
  (* Subscriber 2's tau_v rose from 5 to 25, so it needs more pairs. *)
  Helpers.check_bool "pairs were added" true (stats.Reprovision.pairs_added > 0);
  Helpers.check_bool "old pairs kept in place" true (stats.Reprovision.pairs_kept > 0)

let test_rate_increase_forces_eviction () =
  (* Tight capacity, then triple one topic's rate: its VM must overflow
     and shed pairs. *)
  let w = Helpers.workload ~rates:[ 30.; 30. ] ~interests:[ [ 0 ]; [ 0 ]; [ 1 ] ] in
  let tight tau w = Problem.create ~workload:w ~tau ~capacity:130. Problem.unit_costs in
  let p = tight 30. w in
  let plan = Reprovision.initial p in
  let w' = Delta.apply w [ Delta.Rate_change { topic = 0; rate = 60. } ] in
  let p' = tight 30. w' in
  let plan', stats = Reprovision.reprovision ~previous:plan p' in
  Helpers.check_bool "valid after eviction" true (valid_plan plan');
  Helpers.check_bool "something moved" true
    (stats.Reprovision.pairs_evicted > 0 || stats.Reprovision.vms_added > 0)

let test_unsubscribe_can_shrink_fleet () =
  let w = Helpers.workload ~rates:[ 50.; 50. ] ~interests:[ [ 0 ]; [ 1 ] ] in
  let problem w = Problem.create ~workload:w ~tau:50. ~capacity:110. Problem.unit_costs in
  let plan = Reprovision.initial (problem w) in
  Helpers.check_int "two VMs initially" 2 (Allocation.num_vms plan.Reprovision.allocation);
  let w' = Delta.apply w [ Delta.Unsubscribe { subscriber = 1; topic = 1 } ] in
  let plan', stats = Reprovision.reprovision ~previous:plan (problem w') in
  Helpers.check_bool "valid" true (valid_plan plan');
  Helpers.check_int "one VM dropped" 1 stats.Reprovision.vms_removed;
  Helpers.check_int "fleet shrank" 1 (Allocation.num_vms plan'.Reprovision.allocation)

(* Random delta streams: every intermediate plan must verify, and churn
   must stay no larger than the full pair population. *)
let delta_stream_gen =
  QCheck.Gen.(
    let* seed = int_bound 1_000_000 in
    let* steps = int_range 1 6 in
    return (seed, steps))

let random_delta rng w =
  let open Mcss_prng in
  let nt = Workload.num_topics w and ns = Workload.num_subscribers w in
  match Rng.int rng 5 with
  | 0 -> Delta.New_topic { rate = float_of_int (1 + Rng.int rng 30) }
  | 1 ->
      let k = 1 + Rng.int rng (min 4 nt) in
      Delta.New_subscriber { interests = Rng.sample_without_replacement rng k nt }
  | 2 ->
      let topic = Rng.int rng nt in
      Delta.Rate_change { topic; rate = float_of_int (1 + Rng.int rng 40) }
  | 3 ->
      (* Find a (subscriber, unheld topic) pair if one exists. *)
      let v = Rng.int rng ns in
      let held = Workload.interests w v in
      let candidates =
        List.filter (fun t -> not (Array.mem t held)) (List.init nt (fun t -> t))
      in
      (match candidates with
      | [] -> Delta.New_topic { rate = 5. }
      | _ -> Delta.Subscribe { subscriber = v; topic = List.nth candidates (Rng.int rng (List.length candidates)) })
  | _ ->
      let v = Rng.int rng ns in
      let held = Workload.interests w v in
      if Array.length held <= 1 then Delta.New_topic { rate = 5. }
      else Delta.Unsubscribe { subscriber = v; topic = held.(Rng.int rng (Array.length held)) }

let prop_reprovision_always_valid =
  Helpers.qtest ~count:60 "incremental plans verify across random delta streams"
    (QCheck.make delta_stream_gen ~print:(fun (seed, steps) ->
         Printf.sprintf "seed=%d steps=%d" seed steps))
    (fun (seed, steps) ->
      let rng = Mcss_prng.Rng.create seed in
      let w =
        ref (Helpers.random_workload rng ~num_topics:12 ~num_subscribers:15 ~max_rate:20
               ~max_interests:4)
      in
      let problem w = Problem.create ~workload:w ~tau:30. ~capacity:200. Problem.unit_costs in
      let plan = ref (Reprovision.initial (problem !w)) in
      let ok = ref (valid_plan !plan) in
      for _ = 1 to steps do
        if !ok then begin
          let delta = random_delta rng !w in
          w := Delta.apply !w [ delta ];
          let plan', _stats = Reprovision.reprovision ~previous:!plan (problem !w) in
          plan := plan';
          ok := valid_plan plan'
        end
      done;
      !ok)

let prop_reprovision_cost_tracks_cold_solve =
  Helpers.qtest ~count:40 "incremental cost stays within 2x of a cold solve"
    (QCheck.make delta_stream_gen ~print:(fun (seed, steps) ->
         Printf.sprintf "seed=%d steps=%d" seed steps))
    (fun (seed, steps) ->
      let rng = Mcss_prng.Rng.create (seed + 7) in
      let w =
        ref (Helpers.random_workload rng ~num_topics:12 ~num_subscribers:15 ~max_rate:20
               ~max_interests:4)
      in
      let problem w = Problem.create ~workload:w ~tau:30. ~capacity:200. Problem.unit_costs in
      let plan = ref (Reprovision.initial (problem !w)) in
      for _ = 1 to steps do
        let delta = random_delta rng !w in
        w := Delta.apply !w [ delta ];
        let plan', _ = Reprovision.reprovision ~previous:!plan (problem !w) in
        plan := plan'
      done;
      let cold = Mcss_core.Solver.solve (problem !w) in
      Reprovision.cost !plan <= (2. *. cold.Mcss_core.Solver.cost) +. 1e-9)

let prop_reprovision_idempotent =
  Helpers.qtest ~count:40 "a second reprovision against the same problem is a no-op"
    Helpers.problem_arbitrary (fun p ->
      let plan = Reprovision.initial p in
      let plan1, _ = Reprovision.reprovision ~previous:plan p in
      let plan2, stats = Reprovision.reprovision ~previous:plan1 p in
      stats.Reprovision.pairs_added = 0
      && stats.Reprovision.pairs_removed = 0
      && stats.Reprovision.pairs_evicted = 0
      && Float.abs (Reprovision.cost plan2 -. Reprovision.cost plan1) < 1e-9)

let test_consolidate_drains_fragmented_fleet () =
  (* Hand-build a fragmented plan: three half-empty VMs that fit in two. *)
  let w =
    Helpers.workload ~rates:[ 10.; 10.; 10. ] ~interests:[ [ 0 ]; [ 1 ]; [ 2 ] ]
  in
  let p = problem_for w in
  (* capacity 120: each single-pair VM carries 20. *)
  let a = Allocation.create ~capacity:120. in
  List.iteri
    (fun i topic ->
      let vm = Allocation.deploy a in
      Allocation.place a vm ~topic ~ev:10. ~subscribers:[| i |] ~from:0 ~count:1)
    [ 0; 1; 2 ];
  let selection = Mcss_core.Selection.gsp p in
  let plan = { Reprovision.problem = p; selection; allocation = a } in
  let plan', stats = Reprovision.consolidate plan in
  Helpers.check_bool "fewer VMs" true
    (Allocation.num_vms plan'.Reprovision.allocation < 3);
  Helpers.check_bool "drained counted" true (stats.Reprovision.vms_removed >= 1);
  Helpers.check_bool "moves counted" true (stats.Reprovision.pairs_evicted >= 1);
  Helpers.check_bool "still valid" true (valid_plan plan');
  (* The input plan was not mutated. *)
  Helpers.check_int "input untouched" 3 (Allocation.num_vms a)

let test_consolidate_respects_move_budget () =
  let w =
    Helpers.workload ~rates:[ 10.; 10.; 10. ] ~interests:[ [ 0 ]; [ 1 ]; [ 2 ] ]
  in
  let p = problem_for w in
  let a = Allocation.create ~capacity:120. in
  List.iteri
    (fun i topic ->
      let vm = Allocation.deploy a in
      Allocation.place a vm ~topic ~ev:10. ~subscribers:[| i |] ~from:0 ~count:1)
    [ 0; 1; 2 ];
  let selection = Mcss_core.Selection.gsp p in
  let plan = { Reprovision.problem = p; selection; allocation = a } in
  let _, stats = Reprovision.consolidate ~max_moves:0 plan in
  Helpers.check_int "nothing moved" 0 stats.Reprovision.pairs_evicted

let prop_consolidate_preserves_validity =
  Helpers.qtest ~count:50 "consolidation keeps plans valid and never grows the fleet"
    Helpers.problem_arbitrary (fun p ->
      let plan = Reprovision.initial p in
      let before = Allocation.num_vms plan.Reprovision.allocation in
      let plan', _ = Reprovision.consolidate plan in
      valid_plan plan' && Allocation.num_vms plan'.Reprovision.allocation <= before)

let test_solution_stats () =
  let module S = Mcss_core.Solution_stats in
  let p = Helpers.fig1_problem ~capacity:50. () in
  let r = Mcss_core.Solver.solve p in
  let s = S.compute p r.Mcss_core.Solver.allocation in
  Helpers.check_int "vms" 3 s.S.num_vms;
  Helpers.check_int "topics placed" 2 s.S.topics_placed;
  (* Topic 0's two pairs cannot share a VM at BC=50: it must be split. *)
  Helpers.check_int "topics split" 1 s.S.topics_split;
  Helpers.check_int "worst spread" 2 s.S.max_topic_spread;
  Helpers.check_float "overhead = one extra t0 stream" 20. s.S.incoming_overhead;
  Helpers.check_bool "utilizations bounded" true
    (s.S.max_utilization <= 1. +. 1e-9 && s.S.min_utilization >= 0.);
  let rendered = Format.asprintf "%a" S.pp s in
  Helpers.check_bool "renders" true (Helpers.contains ~needle:"3 VMs" rendered)

let test_solution_stats_empty_fleet () =
  let module S = Mcss_core.Solution_stats in
  let p = Helpers.fig1_problem () in
  let s = S.compute p (Allocation.create ~capacity:50.) in
  Helpers.check_int "no vms" 0 s.S.num_vms;
  Helpers.check_float "no overhead" 0. s.S.overhead_fraction

let suite =
  [
    Alcotest.test_case "apply subscribe" `Quick test_apply_subscribe;
    Alcotest.test_case "apply unsubscribe" `Quick test_apply_unsubscribe;
    Alcotest.test_case "apply rate change" `Quick test_apply_rate_change;
    Alcotest.test_case "apply new topic/subscriber" `Quick test_apply_new_topic_and_subscriber;
    Alcotest.test_case "apply order sensitive" `Quick test_apply_order_sensitive;
    Alcotest.test_case "apply rejects" `Quick test_apply_rejects;
    Alcotest.test_case "delta pp" `Quick test_pp;
    Alcotest.test_case "no-op reprovision zero churn" `Quick test_noop_reprovision_zero_churn;
    Alcotest.test_case "subscribe reprovision" `Quick test_subscribe_reprovision;
    Alcotest.test_case "rate increase forces eviction" `Quick
      test_rate_increase_forces_eviction;
    Alcotest.test_case "unsubscribe shrinks fleet" `Quick test_unsubscribe_can_shrink_fleet;
    prop_reprovision_always_valid;
    prop_reprovision_cost_tracks_cold_solve;
    Alcotest.test_case "consolidate drains fragmented fleet" `Quick
      test_consolidate_drains_fragmented_fleet;
    Alcotest.test_case "consolidate respects move budget" `Quick
      test_consolidate_respects_move_budget;
    prop_consolidate_preserves_validity;
    prop_reprovision_idempotent;
    Alcotest.test_case "solution stats" `Quick test_solution_stats;
    Alcotest.test_case "solution stats empty fleet" `Quick test_solution_stats_empty_fleet;
  ]
