(* Tests for the least-squares fitting utilities. *)

module Fit = Mcss_workload.Fit
module Stats = Mcss_workload.Stats

let test_exact_line () =
  let points = [ (0., 1.); (1., 3.); (2., 5.); (3., 7.) ] in
  match Fit.linear_regression points with
  | None -> Alcotest.fail "fit failed"
  | Some r ->
      Helpers.check_float "slope" 2. r.Fit.slope;
      Helpers.check_float "intercept" 1. r.Fit.intercept;
      Helpers.check_float "r2" 1. r.Fit.r2

let test_degenerate_inputs () =
  Helpers.check_bool "one point" true (Fit.linear_regression [ (1., 1.) ] = None);
  Helpers.check_bool "vertical" true
    (Fit.linear_regression [ (1., 1.); (1., 2.) ] = None);
  (match Fit.linear_regression [ (0., 5.); (1., 5.) ] with
  | Some r ->
      Helpers.check_float "flat slope" 0. r.Fit.slope;
      Helpers.check_float "flat r2" 1. r.Fit.r2
  | None -> Alcotest.fail "flat line should fit")

let test_noisy_r2_below_one () =
  let points = [ (0., 0.); (1., 2.); (2., 1.); (3., 4.); (4., 3.) ] in
  match Fit.linear_regression points with
  | None -> Alcotest.fail "fit failed"
  | Some r -> Helpers.check_bool "r2 in (0,1)" true (r.Fit.r2 > 0. && r.Fit.r2 < 1.)

let test_loglog_drops_nonpositive () =
  (* y = x^-2 plus a zero point that the log transform must drop. *)
  let points = [ (1., 1.); (10., 0.01); (100., 0.0001); (1000., 0.) ] in
  match Fit.loglog_regression points with
  | None -> Alcotest.fail "fit failed"
  | Some r -> Helpers.check_float "slope -2" (-2.) r.Fit.slope

let test_powerlaw_exponent_exact () =
  let ccdf = List.init 20 (fun i -> let x = float_of_int (i + 1) in (x, x ** -1.5)) in
  match Fit.powerlaw_exponent_of_ccdf ccdf with
  | None -> Alcotest.fail "fit failed"
  | Some alpha -> Helpers.check_float "alpha" 1.5 alpha

let test_powerlaw_on_pareto_sample () =
  (* The CCDF of Pareto(scale, alpha) is (scale/x)^alpha: the fitted
     exponent on a big sample must come out near alpha. *)
  let rng = Mcss_prng.Rng.create 77 in
  let xs = Array.init 50_000 (fun _ -> Mcss_prng.Dist.pareto rng ~scale:1. ~alpha:1.8) in
  let ccdf = Stats.ccdf_float xs in
  match Fit.powerlaw_exponent_of_ccdf (Fit.thin_log ccdf) with
  | None -> Alcotest.fail "fit failed"
  | Some alpha ->
      if Float.abs (alpha -. 1.8) > 0.25 then
        Alcotest.failf "fitted alpha %.2f too far from 1.8" alpha

let test_pearson () =
  Helpers.check_float "perfect" 1. (Fit.pearson [| 1.; 2.; 3. |] [| 10.; 20.; 30. |]);
  Helpers.check_float "anti" (-1.) (Fit.pearson [| 1.; 2.; 3. |] [| 3.; 2.; 1. |]);
  Helpers.check_bool "no variance is nan" true
    (Float.is_nan (Fit.pearson [| 1.; 1. |] [| 1.; 2. |]));
  Alcotest.check_raises "mismatch" (Invalid_argument "Fit.pearson: length mismatch")
    (fun () -> ignore (Fit.pearson [| 1. |] [| 1.; 2. |]))

let test_thin_log () =
  let points = List.init 1000 (fun i -> (float_of_int (i + 1), 1.)) in
  let thinned = Fit.thin_log ~per_decade:5 points in
  Helpers.check_bool "much smaller" true (List.length thinned < 30);
  Helpers.check_bool "keeps first" true (List.hd thinned = (1., 1.));
  Helpers.check_bool "keeps last" true
    (List.nth thinned (List.length thinned - 1) = (1000., 1.));
  Alcotest.(check (list (pair (float 0.) (float 0.)))) "tiny lists pass through"
    [ (1., 2.) ] (Fit.thin_log [ (1., 2.) ])

let test_chi_square_statistic () =
  (* Known value: observed [10;20;30] vs expected [20;20;20]:
     (100 + 0 + 100) / 20 = 10. *)
  Helpers.check_float "statistic" 10.
    (Fit.chi_square ~observed:[| 10; 20; 30 |] ~expected:[| 20.; 20.; 20. |]);
  Alcotest.check_raises "mismatch" (Invalid_argument "Fit.chi_square: length mismatch")
    (fun () -> ignore (Fit.chi_square ~observed:[| 1 |] ~expected:[| 1.; 2. |]));
  Alcotest.check_raises "zero expected"
    (Invalid_argument "Fit.chi_square: expected counts must be positive") (fun () ->
      ignore (Fit.chi_square ~observed:[| 1 |] ~expected:[| 0. |]))

let test_chi_square_critical () =
  (* Table values: chi2_{0.99}(5) = 15.086, (10) = 23.209, (50) = 76.154. *)
  List.iter
    (fun (df, expected) ->
      let got = Fit.chi_square_critical_99 ~df in
      if Float.abs (got -. expected) /. expected > 0.01 then
        Alcotest.failf "df=%d: %.3f vs table %.3f" df got expected)
    [ (5, 15.086); (10, 23.209); (50, 76.154) ]

let test_uniform_sampler_passes_chi_square () =
  (* Rng.int over 20 buckets, 20k draws: must not reject at 1%. *)
  let g = Mcss_prng.Rng.create 2024 in
  let buckets = 20 in
  let n = 20_000 in
  let observed = Array.make buckets 0 in
  for _ = 1 to n do
    let i = Mcss_prng.Rng.int g buckets in
    observed.(i) <- observed.(i) + 1
  done;
  let expected = Array.make buckets (float_of_int n /. float_of_int buckets) in
  let stat = Fit.chi_square ~observed ~expected in
  let critical = Fit.chi_square_critical_99 ~df:(buckets - 1) in
  if stat > critical then
    Alcotest.failf "uniform sampler rejected: chi2 %.1f > %.1f" stat critical

let test_zipf_sampler_passes_chi_square () =
  let z = Mcss_prng.Dist.Zipf.create ~n:10 ~s:1.0 in
  let g = Mcss_prng.Rng.create 5150 in
  let n = 50_000 in
  let observed = Array.make 10 0 in
  for _ = 1 to n do
    let k = Mcss_prng.Dist.Zipf.sample z g in
    observed.(k - 1) <- observed.(k - 1) + 1
  done;
  let expected =
    Array.init 10 (fun i -> float_of_int n *. Mcss_prng.Dist.Zipf.prob z (i + 1))
  in
  let stat = Fit.chi_square ~observed ~expected in
  let critical = Fit.chi_square_critical_99 ~df:9 in
  if stat > critical then
    Alcotest.failf "zipf sampler rejected: chi2 %.1f > %.1f" stat critical

let suite =
  [
    Alcotest.test_case "exact line" `Quick test_exact_line;
    Alcotest.test_case "chi-square statistic" `Quick test_chi_square_statistic;
    Alcotest.test_case "chi-square critical values" `Quick test_chi_square_critical;
    Alcotest.test_case "uniform sampler vs chi-square" `Quick
      test_uniform_sampler_passes_chi_square;
    Alcotest.test_case "zipf sampler vs chi-square" `Quick
      test_zipf_sampler_passes_chi_square;
    Alcotest.test_case "degenerate inputs" `Quick test_degenerate_inputs;
    Alcotest.test_case "noisy r2 below one" `Quick test_noisy_r2_below_one;
    Alcotest.test_case "loglog drops nonpositive" `Quick test_loglog_drops_nonpositive;
    Alcotest.test_case "powerlaw exponent exact" `Quick test_powerlaw_exponent_exact;
    Alcotest.test_case "powerlaw on pareto sample" `Quick test_powerlaw_on_pareto_sample;
    Alcotest.test_case "pearson" `Quick test_pearson;
    Alcotest.test_case "thin_log" `Quick test_thin_log;
  ]
