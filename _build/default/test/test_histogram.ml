(* Tests for the histogram module. *)

module Histogram = Mcss_workload.Histogram

let test_equi_width () =
  let h = Histogram.equi_width ~bins:4 [| 0.; 1.; 2.; 3.; 4. |] in
  Helpers.check_int "total" 5 h.Histogram.total;
  Helpers.check_int "bins" 4 (Array.length h.Histogram.counts);
  Helpers.check_int "edges" 5 (Array.length h.Histogram.edges);
  Helpers.check_int "sums to total" 5 (Array.fold_left ( + ) 0 h.Histogram.counts);
  (* The maximum lands in the last bin (clamped). *)
  Helpers.check_bool "last bin nonempty" true (h.Histogram.counts.(3) > 0)

let test_constant_sample () =
  let h = Histogram.equi_width [| 7.; 7.; 7. |] in
  Helpers.check_int "one bin" 1 (Array.length h.Histogram.counts);
  Helpers.check_int "holds all" 3 h.Histogram.counts.(0)

let test_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Histogram.equi_width: empty sample")
    (fun () -> ignore (Histogram.equi_width [||]));
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Histogram.log_bins: non-positive sample") (fun () ->
      ignore (Histogram.log_bins [| 1.; 0. |]))

let test_log_bins () =
  let xs = [| 1.; 10.; 100.; 1000. |] in
  let h = Histogram.log_bins ~per_decade:1 xs in
  Helpers.check_int "sums to total" 4 (Array.fold_left ( + ) 0 h.Histogram.counts);
  (* Edges are powers of 10 and ascending. *)
  Array.iteri
    (fun i e ->
      if i > 0 then
        Helpers.check_bool "ascending" true (e > h.Histogram.edges.(i - 1)))
    h.Histogram.edges

let test_sparkline () =
  let h = Histogram.equi_width ~bins:3 [| 0.; 0.; 0.; 1.5; 3. |] in
  let line = Histogram.sparkline h in
  Helpers.check_bool "nonempty" true (String.length line > 0);
  (* Bin 0 is the fullest: its glyph is the tallest block used. *)
  Helpers.check_bool "renders blocks" true (Helpers.contains ~needle:"\xe2\x96" line)

let test_pp () =
  let h = Histogram.equi_width ~bins:2 [| 1.; 2. |] in
  let s = Format.asprintf "%a" Histogram.pp h in
  Helpers.check_bool "has bars" true (Helpers.contains ~needle:"#" s)

let prop_counts_conserved =
  Helpers.qtest "histograms never lose a sample"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (QCheck.float_range 0.1 1e6))
    (fun xs ->
      let xs = Array.of_list xs in
      let eq = Histogram.equi_width xs in
      let lg = Histogram.log_bins xs in
      Array.fold_left ( + ) 0 eq.Histogram.counts = Array.length xs
      && Array.fold_left ( + ) 0 lg.Histogram.counts = Array.length xs)

let suite =
  [
    Alcotest.test_case "equi width" `Quick test_equi_width;
    Alcotest.test_case "constant sample" `Quick test_constant_sample;
    Alcotest.test_case "rejects" `Quick test_rejects;
    Alcotest.test_case "log bins" `Quick test_log_bins;
    Alcotest.test_case "sparkline" `Quick test_sparkline;
    Alcotest.test_case "pp" `Quick test_pp;
    prop_counts_conserved;
  ]
