(* Tests for the allocation state: incremental load bookkeeping per Eq. 2. *)

module Allocation = Mcss_core.Allocation

let test_empty_fleet () =
  let a = Allocation.create ~capacity:100. in
  Helpers.check_int "no VMs" 0 (Allocation.num_vms a);
  Helpers.check_float "no load" 0. (Allocation.total_load a)

let test_create_rejects () =
  Alcotest.check_raises "capacity"
    (Invalid_argument "Allocation.create: capacity must be positive") (fun () ->
      ignore (Allocation.create ~capacity:0.))

let test_deploy_ids () =
  let a = Allocation.create ~capacity:100. in
  let b0 = Allocation.deploy a in
  let b1 = Allocation.deploy a in
  Helpers.check_int "id 0" 0 (Allocation.vm_id b0);
  Helpers.check_int "id 1" 1 (Allocation.vm_id b1);
  Helpers.check_int "two VMs" 2 (Allocation.num_vms a)

let test_place_delta () =
  let a = Allocation.create ~capacity:100. in
  let b = Allocation.deploy a in
  (* New topic: count outgoing plus one incoming. *)
  Helpers.check_float "first placement" 30. (Allocation.place_delta b ~topic:0 ~ev:10. ~count:2);
  Allocation.place a b ~topic:0 ~ev:10. ~subscribers:[| 4; 7 |] ~from:0 ~count:2;
  Helpers.check_float "load" 30. (Allocation.load b);
  (* Existing topic: incoming already paid. *)
  Helpers.check_float "second placement" 10. (Allocation.place_delta b ~topic:0 ~ev:10. ~count:1);
  Allocation.place a b ~topic:0 ~ev:10. ~subscribers:[| 9 |] ~from:0 ~count:1;
  Helpers.check_float "load" 40. (Allocation.load b);
  Helpers.check_float "free" 60. (Allocation.free a b);
  Helpers.check_int "pairs" 3 (Allocation.num_pairs_on b);
  Helpers.check_int "topics" 1 (Allocation.num_topics_on b)

let test_hosts_topic () =
  let a = Allocation.create ~capacity:100. in
  let b = Allocation.deploy a in
  Helpers.check_bool "not yet" false (Allocation.hosts_topic b 3);
  Allocation.place a b ~topic:3 ~ev:5. ~subscribers:[| 1 |] ~from:0 ~count:1;
  Helpers.check_bool "now" true (Allocation.hosts_topic b 3)

let test_max_pairs_that_fit () =
  let a = Allocation.create ~capacity:100. in
  let b = Allocation.deploy a in
  (* Empty VM, new topic rate 10: (k+1)*10 <= 100 -> k = 9. *)
  Helpers.check_int "fresh topic" 9 (Allocation.max_pairs_that_fit a b ~topic:0 ~ev:10. ~eps:1e-9);
  Allocation.place a b ~topic:0 ~ev:10. ~subscribers:[| 0 |] ~from:0 ~count:1;
  (* Load 20, topic present: k*10 <= 80 -> k = 8. *)
  Helpers.check_int "present topic" 8 (Allocation.max_pairs_that_fit a b ~topic:0 ~ev:10. ~eps:1e-9);
  (* Other topic rate 45: (k+1)*45 <= 80 -> k = 0. *)
  Helpers.check_int "does not fit" 0 (Allocation.max_pairs_that_fit a b ~topic:1 ~ev:45. ~eps:1e-9);
  (* Other topic rate 40: (k+1)*40 <= 80 -> k = 1. *)
  Helpers.check_int "just fits" 1 (Allocation.max_pairs_that_fit a b ~topic:1 ~ev:40. ~eps:1e-9)

let test_place_range_checks () =
  let a = Allocation.create ~capacity:100. in
  let b = Allocation.deploy a in
  Alcotest.check_raises "overflow"
    (Invalid_argument "Allocation.place: subscriber range out of bounds") (fun () ->
      Allocation.place a b ~topic:0 ~ev:1. ~subscribers:[| 1 |] ~from:0 ~count:2)

let test_place_zero_is_noop () =
  let a = Allocation.create ~capacity:100. in
  let b = Allocation.deploy a in
  Allocation.place a b ~topic:0 ~ev:1. ~subscribers:[||] ~from:0 ~count:0;
  Helpers.check_float "no load" 0. (Allocation.load b);
  Helpers.check_bool "no topic" false (Allocation.hosts_topic b 0)

let test_total_load_and_iteration () =
  let a = Allocation.create ~capacity:100. in
  let b0 = Allocation.deploy a in
  let b1 = Allocation.deploy a in
  Allocation.place a b0 ~topic:0 ~ev:10. ~subscribers:[| 1; 2 |] ~from:0 ~count:2;
  Allocation.place a b1 ~topic:1 ~ev:5. ~subscribers:[| 3 |] ~from:0 ~count:1;
  Helpers.check_float "total" 40. (Allocation.total_load a);
  let pairs = ref [] in
  Allocation.iter_vm_pairs b0 (fun t v -> pairs := (t, v) :: !pairs);
  Alcotest.(check (list (pair int int))) "b0 pairs" [ (0, 1); (0, 2) ] (List.sort compare !pairs);
  Alcotest.(check (list int)) "topics on b1" [ 1 ] (Allocation.topics_on b1);
  Alcotest.(check (list int)) "subs of t1 on b1" [ 3 ] (Allocation.subscribers_of_topic_on b1 1);
  Alcotest.(check (list int)) "absent topic" [] (Allocation.subscribers_of_topic_on b1 0)

let test_place_from_offset () =
  let a = Allocation.create ~capacity:100. in
  let b = Allocation.deploy a in
  Allocation.place a b ~topic:0 ~ev:1. ~subscribers:[| 10; 20; 30; 40 |] ~from:1 ~count:2;
  Alcotest.(check (list int)) "middle slice" [ 20; 30 ]
    (List.sort compare (Allocation.subscribers_of_topic_on b 0))

let suite =
  [
    Alcotest.test_case "empty fleet" `Quick test_empty_fleet;
    Alcotest.test_case "create rejects" `Quick test_create_rejects;
    Alcotest.test_case "deploy ids" `Quick test_deploy_ids;
    Alcotest.test_case "place delta" `Quick test_place_delta;
    Alcotest.test_case "hosts topic" `Quick test_hosts_topic;
    Alcotest.test_case "max pairs that fit" `Quick test_max_pairs_that_fit;
    Alcotest.test_case "place range checks" `Quick test_place_range_checks;
    Alcotest.test_case "place zero is noop" `Quick test_place_zero_is_noop;
    Alcotest.test_case "total load and iteration" `Quick test_total_load_and_iteration;
    Alcotest.test_case "place from offset" `Quick test_place_from_offset;
  ]
