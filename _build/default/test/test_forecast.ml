(* Tests for the multi-period growth/billing planner. *)

module Workload = Mcss_workload.Workload
module Cost_model = Mcss_pricing.Cost_model
module Billing = Mcss_pricing.Billing
module Forecast = Mcss_dynamic.Forecast

let base () =
  let rng = Mcss_prng.Rng.create 41 in
  Helpers.random_workload rng ~num_topics:40 ~num_subscribers:100 ~max_rate:20
    ~max_interests:5

let plan ?(growth = 1.5) ?(periods = 4) () =
  Forecast.plan ~base:(base ()) ~tau:30. ~capacity_events:2000.
    ~model:(Cost_model.ec2_2014 ()) ~growth_per_period:growth ~periods
    ~reserved_term:Billing.Reserved_1yr

let test_periods_and_growth () =
  let p = plan () in
  Helpers.check_int "four periods" 4 (List.length p.Forecast.periods);
  let subs = List.map (fun pp -> pp.Forecast.subscribers) p.Forecast.periods in
  (match subs with
  | [ a; b; c; d ] ->
      Helpers.check_int "period 0 is the base" 100 a;
      Helpers.check_int "x1.5" 150 b;
      Helpers.check_int "x2.25" 225 c;
      Helpers.check_int "x3.375" 338 d
  | _ -> Alcotest.fail "wrong period count");
  (* Fleet demand grows with the population. *)
  let vms = List.map (fun pp -> pp.Forecast.vms_needed) p.Forecast.periods in
  Helpers.check_bool "monotone fleets" true
    (List.sort compare vms = vms && List.nth vms 3 > List.hd vms)

let test_totals_are_sums () =
  let p = plan () in
  let sum f = List.fold_left (fun acc pp -> acc +. f pp) 0. p.Forecast.periods in
  Helpers.check_float "od total" (sum (fun pp -> pp.Forecast.cost_on_demand))
    p.Forecast.total_on_demand;
  Helpers.check_float "ri total" (sum (fun pp -> pp.Forecast.cost_all_reserved))
    p.Forecast.total_all_reserved;
  Helpers.check_float "hybrid total" (sum (fun pp -> pp.Forecast.cost_hybrid))
    p.Forecast.total_hybrid

let test_best_is_cheapest () =
  let p = plan () in
  let best_total =
    match p.Forecast.best with
    | Forecast.On_demand_only -> p.Forecast.total_on_demand
    | Forecast.All_reserved -> p.Forecast.total_all_reserved
    | Forecast.Hybrid -> p.Forecast.total_hybrid
  in
  Helpers.check_bool "best <= all" true
    (best_total <= p.Forecast.total_on_demand +. 1e-9
    && best_total <= p.Forecast.total_all_reserved +. 1e-9
    && best_total <= p.Forecast.total_hybrid +. 1e-9)

let test_flat_growth_favours_reserved () =
  (* With no growth every period needs the same fleet, so the reserved
     discount wins outright and hybrid equals all-reserved. *)
  let p = plan ~growth:1.0 ~periods:3 () in
  Helpers.check_bool "not on-demand" true (p.Forecast.best <> Forecast.On_demand_only);
  Helpers.check_float "hybrid = all-reserved under flat growth"
    p.Forecast.total_all_reserved p.Forecast.total_hybrid

let test_validation () =
  Alcotest.check_raises "growth" (Invalid_argument "Forecast.plan: growth must be positive")
    (fun () -> ignore (plan ~growth:0. ()));
  Alcotest.check_raises "periods"
    (Invalid_argument "Forecast.plan: need at least one period") (fun () ->
      ignore (plan ~periods:0 ()))

let test_pp_strategy () =
  let s = Format.asprintf "%a" Forecast.pp_strategy Forecast.Hybrid in
  Helpers.check_bool "renders" true (Helpers.contains ~needle:"hybrid" s)

let suite =
  [
    Alcotest.test_case "periods and growth" `Quick test_periods_and_growth;
    Alcotest.test_case "totals are sums" `Quick test_totals_are_sums;
    Alcotest.test_case "best is cheapest" `Quick test_best_is_cheapest;
    Alcotest.test_case "flat growth favours reserved" `Quick test_flat_growth_favours_reserved;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "pp strategy" `Quick test_pp_strategy;
  ]
