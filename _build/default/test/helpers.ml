(* Shared builders for the test suites: hand-written and random MCSS
   instances with integral event rates (as in the real traces), so float
   sums are exact and cross-implementation comparisons are meaningful. *)

module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem

let workload ~rates ~interests =
  Workload.create ~event_rates:(Array.of_list rates)
    ~interests:(Array.of_list (List.map Array.of_list interests))

(* The Fig. 1 workload: t0 at 20 events/min, t1 at 10, five pairs. *)
let fig1_workload () =
  workload ~rates:[ 20.; 10. ] ~interests:[ [ 0; 1 ]; [ 0; 1 ]; [ 1 ] ]

let fig1_problem ?(capacity = 80.) ?(tau = 30.) () =
  Problem.create ~workload:(fig1_workload ()) ~tau ~capacity Problem.unit_costs

(* A deterministic random instance. Rates are integers in [1, max_rate];
   every subscriber has between 1 and [max_interests] distinct topics. *)
let random_workload rng ~num_topics ~num_subscribers ~max_rate ~max_interests =
  let open Mcss_prng in
  let event_rates =
    Array.init num_topics (fun _ -> float_of_int (1 + Rng.int rng max_rate))
  in
  let interests =
    Array.init num_subscribers (fun _ ->
        let k = 1 + Rng.int rng (min max_interests num_topics) in
        Rng.sample_without_replacement rng k num_topics)
  in
  Workload.create ~event_rates ~interests

let random_problem rng ~num_topics ~num_subscribers ~max_rate ~max_interests ~tau
    ~capacity =
  let workload =
    random_workload rng ~num_topics ~num_subscribers ~max_rate ~max_interests
  in
  Problem.create ~workload ~tau ~capacity
    (Problem.linear_costs ~vm_usd:36. ~per_event_usd:0.001)

(* QCheck generator of a full problem, sized to stay fast. *)
let problem_gen =
  QCheck.Gen.(
    let* seed = int_bound 1_000_000 in
    let* num_topics = int_range 2 40 in
    let* num_subscribers = int_range 1 60 in
    let* max_rate = int_range 1 50 in
    let* max_interests = int_range 1 8 in
    let* tau = int_range 1 120 in
    let* cap_factor = int_range 3 30 in
    let rng = Mcss_prng.Rng.create seed in
    let capacity = float_of_int (cap_factor * max_rate) in
    return
      (random_problem rng ~num_topics ~num_subscribers ~max_rate ~max_interests
         ~tau:(float_of_int tau) ~capacity))

let problem_arbitrary =
  QCheck.make problem_gen ~print:(fun p ->
      Format.asprintf "%a, tau=%g, BC=%g" Workload.pp_summary p.Problem.workload
        p.Problem.tau p.Problem.capacity)

(* A tiny-instance generator for exact-solver comparisons. *)
let tiny_problem_gen =
  QCheck.Gen.(
    let* seed = int_bound 1_000_000 in
    let* num_topics = int_range 2 5 in
    let* num_subscribers = int_range 1 3 in
    let* max_rate = int_range 1 9 in
    let* tau = int_range 1 15 in
    let rng = Mcss_prng.Rng.create seed in
    return
      (random_problem rng ~num_topics ~num_subscribers ~max_rate ~max_interests:3
         ~tau:(float_of_int tau) ~capacity:(float_of_int (4 * max_rate))))

let tiny_problem_arbitrary =
  QCheck.make tiny_problem_gen ~print:(fun p ->
      Format.asprintf "%a, tau=%g, BC=%g" Workload.pp_summary p.Problem.workload
        p.Problem.tau p.Problem.capacity)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qtest ?(count = 100) name arbitrary prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arbitrary prop)
