(* Tests for the churn model and the billing-term pricing extension. *)

module Workload = Mcss_workload.Workload
module Delta = Mcss_dynamic.Delta
module Churn = Mcss_dynamic.Churn
module Billing = Mcss_pricing.Billing
module Cost_model = Mcss_pricing.Cost_model
module Instance = Mcss_pricing.Instance

let base () =
  let rng = Mcss_prng.Rng.create 31 in
  Helpers.random_workload rng ~num_topics:30 ~num_subscribers:50 ~max_rate:20
    ~max_interests:5

let test_tick_applies_cleanly () =
  let rng = Mcss_prng.Rng.create 1 in
  let w = base () in
  let deltas = Churn.tick rng Churn.default w in
  Helpers.check_bool "produces deltas" true (List.length deltas > 0);
  let w' = Delta.apply w deltas in
  Helpers.check_int "topics grew" (Workload.num_topics w + Churn.default.Churn.new_topics)
    (Workload.num_topics w');
  Helpers.check_int "subscribers grew"
    (Workload.num_subscribers w + Churn.default.Churn.new_subscribers)
    (Workload.num_subscribers w')

let test_tick_deterministic () =
  let w = base () in
  let d1 = Churn.tick (Mcss_prng.Rng.create 9) Churn.default w in
  let d2 = Churn.tick (Mcss_prng.Rng.create 9) Churn.default w in
  Helpers.check_bool "same deltas" true (d1 = d2)

let test_scaled_params () =
  let p = Churn.scaled 0.1 in
  Helpers.check_int "subscribes scaled" 10 p.Churn.subscribes;
  Helpers.check_int "floors at 1" 1 (Churn.scaled 0.001).Churn.new_topics

let test_run_folds () =
  let rng = Mcss_prng.Rng.create 5 in
  let w = base () in
  let calls = ref 0 in
  let final =
    Churn.run rng (Churn.scaled 0.2) ~ticks:4 w (fun w_before deltas ->
        incr calls;
        (* The deltas must be valid against the workload they were
           generated for — [Delta.apply] would raise otherwise. *)
        ignore (Delta.apply w_before deltas))
  in
  Helpers.check_int "four ticks" 4 !calls;
  Helpers.check_bool "workload evolved" true
    (Workload.num_topics final > Workload.num_topics w)

let prop_ticks_always_apply =
  Helpers.qtest ~count:60 "every generated tick applies without error"
    QCheck.(pair small_int small_int)
    (fun (seed, ticks) ->
      let ticks = 1 + (ticks mod 4) in
      let rng = Mcss_prng.Rng.create seed in
      let w =
        Helpers.random_workload rng ~num_topics:10 ~num_subscribers:12 ~max_rate:9
          ~max_interests:3
      in
      let final = Churn.run rng Churn.default ~ticks w (fun _ _ -> ()) in
      Workload.num_pairs final >= 0)

(* ----- billing terms ----- *)

let test_billing_discounts () =
  Helpers.check_float "on-demand" 1.0 (Billing.discount Billing.On_demand);
  Helpers.check_bool "1yr cheaper" true
    (Billing.discount Billing.Reserved_1yr < 1.0);
  Helpers.check_bool "3yr cheapest" true
    (Billing.discount Billing.Reserved_3yr < Billing.discount Billing.Reserved_1yr)

let test_billing_effective_hourly () =
  Helpers.check_float "od c3.large" 0.15
    (Billing.effective_hourly Instance.c3_large Billing.On_demand);
  Helpers.check_float "3yr c3.large" (0.15 *. 0.45)
    (Billing.effective_hourly Instance.c3_large Billing.Reserved_3yr)

let test_billing_of_string () =
  Helpers.check_bool "roundtrip" true
    (List.for_all
       (fun term ->
         Billing.of_string (Format.asprintf "%a" Billing.pp term) = Some term)
       Billing.all);
  Helpers.check_bool "unknown" true (Billing.of_string "spot" = None)

let test_cost_model_uses_term () =
  let od = Cost_model.ec2_2014 () in
  let ri = Cost_model.ec2_2014 ~term:Billing.Reserved_3yr () in
  Helpers.check_float "od vm cost" 360. (Cost_model.vm_cost od 10);
  Helpers.check_float "ri vm cost" (360. *. 0.45) (Cost_model.vm_cost ri 10);
  (* Bandwidth price unaffected by the term. *)
  Helpers.check_float "same bw" (Cost_model.bandwidth_cost od 5e9)
    (Cost_model.bandwidth_cost ri 5e9)

let suite =
  [
    Alcotest.test_case "tick applies cleanly" `Quick test_tick_applies_cleanly;
    Alcotest.test_case "tick deterministic" `Quick test_tick_deterministic;
    Alcotest.test_case "scaled params" `Quick test_scaled_params;
    Alcotest.test_case "run folds" `Quick test_run_folds;
    prop_ticks_always_apply;
    Alcotest.test_case "billing discounts" `Quick test_billing_discounts;
    Alcotest.test_case "billing effective hourly" `Quick test_billing_effective_hourly;
    Alcotest.test_case "billing of_string" `Quick test_billing_of_string;
    Alcotest.test_case "cost model uses term" `Quick test_cost_model_uses_term;
  ]
