(* Tests for the Theorem A.1 lower bound. *)

module Problem = Mcss_core.Problem
module Selection = Mcss_core.Selection
module Solver = Mcss_core.Solver
module Lower_bound = Mcss_core.Lower_bound

let test_fig1_bound () =
  let p = Helpers.fig1_problem ~capacity:50. () in
  let lb = Lower_bound.compute p in
  (* v0: max(30, 10) = 30; v1: 30; v2: max(10, 10) = 10 -> 70. *)
  Helpers.check_float "bandwidth" 70. lb.Lower_bound.bandwidth;
  Helpers.check_int "vms = ceil(70/50)" 2 lb.Lower_bound.vms;
  Helpers.check_float "cost under unit costs" 2. lb.Lower_bound.cost

let test_min_rate_clause () =
  (* tau = 2 but the only topic has rate 9: the bound must charge 9, not
     2, because pairs are all-or-nothing. *)
  let w = Helpers.workload ~rates:[ 9. ] ~interests:[ [ 0 ] ] in
  let p = Problem.create ~workload:w ~tau:2. ~capacity:100. Problem.unit_costs in
  Helpers.check_float "charges min rate" 9. (Lower_bound.compute p).Lower_bound.bandwidth

let test_empty_subscriber_contributes_zero () =
  let w = Helpers.workload ~rates:[ 9. ] ~interests:[ []; [ 0 ] ] in
  let p = Problem.create ~workload:w ~tau:2. ~capacity:100. Problem.unit_costs in
  Helpers.check_float "only v1 counts" 9. (Lower_bound.compute p).Lower_bound.bandwidth

let prop_bound_below_every_ladder_config =
  Helpers.qtest ~count:80 "LB.cost <= heuristic cost for every ladder entry"
    Helpers.problem_arbitrary (fun p ->
      let lb = Lower_bound.compute p in
      List.for_all
        (fun (_, config) ->
          let r = Solver.solve ~config p in
          lb.Lower_bound.cost <= r.Solver.cost +. 1e-6
          && lb.Lower_bound.vms <= r.Solver.num_vms
          && lb.Lower_bound.bandwidth <= r.Solver.bandwidth +. 1e-6)
        Solver.ladder)

let prop_bound_below_exact =
  Helpers.qtest ~count:60 "LB.cost <= exact optimal cost"
    Helpers.tiny_problem_arbitrary (fun p ->
      match Mcss_exact.Brute.solve p with
      | None -> QCheck.assume_fail ()
      | Some ex ->
          (Lower_bound.compute p).Lower_bound.cost <= ex.Mcss_exact.Brute.cost +. 1e-6)

let suite =
  [
    Alcotest.test_case "fig1 bound" `Quick test_fig1_bound;
    Alcotest.test_case "min-rate clause" `Quick test_min_rate_clause;
    Alcotest.test_case "empty subscriber" `Quick test_empty_subscriber_contributes_zero;
    prop_bound_below_every_ladder_config;
    prop_bound_below_exact;
  ]
