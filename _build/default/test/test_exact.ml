(* Tests for the exact branch-and-bound solver and the Partition/DCSS
   reduction (Theorem II.2). *)

module Problem = Mcss_core.Problem
module Solver = Mcss_core.Solver
module Verifier = Mcss_core.Verifier
module Brute = Mcss_exact.Brute
module Partition = Mcss_exact.Partition

let test_partition_yes () =
  let xs = [| 3; 1; 1; 2; 2; 1 |] in
  match Partition.solve xs with
  | None -> Alcotest.fail "expected a partition"
  | Some side -> Helpers.check_bool "balanced" true (Partition.balanced xs side)

let test_partition_odd_total () =
  Helpers.check_bool "odd total" true (Partition.solve [| 3; 1; 1 |] = None)

let test_partition_even_but_impossible () =
  Helpers.check_bool "no split" true (Partition.solve [| 1; 1; 6 |] = None)

let test_partition_rejects_nonpositive () =
  Alcotest.check_raises "zero" (Invalid_argument "Partition.solve: nonpositive element")
    (fun () -> ignore (Partition.solve [| 1; 0 |]))

let test_reduce_structure () =
  let xs = [| 4; 2; 6 |] in
  let p = Partition.reduce xs in
  let w = p.Problem.workload in
  Helpers.check_int "one topic per integer" 3 (Mcss_workload.Workload.num_topics w);
  Helpers.check_int "one subscriber per topic" 3
    (Mcss_workload.Workload.num_subscribers w);
  Helpers.check_float "BC = sum" 12. p.Problem.capacity;
  Helpers.check_float "tau = max" 6. p.Problem.tau;
  (* C1 counts VMs, C2 is zero. *)
  Helpers.check_float "unit costs" 5. (Problem.cost p ~vms:5 ~bandwidth:1e9);
  (* Every subscriber is forced to take its whole topic: tau_v = ev. *)
  Helpers.check_float "tau_v forces the pair" 4. (Problem.tau_v p 0)

let test_reduction_yes_instance () =
  let p = Partition.reduce [| 3; 1; 1; 2; 2; 1 |] in
  match Brute.dcss p ~threshold:Partition.dcss_cost_threshold with
  | Some answer -> Helpers.check_bool "2 VMs suffice" true answer
  | None -> Alcotest.fail "within limits but refused"

let test_reduction_no_instance () =
  let p = Partition.reduce [| 3; 3; 3 |] in
  match Brute.dcss p ~threshold:Partition.dcss_cost_threshold with
  | Some answer -> Helpers.check_bool "2 VMs cannot suffice" false answer
  | None -> Alcotest.fail "within limits but refused"

let test_brute_fig1 () =
  let p = Helpers.fig1_problem ~capacity:50. () in
  match Brute.solve p with
  | None -> Alcotest.fail "tiny instance refused"
  | Some ex ->
      (* The heuristic already achieves 3 VMs / 120 bandwidth; exact must
         agree (it cannot do better: t0's two pairs cannot share a VM). *)
      Helpers.check_int "3 VMs" 3 ex.Brute.num_vms;
      Helpers.check_float "cost" 3. ex.Brute.cost;
      Helpers.check_bool "exact allocation verifies" true
        (Verifier.is_valid (Verifier.verify p ex.Brute.selection ex.Brute.allocation))

let test_limits_refuse_large () =
  let rng = Mcss_prng.Rng.create 5 in
  let p =
    Helpers.random_problem rng ~num_topics:30 ~num_subscribers:30 ~max_rate:9
      ~max_interests:8 ~tau:20. ~capacity:100.
  in
  let tight = { Brute.default_limits with Brute.max_combinations = 2 } in
  Helpers.check_bool "refuses" true (Brute.solve ~limits:tight p = None)

let prop_partition_solution_balanced =
  Helpers.qtest ~count:200 "any partition found is balanced"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 12) (QCheck.int_range 1 20))
    (fun xs ->
      let xs = Array.of_list xs in
      match Partition.solve xs with
      | None -> true
      | Some side -> Partition.balanced xs side)

let prop_partition_agrees_with_reduction =
  (* The heart of Theorem II.2, executed: the multiset partitions evenly
     iff the reduced DCSS instance admits cost <= 2. *)
  Helpers.qtest ~count:40 "Partition(xs) <=> DCSS(reduce xs) <= 2"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 7) (QCheck.int_range 1 9))
    (fun xs ->
      let xs = Array.of_list xs in
      let direct = Partition.solve xs <> None in
      (* An element above half the total makes even a single pair exceed
         BC: the reduced instance is wholly unallocatable, hence a "no". *)
      let reduced =
        try Brute.dcss (Partition.reduce xs) ~threshold:Partition.dcss_cost_threshold
        with Problem.Infeasible _ -> Some false
      in
      match reduced with
      | None -> QCheck.assume_fail ()
      | Some reduced -> direct = reduced)

let prop_exact_at_most_heuristic =
  Helpers.qtest ~count:60 "exact cost <= every ladder heuristic's cost"
    Helpers.tiny_problem_arbitrary (fun p ->
      match Brute.solve p with
      | None -> QCheck.assume_fail ()
      | Some ex ->
          List.for_all
            (fun (_, config) ->
              ex.Brute.cost <= (Solver.solve ~config p).Solver.cost +. 1e-6)
            Solver.ladder)

let prop_exact_allocation_verifies =
  Helpers.qtest ~count:60 "exact solutions pass the verifier"
    Helpers.tiny_problem_arbitrary (fun p ->
      match Brute.solve p with
      | None -> QCheck.assume_fail ()
      | Some ex ->
          Verifier.is_valid (Verifier.verify p ex.Brute.selection ex.Brute.allocation))

let suite =
  [
    Alcotest.test_case "partition yes" `Quick test_partition_yes;
    Alcotest.test_case "partition odd total" `Quick test_partition_odd_total;
    Alcotest.test_case "partition impossible" `Quick test_partition_even_but_impossible;
    Alcotest.test_case "partition rejects nonpositive" `Quick test_partition_rejects_nonpositive;
    Alcotest.test_case "reduce structure" `Quick test_reduce_structure;
    Alcotest.test_case "reduction yes-instance" `Quick test_reduction_yes_instance;
    Alcotest.test_case "reduction no-instance" `Quick test_reduction_no_instance;
    Alcotest.test_case "brute on fig1" `Quick test_brute_fig1;
    Alcotest.test_case "limits refuse large" `Quick test_limits_refuse_large;
    prop_partition_solution_balanced;
    prop_partition_agrees_with_reduction;
    prop_exact_at_most_heuristic;
    prop_exact_allocation_verifies;
  ]
