(* Tests for the event heap and the discrete-event replay. *)

module Problem = Mcss_core.Problem
module Selection = Mcss_core.Selection
module Allocation = Mcss_core.Allocation
module Solver = Mcss_core.Solver
module Event_heap = Mcss_sim.Event_heap
module Simulator = Mcss_sim.Simulator

let test_heap_basic () =
  let h = Event_heap.create () in
  Helpers.check_bool "empty" true (Event_heap.is_empty h);
  Event_heap.push h 3. "c";
  Event_heap.push h 1. "a";
  Event_heap.push h 2. "b";
  Helpers.check_int "size" 3 (Event_heap.size h);
  Alcotest.(check (option (pair (float 0.) string))) "peek" (Some (1., "a")) (Event_heap.peek h);
  Alcotest.(check (option (pair (float 0.) string))) "pop 1" (Some (1., "a")) (Event_heap.pop h);
  Alcotest.(check (option (pair (float 0.) string))) "pop 2" (Some (2., "b")) (Event_heap.pop h);
  Alcotest.(check (option (pair (float 0.) string))) "pop 3" (Some (3., "c")) (Event_heap.pop h);
  Helpers.check_bool "drained" true (Event_heap.pop h = None)

let prop_heap_pops_sorted =
  Helpers.qtest "heap pops keys in nondecreasing order" QCheck.(list (float_bound_exclusive 1000.))
    (fun keys ->
      let h = Event_heap.create () in
      List.iteri (fun i k -> Event_heap.push h k i) keys;
      let rec drain prev =
        match Event_heap.pop h with
        | None -> true
        | Some (k, _) -> k >= prev && drain k
      in
      drain neg_infinity)

let solved_fig1 () =
  let p = Helpers.fig1_problem ~capacity:50. () in
  let r = Solver.solve p in
  (p, r)

let test_deterministic_matches_analytical () =
  let p, r = solved_fig1 () in
  let res = Simulator.run p r.Solver.allocation Simulator.default_config in
  (* 30 events per horizon get published (20 + 10). *)
  Helpers.check_int "published" 30 res.Simulator.events_published;
  let c = Simulator.check p r.Solver.allocation res ~tolerance:0. in
  Helpers.check_bool "exact agreement" true (Simulator.all_ok c);
  (* Total measured traffic equals the analytical objective exactly. *)
  let measured =
    Array.to_list (Allocation.vms r.Solver.allocation)
    |> List.map (fun vm -> Simulator.total_vm_traffic res ~vm:(Allocation.vm_id vm))
    |> List.fold_left ( + ) 0
  in
  Helpers.check_int "traffic = bw" (int_of_float r.Solver.bandwidth) measured

let test_delivered_counts () =
  let p, r = solved_fig1 () in
  let res = Simulator.run p r.Solver.allocation Simulator.default_config in
  (* v0 and v1 receive both topics: 30 events; v2 only t1: 10. *)
  Alcotest.(check (array int)) "delivered" [| 30; 30; 10 |] res.Simulator.delivered

let test_poisson_within_tolerance () =
  let p, r = solved_fig1 () in
  let config = { Simulator.default_config with Simulator.arrivals = Simulator.Poisson 7 } in
  let res = Simulator.run p r.Solver.allocation config in
  Helpers.check_bool "some events" true (res.Simulator.events_published > 0);
  let c = Simulator.check p r.Solver.allocation res ~tolerance:0.5 in
  Helpers.check_bool "within tolerance" true (Simulator.all_ok c)

let test_poisson_reproducible () =
  let p, r = solved_fig1 () in
  let config = { Simulator.default_config with Simulator.arrivals = Simulator.Poisson 7 } in
  let a = Simulator.run p r.Solver.allocation config in
  let b = Simulator.run p r.Solver.allocation config in
  Helpers.check_int "same event count" a.Simulator.events_published b.Simulator.events_published;
  Alcotest.(check (array int)) "same deliveries" a.Simulator.delivered b.Simulator.delivered

let test_missing_pairs_detected () =
  let p, _r = solved_fig1 () in
  (* Replay against an empty fleet: nothing is delivered. *)
  let empty = Allocation.create ~capacity:50. in
  let res = Simulator.run p empty Simulator.default_config in
  Helpers.check_int "nothing delivered to v0" 0 res.Simulator.delivered.(0);
  let c = Simulator.check p empty res ~tolerance:0. in
  Helpers.check_bool "every subscriber flagged" true
    (List.length c.Simulator.unsatisfied = 3);
  (* A half-populated fleet (only topic 1 hosted) satisfies only v2. *)
  let half = Allocation.create ~capacity:50. in
  let b = Allocation.deploy half in
  Allocation.place half b ~topic:1 ~ev:10. ~subscribers:[| 0; 1; 2 |] ~from:0 ~count:3;
  let res2 = Simulator.run p half Simulator.default_config in
  let c2 = Simulator.check p half res2 ~tolerance:0. in
  Helpers.check_int "v0 and v1 under-delivered" 2 (List.length c2.Simulator.unsatisfied)

let test_scaled_duration () =
  let p, r = solved_fig1 () in
  let config = { Simulator.default_config with Simulator.duration = 0.5 } in
  let res = Simulator.run p r.Solver.allocation config in
  Helpers.check_int "half the events" 15 res.Simulator.events_published

let test_bucket_metering () =
  let p, r = solved_fig1 () in
  let res = Simulator.run p r.Solver.allocation Simulator.default_config in
  Array.iter
    (fun vm ->
      let b = Allocation.vm_id vm in
      let total_from_buckets =
        Array.fold_left ( +. ) 0. res.Simulator.vm_bucket_load.(b)
      in
      Helpers.check_float "buckets sum to traffic"
        (float_of_int (Simulator.total_vm_traffic res ~vm:b))
        total_from_buckets;
      Helpers.check_bool "peak >= average" true
        (Simulator.peak_bucket_rate res ~vm:b
        >= float_of_int (Simulator.total_vm_traffic res ~vm:b) -. 1e-9))
    (Allocation.vms r.Solver.allocation)

let test_diurnal_mean_preserved () =
  let p, r = solved_fig1 () in
  let config =
    { Simulator.default_config with
      Simulator.arrivals = Simulator.Diurnal { seed = 3; amplitude = 0.8 } }
  in
  let res = Simulator.run p r.Solver.allocation config in
  (* Unit-mean modulation: totals stay near the model over a horizon. *)
  let c = Simulator.check p r.Solver.allocation res ~tolerance:0.5 in
  Helpers.check_bool "within tolerance" true (Simulator.all_ok c);
  (* Determinism. *)
  let res2 = Simulator.run p r.Solver.allocation config in
  Helpers.check_int "reproducible" res.Simulator.events_published
    res2.Simulator.events_published

let test_diurnal_peaks_exceed_average () =
  (* A heavily loaded single-VM fleet with strong diurnality: the busiest
     bucket must carry visibly more than the average bucket. *)
  let w = Helpers.workload ~rates:[ 2000. ] ~interests:[ [ 0 ] ] in
  let p = Mcss_core.Problem.create ~workload:w ~tau:2000. ~capacity:5000.
      Mcss_core.Problem.unit_costs in
  let r = Solver.solve p in
  let run amplitude =
    let config =
      { Simulator.default_config with
        Simulator.arrivals = Simulator.Diurnal { seed = 5; amplitude } }
    in
    let res = Simulator.run p r.Solver.allocation config in
    Simulator.peak_bucket_rate res ~vm:0
  in
  Helpers.check_bool "amplitude raises the peak" true (run 0.9 > run 0.0)

let test_diurnal_validation () =
  let p, r = solved_fig1 () in
  Alcotest.check_raises "amplitude"
    (Invalid_argument "Simulator.run: diurnal amplitude must be in [0, 1)") (fun () ->
      ignore
        (Simulator.run p r.Solver.allocation
           { Simulator.default_config with
             Simulator.arrivals = Simulator.Diurnal { seed = 1; amplitude = 1.5 } }))

let test_config_validation () =
  let p, r = solved_fig1 () in
  Alcotest.check_raises "duration" (Invalid_argument "Simulator.run: duration must be positive")
    (fun () ->
      ignore
        (Simulator.run p r.Solver.allocation
           { Simulator.default_config with Simulator.duration = 0. }));
  Alcotest.check_raises "buckets" (Invalid_argument "Simulator.run: buckets must be >= 1")
    (fun () ->
      ignore
        (Simulator.run p r.Solver.allocation
           { Simulator.default_config with Simulator.buckets = 0 }))

let prop_deterministic_sim_validates_solver =
  Helpers.qtest ~count:60 "deterministic replay agrees exactly with the optimiser"
    Helpers.problem_arbitrary (fun p ->
      let r = Solver.solve p in
      let res =
        Simulator.run p r.Solver.allocation Simulator.default_config
      in
      Simulator.all_ok (Simulator.check p r.Solver.allocation res ~tolerance:0.))

let suite =
  [
    Alcotest.test_case "heap basic" `Quick test_heap_basic;
    prop_heap_pops_sorted;
    Alcotest.test_case "deterministic matches analytical" `Quick
      test_deterministic_matches_analytical;
    Alcotest.test_case "delivered counts" `Quick test_delivered_counts;
    Alcotest.test_case "poisson within tolerance" `Quick test_poisson_within_tolerance;
    Alcotest.test_case "poisson reproducible" `Quick test_poisson_reproducible;
    Alcotest.test_case "missing pairs detected" `Quick test_missing_pairs_detected;
    Alcotest.test_case "scaled duration" `Quick test_scaled_duration;
    Alcotest.test_case "bucket metering" `Quick test_bucket_metering;
    Alcotest.test_case "diurnal mean preserved" `Quick test_diurnal_mean_preserved;
    Alcotest.test_case "diurnal peaks exceed average" `Quick test_diurnal_peaks_exceed_average;
    Alcotest.test_case "diurnal validation" `Quick test_diurnal_validation;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    prop_deterministic_sim_validates_solver;
  ]
