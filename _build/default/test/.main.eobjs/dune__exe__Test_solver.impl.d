test/test_solver.ml: Alcotest Format Helpers List Mcss_core Mcss_prng
