test/test_budget.ml: Alcotest Array Hashtbl Helpers List Mcss_core Mcss_prng Mcss_workload
