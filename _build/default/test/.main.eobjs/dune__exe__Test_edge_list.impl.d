test/test_edge_list.ml: Alcotest Array Filename Fun Helpers List Mcss_core Mcss_traces Mcss_workload Out_channel Sys
