test/test_extensions.ml: Alcotest Array Helpers Mcss_core Mcss_prng Mcss_sim Mcss_workload Printf
