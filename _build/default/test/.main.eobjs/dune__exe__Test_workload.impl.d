test/test_workload.ml: Alcotest Array Format Helpers List Mcss_core Mcss_workload
