test/test_verifier.ml: Alcotest Format Helpers List Mcss_core
