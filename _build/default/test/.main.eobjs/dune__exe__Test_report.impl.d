test/test_report.ml: Alcotest Filename Helpers In_channel List Mcss_report String Sys
