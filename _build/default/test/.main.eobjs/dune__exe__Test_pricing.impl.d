test/test_pricing.ml: Alcotest Helpers List Mcss_pricing
