test/test_lp_export.ml: Alcotest Array Filename Fun Helpers In_channel List Mcss_core Mcss_exact Mcss_workload Sys
