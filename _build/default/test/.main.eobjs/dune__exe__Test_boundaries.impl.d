test/test_boundaries.ml: Alcotest Array Helpers List Mcss_core Mcss_prng Mcss_workload
