test/test_stats.ml: Alcotest Array Float Helpers List Mcss_core Mcss_workload
