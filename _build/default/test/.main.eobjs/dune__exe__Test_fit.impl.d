test/test_fit.ml: Alcotest Array Float Helpers List Mcss_prng Mcss_workload
