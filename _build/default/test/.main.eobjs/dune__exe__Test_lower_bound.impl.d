test/test_lower_bound.ml: Alcotest Helpers List Mcss_core Mcss_exact QCheck
