test/test_broker.ml: Alcotest Float Helpers List Mcss_broker Mcss_core Mcss_sim Mcss_workload
