test/test_prng.ml: Alcotest Array Float Helpers Int64 Mcss_prng Printf
