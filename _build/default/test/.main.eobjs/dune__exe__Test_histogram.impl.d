test/test_histogram.ml: Alcotest Array Format Helpers Mcss_workload QCheck String
