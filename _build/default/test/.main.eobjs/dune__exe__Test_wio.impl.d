test/test_wio.ml: Alcotest Array Filename Fun Helpers Mcss_core Mcss_workload Out_channel Sys
