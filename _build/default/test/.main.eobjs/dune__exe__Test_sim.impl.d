test/test_sim.ml: Alcotest Array Helpers List Mcss_core Mcss_sim QCheck
