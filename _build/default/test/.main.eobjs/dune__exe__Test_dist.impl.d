test/test_dist.ml: Alcotest Array Float Helpers Mcss_prng QCheck
