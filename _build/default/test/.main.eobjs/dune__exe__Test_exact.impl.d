test/test_exact.ml: Alcotest Array Helpers List Mcss_core Mcss_exact Mcss_prng Mcss_workload QCheck
