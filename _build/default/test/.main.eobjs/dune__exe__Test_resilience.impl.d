test/test_resilience.ml: Alcotest Array Float Helpers List Mcss_core Mcss_dynamic Mcss_prng Mcss_resilience Mcss_sim Mcss_workload Printf
