test/test_vec.ml: Alcotest Array Helpers List Mcss_core QCheck
