test/test_traces.ml: Alcotest Array Float Helpers Mcss_prng Mcss_traces Mcss_workload
