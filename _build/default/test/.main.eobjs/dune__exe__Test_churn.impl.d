test/test_churn.ml: Alcotest Format Helpers List Mcss_dynamic Mcss_pricing Mcss_prng Mcss_workload QCheck
