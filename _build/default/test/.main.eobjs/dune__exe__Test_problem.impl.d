test/test_problem.ml: Alcotest Helpers Mcss_core Mcss_pricing Mcss_workload
