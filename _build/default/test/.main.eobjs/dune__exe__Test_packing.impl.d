test/test_packing.ml: Alcotest Array Hashtbl Helpers List Mcss_core Mcss_workload Option
