test/test_recovery.ml: Alcotest Format Helpers List Mcss_core Mcss_dynamic Mcss_pricing Mcss_prng Mcss_workload
