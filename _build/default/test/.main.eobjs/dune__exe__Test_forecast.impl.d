test/test_forecast.ml: Alcotest Format Helpers List Mcss_dynamic Mcss_pricing Mcss_prng Mcss_workload
