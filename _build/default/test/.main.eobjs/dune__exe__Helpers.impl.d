test/helpers.ml: Alcotest Array Format List Mcss_core Mcss_prng Mcss_workload QCheck QCheck_alcotest Rng String
