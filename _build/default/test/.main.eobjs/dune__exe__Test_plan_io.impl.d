test/test_plan_io.ml: Alcotest Filename Float Fun Helpers Mcss_core Mcss_workload Out_channel Sys
