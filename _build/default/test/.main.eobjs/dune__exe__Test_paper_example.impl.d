test/test_paper_example.ml: Alcotest Array Float Helpers List Mcss_core Mcss_exact Mcss_pricing Mcss_traces Mcss_workload
