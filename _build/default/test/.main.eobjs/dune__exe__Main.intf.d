test/main.mli:
