test/test_dynamic.ml: Alcotest Array Float Format Helpers List Mcss_core Mcss_dynamic Mcss_prng Mcss_workload Printf QCheck Rng
