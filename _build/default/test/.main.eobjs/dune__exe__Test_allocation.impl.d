test/test_allocation.ml: Alcotest Helpers List Mcss_core
