(* Tests for the distribution samplers: support, moments (loose, seeded),
   and the Zipf table. *)

module Rng = Mcss_prng.Rng
module Dist = Mcss_prng.Dist

let near name ~tolerance expected actual =
  if Float.abs (expected -. actual) > tolerance then
    Alcotest.failf "%s: expected ~%g, got %g" name expected actual

let sample_mean g n f =
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. f g
  done;
  !sum /. float_of_int n

let test_exponential_mean () =
  let g = Rng.create 21 in
  near "mean" ~tolerance:0.2 5.0 (sample_mean g 20_000 (fun g -> Dist.exponential g ~mean:5.0))

let test_exponential_positive () =
  let g = Rng.create 22 in
  for _ = 1 to 1000 do
    Helpers.check_bool "positive" true (Dist.exponential g ~mean:1.0 >= 0.)
  done

let test_exponential_rejects () =
  let g = Rng.create 22 in
  Alcotest.check_raises "bad mean"
    (Invalid_argument "Dist.exponential: mean must be positive") (fun () ->
      ignore (Dist.exponential g ~mean:0.))

let test_normal_moments () =
  let g = Rng.create 23 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Dist.normal g ~mu:3. ~sigma:2.) in
  let mean = Array.fold_left ( +. ) 0. xs /. float_of_int n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. float_of_int n
  in
  near "mean" ~tolerance:0.1 3. mean;
  near "variance" ~tolerance:0.3 4. var

let test_log_normal_median () =
  let g = Rng.create 24 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Dist.log_normal g ~mu:2. ~sigma:1.) in
  Array.sort compare xs;
  (* Median of log-normal is e^mu. *)
  near "median" ~tolerance:0.5 (exp 2.) xs.(n / 2)

let test_pareto_support () =
  let g = Rng.create 25 in
  for _ = 1 to 1000 do
    Helpers.check_bool "x >= scale" true (Dist.pareto g ~scale:3. ~alpha:1.5 >= 3.)
  done

let test_pareto_mean () =
  let g = Rng.create 26 in
  (* Mean of Pareto(scale, alpha) = scale * alpha / (alpha - 1) = 6. *)
  near "mean" ~tolerance:0.6 6. (sample_mean g 50_000 (fun g -> Dist.pareto g ~scale:3. ~alpha:2.))

let test_poisson_zero () =
  let g = Rng.create 27 in
  Helpers.check_int "mean 0" 0 (Dist.poisson g ~mean:0.)

let test_poisson_small_mean () =
  let g = Rng.create 28 in
  near "mean 4" ~tolerance:0.15 4.
    (sample_mean g 20_000 (fun g -> float_of_int (Dist.poisson g ~mean:4.)))

let test_poisson_large_mean () =
  let g = Rng.create 29 in
  near "mean 200 (normal approx)" ~tolerance:2. 200.
    (sample_mean g 5_000 (fun g -> float_of_int (Dist.poisson g ~mean:200.)))

let test_poisson_nonnegative () =
  let g = Rng.create 30 in
  for _ = 1 to 1000 do
    Helpers.check_bool "nonnegative" true (Dist.poisson g ~mean:100. >= 0)
  done

let test_geometric () =
  let g = Rng.create 31 in
  Helpers.check_int "p=1 is 0" 0 (Dist.geometric g ~p:1.);
  (* Mean failures before success = (1-p)/p = 3 for p = 0.25. *)
  near "mean" ~tolerance:0.2 3.
    (sample_mean g 20_000 (fun g -> float_of_int (Dist.geometric g ~p:0.25)))

let test_zipf_support_and_probs () =
  let z = Dist.Zipf.create ~n:10 ~s:1.2 in
  Helpers.check_int "support" 10 (Dist.Zipf.support z);
  let total = ref 0. in
  for k = 1 to 10 do
    total := !total +. Dist.Zipf.prob z k
  done;
  Helpers.check_float "probs sum to 1" 1.0 !total;
  for k = 2 to 10 do
    Helpers.check_bool "monotone non-increasing" true
      (Dist.Zipf.prob z k <= Dist.Zipf.prob z (k - 1) +. 1e-12)
  done;
  Helpers.check_float "prob outside support" 0. (Dist.Zipf.prob z 0);
  Helpers.check_float "prob outside support" 0. (Dist.Zipf.prob z 11)

let test_zipf_sample_range_and_skew () =
  let g = Rng.create 32 in
  let z = Dist.Zipf.create ~n:100 ~s:1.0 in
  let counts = Array.make 101 0 in
  for _ = 1 to 20_000 do
    let k = Dist.Zipf.sample z g in
    Helpers.check_bool "in range" true (k >= 1 && k <= 100);
    counts.(k) <- counts.(k) + 1
  done;
  Helpers.check_bool "rank 1 much more frequent than rank 100" true
    (counts.(1) > 10 * max 1 counts.(100))

let test_zipf_uniform_when_s_zero () =
  let z = Dist.Zipf.create ~n:4 ~s:0. in
  for k = 1 to 4 do
    Helpers.check_float "uniform" 0.25 (Dist.Zipf.prob z k)
  done

let test_weighted_index () =
  let g = Rng.create 33 in
  let w = [| 0.; 5.; 0.; 5. |] in
  for _ = 1 to 500 do
    let i = Dist.weighted_index w ~cumulative:None g in
    Helpers.check_bool "zero weights never chosen" true (i = 1 || i = 3)
  done;
  let c = Dist.cumulative_sums w in
  Alcotest.(check (array (float 1e-12))) "cumsums" [| 0.; 5.; 5.; 10. |] c;
  for _ = 1 to 500 do
    let i = Dist.weighted_index w ~cumulative:(Some c) g in
    Helpers.check_bool "precomputed path agrees on support" true (i = 1 || i = 3)
  done

let test_weighted_index_rejects () =
  let g = Rng.create 34 in
  Alcotest.check_raises "empty"
    (Invalid_argument "Dist.weighted_index: empty weights") (fun () ->
      ignore (Dist.weighted_index [||] ~cumulative:None g));
  Alcotest.check_raises "zero total"
    (Invalid_argument "Dist.weighted_index: zero total weight") (fun () ->
      ignore (Dist.weighted_index [| 0.; 0. |] ~cumulative:None g))

let prop_zipf_sample_in_range =
  Helpers.qtest "zipf sample always in [1,n]"
    QCheck.(pair small_int (pair small_int small_int))
    (fun (seed, (n_raw, s_raw)) ->
      let n = 1 + (n_raw mod 50) in
      let s = float_of_int (s_raw mod 4) /. 2. in
      let z = Dist.Zipf.create ~n ~s in
      let g = Rng.create seed in
      let k = Dist.Zipf.sample z g in
      k >= 1 && k <= n)

let suite =
  [
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
    Alcotest.test_case "exponential rejects" `Quick test_exponential_rejects;
    Alcotest.test_case "normal moments" `Quick test_normal_moments;
    Alcotest.test_case "log-normal median" `Quick test_log_normal_median;
    Alcotest.test_case "pareto support" `Quick test_pareto_support;
    Alcotest.test_case "pareto mean" `Quick test_pareto_mean;
    Alcotest.test_case "poisson zero" `Quick test_poisson_zero;
    Alcotest.test_case "poisson small mean" `Quick test_poisson_small_mean;
    Alcotest.test_case "poisson large mean" `Quick test_poisson_large_mean;
    Alcotest.test_case "poisson nonnegative" `Quick test_poisson_nonnegative;
    Alcotest.test_case "geometric" `Quick test_geometric;
    Alcotest.test_case "zipf support and probs" `Quick test_zipf_support_and_probs;
    Alcotest.test_case "zipf sample range and skew" `Quick test_zipf_sample_range_and_skew;
    Alcotest.test_case "zipf uniform when s=0" `Quick test_zipf_uniform_when_s_zero;
    Alcotest.test_case "weighted index" `Quick test_weighted_index;
    Alcotest.test_case "weighted index rejects" `Quick test_weighted_index_rejects;
    prop_zipf_sample_in_range;
  ]
