(* Tests for the edge-list trace importer/exporter. *)

module Workload = Mcss_workload.Workload
module Wio = Mcss_workload.Wio
module Edge_list = Mcss_traces.Edge_list

let with_files edges_content rates_content f =
  let edges = Filename.temp_file "mcss_edges" ".txt" in
  let rates = Filename.temp_file "mcss_rates" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove edges;
      Sys.remove rates)
    (fun () ->
      Out_channel.with_open_text edges (fun oc -> output_string oc edges_content);
      Out_channel.with_open_text rates (fun oc -> output_string oc rates_content);
      f ~edges ~rates)

let test_basic_import () =
  with_files "100 1\n100 2\n101 1\n# comment\n\n102 3\n" "1 50\n2 10\n3 0\n"
    (fun ~edges ~rates ->
      let w, mapping = Edge_list.load ~edges ~rates in
      (* User 3 is inactive: dropped as a topic, its edge with it. *)
      Helpers.check_int "two active topics" 2 (Workload.num_topics w);
      (* User 102 only followed the inactive user: not a subscriber. *)
      Helpers.check_int "two subscribers" 2 (Workload.num_subscribers w);
      Helpers.check_int "three pairs" 3 (Workload.num_pairs w);
      Alcotest.(check (array int)) "topic users" [| 1; 2 |]
        mapping.Edge_list.user_of_topic;
      Alcotest.(check (array int)) "subscriber users" [| 100; 101 |]
        mapping.Edge_list.user_of_subscriber;
      (* Rates follow the densified ids. *)
      Helpers.check_float "rate of user 1" 50. (Workload.event_rate w 0);
      Helpers.check_float "rate of user 2" 10. (Workload.event_rate w 1))

let test_duplicate_edges_collapse () =
  with_files "5 1\n5 1\n5 1\n" "1 7\n" (fun ~edges ~rates ->
      let w, _ = Edge_list.load ~edges ~rates in
      Helpers.check_int "one pair" 1 (Workload.num_pairs w))

let test_tabs_and_sparse_ids () =
  with_files "1000000\t42\n" "42 3\n" (fun ~edges ~rates ->
      let w, mapping = Edge_list.load ~edges ~rates in
      Helpers.check_int "densified" 1 (Workload.num_topics w);
      Alcotest.(check (array int)) "sparse follower id kept" [| 1000000 |]
        mapping.Edge_list.user_of_subscriber)

let expect_parse name edges rates =
  with_files edges rates (fun ~edges ~rates ->
      match Edge_list.load ~edges ~rates with
      | _ -> Alcotest.failf "%s: expected Parse_error" name
      | exception Wio.Parse_error _ -> ())

let test_rejects_malformed () =
  expect_parse "three columns" "1 2 3\n" "1 1\n";
  expect_parse "non-integer" "a b\n" "1 1\n";
  expect_parse "negative user" "-1 2\n" "2 1\n";
  expect_parse "negative count" "1 2\n" "2 -5\n"

let test_roundtrip () =
  let original =
    Helpers.workload ~rates:[ 5.; 3.; 7. ] ~interests:[ [ 0; 2 ]; [ 1 ]; [ 0; 1; 2 ] ]
  in
  let edges = Filename.temp_file "mcss_edges" ".txt" in
  let rates = Filename.temp_file "mcss_rates" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove edges;
      Sys.remove rates)
    (fun () ->
      Edge_list.save original ~edges ~rates;
      let w, _ = Edge_list.load ~edges ~rates in
      Helpers.check_int "topics" 3 (Workload.num_topics w);
      Helpers.check_int "subscribers" 3 (Workload.num_subscribers w);
      Helpers.check_int "pairs" 6 (Workload.num_pairs w);
      Alcotest.(check (array (float 1e-9))) "rates" [| 5.; 3.; 7. |] (Workload.event_rates w);
      (* Interests survive (modulo the disjoint-id export convention). *)
      Alcotest.(check (array int)) "v0 interests" [| 0; 2 |] (Workload.interests w 0))

let prop_roundtrip_random =
  Helpers.qtest ~count:40 "edge-list export/import preserves the workload"
    Helpers.problem_arbitrary (fun p ->
      let original = p.Mcss_core.Problem.workload in
      let edges = Filename.temp_file "mcss_edges" ".txt" in
      let rates = Filename.temp_file "mcss_rates" ".txt" in
      Fun.protect
        ~finally:(fun () ->
          Sys.remove edges;
          Sys.remove rates)
        (fun () ->
          Edge_list.save original ~edges ~rates;
          let w, _ = Edge_list.load ~edges ~rates in
          (* Subscribers with no interests are not representable in an
             edge list; compare the populated ones. *)
          let populated =
            List.filter
              (fun v -> Array.length (Workload.interests original v) > 0)
              (List.init (Workload.num_subscribers original) (fun v -> v))
          in
          Workload.num_topics w = Workload.num_topics original
          && Workload.num_subscribers w = List.length populated
          && Workload.num_pairs w = Workload.num_pairs original
          && Workload.event_rates w = Workload.event_rates original))

let suite =
  [
    Alcotest.test_case "basic import" `Quick test_basic_import;
    Alcotest.test_case "duplicate edges collapse" `Quick test_duplicate_edges_collapse;
    Alcotest.test_case "tabs and sparse ids" `Quick test_tabs_and_sparse_ids;
    Alcotest.test_case "rejects malformed" `Quick test_rejects_malformed;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    prop_roundtrip_random;
  ]
