(* Tests for the EC2-style pricing model (§IV-A numbers). *)

module Instance = Mcss_pricing.Instance
module Cost_model = Mcss_pricing.Cost_model

let test_catalogue () =
  Helpers.check_int "five sizes" 5 (List.length Instance.catalogue);
  Helpers.check_bool "ascending prices" true
    (let rec ascending = function
       | a :: (b :: _ as rest) ->
           a.Instance.hourly_usd <= b.Instance.hourly_usd && ascending rest
       | _ -> true
     in
     ascending Instance.catalogue)

let test_paper_instances () =
  Helpers.check_float "c3.large price" 0.15 Instance.c3_large.Instance.hourly_usd;
  Helpers.check_float "c3.large bw" 64. Instance.c3_large.Instance.bandwidth_mbps;
  Helpers.check_float "c3.xlarge price" 0.30 Instance.c3_xlarge.Instance.hourly_usd;
  Helpers.check_float "c3.xlarge bw" 128. Instance.c3_xlarge.Instance.bandwidth_mbps

let test_find () =
  (match Instance.find "c3.xlarge" with
  | Some i -> Helpers.check_float "found" 0.30 i.Instance.hourly_usd
  | None -> Alcotest.fail "c3.xlarge not found");
  Helpers.check_bool "missing" true (Instance.find "m1.banana" = None)

let test_ec2_defaults () =
  let m = Cost_model.ec2_2014 () in
  Helpers.check_float "per GB" 0.12 m.Cost_model.bandwidth_usd_per_gb;
  Helpers.check_float "message bytes" 200. m.Cost_model.message_bytes;
  Helpers.check_float "horizon" 240. m.Cost_model.horizon_hours;
  Alcotest.(check string) "default instance" "c3.large" m.Cost_model.instance.Instance.name

let test_capacity_events () =
  (* 64 mbps = 8e6 B/s; 240 h = 864000 s; / 200 B per event = 3.456e10. *)
  let m = Cost_model.ec2_2014 () in
  Helpers.check_float "capacity" 3.456e10 (Cost_model.capacity_events m);
  let x = Cost_model.ec2_2014 ~instance:Instance.c3_xlarge () in
  Helpers.check_float "doubles with bandwidth" (2. *. 3.456e10)
    (Cost_model.capacity_events x)

let test_vm_cost () =
  let m = Cost_model.ec2_2014 () in
  (* 10 VMs x $0.15/h x 240 h = $360. *)
  Helpers.check_float "C1" 360. (Cost_model.vm_cost m 10);
  Helpers.check_float "C1 0" 0. (Cost_model.vm_cost m 0)

let test_bandwidth_cost () =
  let m = Cost_model.ec2_2014 () in
  (* 5e9 events x 200 B = 1000 GB -> $120. *)
  Helpers.check_float "C2" 120. (Cost_model.bandwidth_cost m 5e9);
  Helpers.check_float "bytes" 1e12 (Cost_model.bytes_of_events m 5e9);
  Helpers.check_float "GB" 1000. (Cost_model.gb_of_events m 5e9)

let test_total_cost () =
  let m = Cost_model.ec2_2014 () in
  Helpers.check_float "C1+C2" 480. (Cost_model.total_cost m ~vms:10 ~bandwidth_events:5e9)

let suite =
  [
    Alcotest.test_case "catalogue" `Quick test_catalogue;
    Alcotest.test_case "paper instances" `Quick test_paper_instances;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "ec2 defaults" `Quick test_ec2_defaults;
    Alcotest.test_case "capacity in events" `Quick test_capacity_events;
    Alcotest.test_case "vm cost" `Quick test_vm_cost;
    Alcotest.test_case "bandwidth cost" `Quick test_bandwidth_cost;
    Alcotest.test_case "total cost" `Quick test_total_cost;
  ]
