(* Tests for Splitmix and Rng: determinism, ranges, and basic statistical
   sanity. *)

module Splitmix = Mcss_prng.Splitmix
module Rng = Mcss_prng.Rng

let test_determinism () =
  let a = Splitmix.create 42L and b = Splitmix.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Splitmix.next a) (Splitmix.next b)
  done

let test_distinct_seeds () =
  let a = Splitmix.create 1L and b = Splitmix.create 2L in
  let differs = ref false in
  for _ = 1 to 10 do
    if Splitmix.next a <> Splitmix.next b then differs := true
  done;
  Helpers.check_bool "streams differ" true !differs

let test_copy_replays () =
  let a = Splitmix.create 7L in
  ignore (Splitmix.next a);
  let b = Splitmix.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy replays" (Splitmix.next a) (Splitmix.next b)
  done

let test_split_independent () =
  let a = Splitmix.create 7L in
  let child = Splitmix.split a in
  let differs = ref false in
  for _ = 1 to 10 do
    if Splitmix.next a <> Splitmix.next child then differs := true
  done;
  Helpers.check_bool "split stream differs from parent" true !differs

let test_bit_balance () =
  (* Each of the 64 bit positions should be set roughly half the time. *)
  let g = Splitmix.create 1234L in
  let n = 2000 in
  let counts = Array.make 64 0 in
  for _ = 1 to n do
    let x = Splitmix.next g in
    for bit = 0 to 63 do
      if Int64.logand (Int64.shift_right_logical x bit) 1L = 1L then
        counts.(bit) <- counts.(bit) + 1
    done
  done;
  Array.iteri
    (fun bit c ->
      if c < n / 3 || c > 2 * n / 3 then
        Alcotest.failf "bit %d set %d/%d times" bit c n)
    counts

let test_int_bounds () =
  let g = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.int g 7 in
    if x < 0 || x >= 7 then Alcotest.failf "Rng.int out of range: %d" x
  done

let test_int_rejects_bad_bound () =
  let g = Rng.create 5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int g 0))

let test_int_covers_all_values () =
  let g = Rng.create 5 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int g 5) <- true
  done;
  Array.iteri (fun i s -> Helpers.check_bool (Printf.sprintf "value %d seen" i) true s) seen

let test_int_in () =
  let g = Rng.create 6 in
  for _ = 1 to 500 do
    let x = Rng.int_in g (-3) 4 in
    if x < -3 || x > 4 then Alcotest.failf "int_in out of range: %d" x
  done;
  Helpers.check_int "degenerate range" 9 (Rng.int_in g 9 9)

let test_unit_float_range () =
  let g = Rng.create 8 in
  for _ = 1 to 1000 do
    let x = Rng.unit_float g in
    if x < 0. || x >= 1. then Alcotest.failf "unit_float out of range: %g" x
  done

let test_unit_float_pos_range () =
  let g = Rng.create 9 in
  for _ = 1 to 1000 do
    let x = Rng.unit_float_pos g in
    if x <= 0. || x > 1. then Alcotest.failf "unit_float_pos out of range: %g" x
  done

let test_unit_float_mean () =
  let g = Rng.create 10 in
  let n = 10_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.unit_float g
  done;
  let mean = !sum /. float_of_int n in
  Helpers.check_bool "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_bernoulli_extremes () =
  let g = Rng.create 11 in
  for _ = 1 to 100 do
    Helpers.check_bool "p=0 never" false (Rng.bernoulli g 0.);
    Helpers.check_bool "p=1 always" true (Rng.bernoulli g 1.)
  done

let test_bernoulli_rejects () =
  let g = Rng.create 11 in
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Rng.bernoulli: p outside [0,1]") (fun () ->
      ignore (Rng.bernoulli g 1.5))

let test_shuffle_is_permutation () =
  let g = Rng.create 12 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle_in_place g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_sample_without_replacement_distinct () =
  let g = Rng.create 13 in
  (* Sparse branch. *)
  let s = Rng.sample_without_replacement g 5 1000 in
  Helpers.check_int "size" 5 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 1 to 4 do
    Helpers.check_bool "distinct" true (sorted.(i) <> sorted.(i - 1))
  done;
  (* Dense branch. *)
  let d = Rng.sample_without_replacement g 90 100 in
  Helpers.check_int "dense size" 90 (Array.length d);
  let sorted = Array.copy d in
  Array.sort compare sorted;
  for i = 1 to 89 do
    Helpers.check_bool "dense distinct" true (sorted.(i) <> sorted.(i - 1))
  done;
  Array.iter (fun x -> Helpers.check_bool "in range" true (x >= 0 && x < 100)) d

let test_sample_without_replacement_edges () =
  let g = Rng.create 14 in
  Helpers.check_int "k=0" 0 (Array.length (Rng.sample_without_replacement g 0 10));
  let all = Rng.sample_without_replacement g 10 10 in
  let sorted = Array.copy all in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "k=n is a permutation" (Array.init 10 (fun i -> i)) sorted;
  Alcotest.check_raises "k>n" (Invalid_argument "Rng.sample_without_replacement")
    (fun () -> ignore (Rng.sample_without_replacement g 11 10))

let suite =
  [
    Alcotest.test_case "splitmix determinism" `Quick test_determinism;
    Alcotest.test_case "splitmix distinct seeds" `Quick test_distinct_seeds;
    Alcotest.test_case "splitmix copy replays" `Quick test_copy_replays;
    Alcotest.test_case "splitmix split independent" `Quick test_split_independent;
    Alcotest.test_case "splitmix bit balance" `Quick test_bit_balance;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects bad bound" `Quick test_int_rejects_bad_bound;
    Alcotest.test_case "int covers all values" `Quick test_int_covers_all_values;
    Alcotest.test_case "int_in" `Quick test_int_in;
    Alcotest.test_case "unit_float range" `Quick test_unit_float_range;
    Alcotest.test_case "unit_float_pos range" `Quick test_unit_float_pos_range;
    Alcotest.test_case "unit_float mean" `Quick test_unit_float_mean;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "bernoulli rejects" `Quick test_bernoulli_rejects;
    Alcotest.test_case "shuffle is permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "sample w/o replacement distinct" `Quick
      test_sample_without_replacement_distinct;
    Alcotest.test_case "sample w/o replacement edges" `Quick
      test_sample_without_replacement_edges;
  ]
