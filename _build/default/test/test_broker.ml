(* Tests for the message-level broker runtime. *)

module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Allocation = Mcss_core.Allocation
module Solver = Mcss_core.Solver
module Message = Mcss_broker.Message
module Broker = Mcss_broker.Broker
module Fleet = Mcss_broker.Fleet

let msg ?(size = 100) id topic time = Message.make ~id ~topic ~publish_time:time ~size_bytes:size

let test_message_validation () =
  Alcotest.check_raises "negative id" (Invalid_argument "Message.make: negative id")
    (fun () -> ignore (msg (-1) 0 0.));
  Alcotest.check_raises "negative size" (Invalid_argument "Message.make: negative size")
    (fun () -> ignore (Message.make ~id:0 ~topic:0 ~publish_time:0. ~size_bytes:(-1)));
  let a = msg 0 0 1. and b = msg 1 0 1. and c = msg 2 0 0.5 in
  Helpers.check_bool "time order" true (Message.compare_by_time c a < 0);
  Helpers.check_bool "id breaks ties" true (Message.compare_by_time a b < 0)

let test_broker_subscription_table () =
  let b = Broker.create ~id:3 ~bytes_per_horizon:1000. in
  Helpers.check_int "id" 3 (Broker.id b);
  Broker.subscribe b ~topic:1 ~subscriber:10;
  Broker.subscribe b ~topic:1 ~subscriber:11;
  Broker.subscribe b ~topic:2 ~subscriber:10;
  Helpers.check_int "pairs" 3 (Broker.num_pairs b);
  Helpers.check_bool "hosts 1" true (Broker.hosts b 1);
  Helpers.check_bool "not 5" false (Broker.hosts b 5);
  Alcotest.check_raises "duplicate pair"
    (Invalid_argument "Broker.subscribe: pair (1, 10) already on broker 3") (fun () ->
      Broker.subscribe b ~topic:1 ~subscriber:10)

let test_broker_delivery_and_accounting () =
  let b = Broker.create ~id:0 ~bytes_per_horizon:1000. in
  Broker.subscribe b ~topic:0 ~subscriber:5;
  Broker.subscribe b ~topic:0 ~subscriber:6;
  let deliveries = Broker.ingest b (msg 0 0 0.) in
  Helpers.check_int "two copies" 2 (List.length deliveries);
  List.iter
    (fun d ->
      (* 3 x 100 bytes of work at 1000 B/horizon = 0.3 horizons. *)
      Helpers.check_float "departure" 0.3 d.Broker.depart_time)
    deliveries;
  let s = Broker.stats b in
  Helpers.check_int "bytes in" 100 s.Broker.bytes_in;
  Helpers.check_int "bytes out" 200 s.Broker.bytes_out;
  Helpers.check_int "deliveries" 2 s.Broker.deliveries_out;
  Helpers.check_float "utilization" 0.3 (Broker.utilization b ~horizon:1.)

let test_broker_queueing_delay () =
  let b = Broker.create ~id:0 ~bytes_per_horizon:1000. in
  Broker.subscribe b ~topic:0 ~subscriber:1;
  (* Each message: 2 x 100 bytes = 0.2 horizons of work. Back-to-back
     arrivals at t=0 and t=0.05: the second queues behind the first. *)
  let d1 = List.hd (Broker.ingest b (msg 0 0 0.)) in
  let d2 = List.hd (Broker.ingest b (msg 1 0 0.05)) in
  Helpers.check_float "first departs after service" 0.2 d1.Broker.depart_time;
  Helpers.check_float "second waits in queue" 0.4 d2.Broker.depart_time;
  Helpers.check_float "max delay recorded" 0.35 (Broker.stats b).Broker.max_queue_delay

let test_broker_ignores_unsubscribed_topic () =
  let b = Broker.create ~id:0 ~bytes_per_horizon:1000. in
  Broker.subscribe b ~topic:0 ~subscriber:1;
  Helpers.check_int "no deliveries" 0 (List.length (Broker.ingest b (msg 0 7 0.)));
  Helpers.check_int "no work" 0 (Broker.stats b).Broker.bytes_in

let test_broker_rejects_time_travel () =
  let b = Broker.create ~id:0 ~bytes_per_horizon:1000. in
  ignore (Broker.ingest b (msg 0 0 0.5));
  Alcotest.check_raises "out of order"
    (Invalid_argument "Broker.ingest: messages must arrive in time order") (fun () ->
      ignore (Broker.ingest b (msg 1 0 0.4)))

let solved_fig1 () =
  let p = Helpers.fig1_problem ~capacity:50. () in
  let r = Solver.solve p in
  (p, r)

let test_fleet_matches_simulator_counts () =
  let p, r = solved_fig1 () in
  let fleet = Fleet.build p r.Solver.allocation ~message_bytes:1 in
  let report = Fleet.run fleet Fleet.default_config in
  (* Same schedule as the counting simulator (30 publications/horizon). *)
  Helpers.check_int "published" 30 report.Fleet.published;
  Alcotest.(check (array int)) "received like the simulator" [| 30; 30; 10 |]
    report.Fleet.received;
  (* Deliveries = selected pairs' traffic = 70 events of egress. *)
  Helpers.check_int "deliveries" 70 report.Fleet.deliveries;
  (* Bytes moved by brokers = analytical bandwidth (120 events x 1 B). *)
  let total_bytes =
    List.fold_left
      (fun acc (_, s) -> acc + s.Broker.bytes_in + s.Broker.bytes_out)
      0 report.Fleet.broker_stats
  in
  Helpers.check_int "traffic = objective" 120 total_bytes

let test_fleet_routing_table () =
  let p, r = solved_fig1 () in
  let fleet = Fleet.build p r.Solver.allocation ~message_bytes:1 in
  Helpers.check_int "three brokers" 3 (Fleet.num_brokers fleet);
  (* Every topic must be routable, and only to hosting brokers. *)
  for t = 0 to 1 do
    let brokers = Fleet.brokers_for_topic fleet t in
    Helpers.check_bool "routable" true (brokers <> [])
  done;
  (* Topic 0 is split (two pairs, one per VM); topic 1 lives on one VM. *)
  Helpers.check_int "t0 on two brokers" 2 (List.length (Fleet.brokers_for_topic fleet 0));
  Helpers.check_int "t1 on one broker" 1 (List.length (Fleet.brokers_for_topic fleet 1))

let test_fleet_latency_reflects_utilization () =
  let p, r = solved_fig1 () in
  (* A healthy-capacity fleet against a barely-provisioned one: same
     allocation, same traffic, but a 10x slower wire must show higher
     latency. The capacity is in the problem, so rebuild with a scaled
     problem but identical placements. *)
  let report_at ~capacity =
    let p' =
      Problem.create ~workload:p.Problem.workload ~tau:p.Problem.tau ~capacity
        Problem.unit_costs
    in
    let fleet = Fleet.build p' r.Solver.allocation ~message_bytes:1 in
    Fleet.run fleet Fleet.default_config
  in
  let fast = report_at ~capacity:500. in
  let slow = report_at ~capacity:50. in
  match (fast.Fleet.latency, slow.Fleet.latency) with
  | Some f, Some s ->
      Helpers.check_bool "slower wire, higher p99" true (s.Fleet.p99 > f.Fleet.p99);
      Helpers.check_bool "utilization higher too" true
        (slow.Fleet.max_utilization > fast.Fleet.max_utilization)
  | _ -> Alcotest.fail "expected latency summaries"

let test_fleet_poisson_reproducible () =
  let p, r = solved_fig1 () in
  let config = { Fleet.default_config with Fleet.arrivals = Fleet.Poisson 5 } in
  let run () = Fleet.run (Fleet.build p r.Solver.allocation ~message_bytes:1) config in
  let a = run () and b = run () in
  Helpers.check_int "same published" a.Fleet.published b.Fleet.published;
  Alcotest.(check (array int)) "same received" a.Fleet.received b.Fleet.received

let test_md1_formulas () =
  let module Q = Mcss_broker.Queueing in
  Helpers.check_float "no load waits nothing" 0. (Q.md1_mean_wait ~utilization:0. ~service_time:1.);
  (* rho = 0.5, s = 2: wait = 0.5*2 / (2*0.5) = 1; sojourn = 3. *)
  Helpers.check_float "wait" 1. (Q.md1_mean_wait ~utilization:0.5 ~service_time:2.);
  Helpers.check_float "sojourn" 3. (Q.md1_mean_sojourn ~utilization:0.5 ~service_time:2.);
  Helpers.check_float "mm1 envelope" 4. (Q.mm1_mean_sojourn ~utilization:0.5 ~service_time:2.);
  Alcotest.check_raises "rho >= 1" (Invalid_argument "Queueing: utilization must be in [0, 1)")
    (fun () -> ignore (Q.md1_mean_wait ~utilization:1. ~service_time:1.))

let test_broker_latency_matches_md1 () =
  (* One topic, one subscriber, Poisson arrivals: the broker is exactly
     an M/D/1 queue. ev = 4000 events/horizon; each message costs
     2 event-units of wire, BC = 16000 -> rho = 0.5,
     s = 2/16000 = 1.25e-4 horizons; theory says mean sojourn
     = s * (1 + rho/(2(1-rho))) = 1.875e-4. *)
  let module Q = Mcss_broker.Queueing in
  let w = Helpers.workload ~rates:[ 4000. ] ~interests:[ [ 0 ] ] in
  let p =
    Mcss_core.Problem.create ~workload:w ~tau:4000. ~capacity:16000.
      Mcss_core.Problem.unit_costs
  in
  let r = Solver.solve p in
  let fleet = Fleet.build p r.Solver.allocation ~message_bytes:1 in
  let config =
    { Fleet.default_config with Fleet.arrivals = Fleet.Poisson 123;
      latency_reservoir = 100_000 }
  in
  let report = Fleet.run fleet config in
  match report.Fleet.latency with
  | None -> Alcotest.fail "no latency measured"
  | Some l ->
      let service_time = 2. /. 16000. in
      let predicted = Q.md1_mean_sojourn ~utilization:0.5 ~service_time in
      let err = Float.abs (l.Fleet.mean -. predicted) /. predicted in
      if err > 0.15 then
        Alcotest.failf "measured mean %.3e vs M/D/1 %.3e (%.0f%% off)" l.Fleet.mean
          predicted (100. *. err);
      (* And safely below the M/M/1 envelope's tail behaviour. *)
      Helpers.check_bool "below the M/M/1 envelope" true
        (l.Fleet.mean < Q.mm1_mean_sojourn ~utilization:0.5 ~service_time *. 1.15)

let prop_fleet_agrees_with_simulator =
  Helpers.qtest ~count:40 "fleet traffic equals the counting simulator's"
    Helpers.problem_arbitrary (fun p ->
      let r = Solver.solve p in
      let fleet = Fleet.build p r.Solver.allocation ~message_bytes:1 in
      let report = Fleet.run fleet Fleet.default_config in
      let sim =
        Mcss_sim.Simulator.run p r.Solver.allocation Mcss_sim.Simulator.default_config
      in
      report.Fleet.received = sim.Mcss_sim.Simulator.delivered
      && report.Fleet.published = sim.Mcss_sim.Simulator.events_published)

let suite =
  [
    Alcotest.test_case "message validation" `Quick test_message_validation;
    Alcotest.test_case "broker subscription table" `Quick test_broker_subscription_table;
    Alcotest.test_case "broker delivery and accounting" `Quick
      test_broker_delivery_and_accounting;
    Alcotest.test_case "broker queueing delay" `Quick test_broker_queueing_delay;
    Alcotest.test_case "broker ignores unsubscribed" `Quick
      test_broker_ignores_unsubscribed_topic;
    Alcotest.test_case "broker rejects time travel" `Quick test_broker_rejects_time_travel;
    Alcotest.test_case "fleet matches simulator counts" `Quick
      test_fleet_matches_simulator_counts;
    Alcotest.test_case "fleet routing table" `Quick test_fleet_routing_table;
    Alcotest.test_case "fleet latency vs utilization" `Quick
      test_fleet_latency_reflects_utilization;
    Alcotest.test_case "fleet poisson reproducible" `Quick test_fleet_poisson_reproducible;
    Alcotest.test_case "md1 formulas" `Quick test_md1_formulas;
    Alcotest.test_case "broker latency matches M/D/1" `Quick test_broker_latency_matches_md1;
    prop_fleet_agrees_with_simulator;
  ]
