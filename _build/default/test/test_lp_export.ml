(* Tests for the CPLEX-LP export of the MCSS integer program. *)

module Problem = Mcss_core.Problem
module Lp_export = Mcss_exact.Lp_export

let fig1_lp () =
  let p = Helpers.fig1_problem ~capacity:50. () in
  Lp_export.to_string p ~max_vms:3 ~vm_usd:36. ~per_event_usd:0.001

let test_structure () =
  let text, dims = fig1_lp () in
  Helpers.check_int "fleet bound" 3 dims.Lp_export.vms;
  (* fig1: 2 topics, 3 subscribers, 5 pairs, B = 3.
     Binaries: y: 3, z: 2*3 = 6, w: 5, x: 5*3 = 15 -> 29. *)
  Helpers.check_int "binaries" 29 dims.Lp_export.variables;
  (* Constraints: sat 3, cnt 5, inc 15, use 6, cap 3, sym 2 -> 34. *)
  Helpers.check_int "constraints" 34 dims.Lp_export.constraints;
  List.iter
    (fun needle ->
      Helpers.check_bool (needle ^ " present") true (Helpers.contains ~needle text))
    [
      "Minimize"; "Subject To"; "Binary"; "End";
      (* Satisfaction of v0: 20 w_0_0 + 10 w_1_0 >= 30. *)
      "sat_0: + 20 w_0_0 + 10 w_1_0 >= 30";
      (* v2 has tau_v = 10 (capped). *)
      "sat_2: + 10 w_1_2 >= 10";
      (* Per-VM capacity right-hand side. *)
      "<= 50";
      (* Symmetry chain. *)
      "sym_0: y_0 - y_1 >= 0";
    ]

let test_counting_link () =
  let text, _ = fig1_lp () in
  Helpers.check_bool "w bounded by placements" true
    (Helpers.contains ~needle:"cnt_0_0: w_0_0 - x_0_0_0 - x_0_0_1 - x_0_0_2 <= 0" text)

let test_objective_prices () =
  let text, _ = fig1_lp () in
  Helpers.check_bool "vm price" true (Helpers.contains ~needle:"36 y_0" text);
  (* Outgoing price of a topic-0 pair: 0.001 * 20 = 0.02. *)
  Helpers.check_bool "bandwidth price" true (Helpers.contains ~needle:"0.02 x_0_0_0" text)

let test_rejects_bad_bound () =
  let p = Helpers.fig1_problem () in
  Alcotest.check_raises "zero" (Invalid_argument "Lp_export.to_string: max_vms must be positive")
    (fun () -> ignore (Lp_export.to_string p ~max_vms:0 ~vm_usd:1. ~per_event_usd:0.))

let test_save () =
  let p = Helpers.fig1_problem ~capacity:50. () in
  let path = Filename.temp_file "mcss_lp" ".lp" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let dims = Lp_export.save p ~max_vms:2 ~vm_usd:1. ~per_event_usd:0. ~path in
      Helpers.check_int "bound" 2 dims.Lp_export.vms;
      let content = In_channel.with_open_text path In_channel.input_all in
      Helpers.check_bool "ends with End" true (Helpers.contains ~needle:"End" content))

let prop_dimensions_formula =
  Helpers.qtest ~count:40 "variable/constraint counts match the closed form"
    Helpers.tiny_problem_arbitrary (fun p ->
      let w = p.Problem.workload in
      let module W = Mcss_workload.Workload in
      let b = 3 in
      let _, dims = Lp_export.to_string p ~max_vms:b ~vm_usd:1. ~per_event_usd:0.01 in
      let pairs = W.num_pairs w in
      let followed =
        List.length
          (List.filter
             (fun t -> W.num_followers w t > 0)
             (List.init (W.num_topics w) (fun t -> t)))
      in
      let subscribed =
        List.length
          (List.filter
             (fun v -> Array.length (W.interests w v) > 0)
             (List.init (W.num_subscribers w) (fun v -> v)))
      in
      dims.Lp_export.variables = b + (followed * b) + pairs + (pairs * b)
      && dims.Lp_export.constraints
         = subscribed + pairs + (pairs * b) + (followed * b) + b + (b - 1))

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "counting link" `Quick test_counting_link;
    Alcotest.test_case "objective prices" `Quick test_objective_prices;
    Alcotest.test_case "rejects bad bound" `Quick test_rejects_bad_bound;
    Alcotest.test_case "save" `Quick test_save;
    prop_dimensions_formula;
  ]
