(* Tests for the MCSS problem instance: construction, thresholds,
   feasibility screening, cost plumbing. *)

module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Cost_model = Mcss_pricing.Cost_model

let test_create_validates () =
  let w = Helpers.fig1_workload () in
  Alcotest.check_raises "tau" (Invalid_argument "Problem.create: tau must be positive")
    (fun () -> ignore (Problem.create ~workload:w ~tau:0. ~capacity:10. Problem.unit_costs));
  Alcotest.check_raises "capacity"
    (Invalid_argument "Problem.create: capacity must be positive") (fun () ->
      ignore (Problem.create ~workload:w ~tau:1. ~capacity:0. Problem.unit_costs))

let test_tau_v () =
  let p = Helpers.fig1_problem () in
  (* v0 and v1 subscribe to 30 events/min total; v2 only to 10. *)
  Helpers.check_float "v0" 30. (Problem.tau_v p 0);
  Helpers.check_float "v2 capped" 10. (Problem.tau_v p 2)

let test_unit_costs () =
  let p = Helpers.fig1_problem () in
  Helpers.check_float "C1 only" 3. (Problem.cost p ~vms:3 ~bandwidth:1e9)

let test_linear_costs () =
  let w = Helpers.fig1_workload () in
  let p =
    Problem.create ~workload:w ~tau:30. ~capacity:80.
      (Problem.linear_costs ~vm_usd:10. ~per_event_usd:0.5)
  in
  Helpers.check_float "cost" 80. (Problem.cost p ~vms:3 ~bandwidth:100.)

let test_of_pricing_capacity () =
  let w = Helpers.fig1_workload () in
  let m = Cost_model.ec2_2014 () in
  let p = Problem.of_pricing ~workload:w ~tau:30. m in
  Helpers.check_float "derived BC" (Cost_model.capacity_events m) p.Problem.capacity;
  let p2 = Problem.of_pricing ~capacity_events:1234. ~workload:w ~tau:30. m in
  Helpers.check_float "override BC" 1234. p2.Problem.capacity;
  Helpers.check_float "C1 via pricing" (Cost_model.vm_cost m 2) (Problem.cost p ~vms:2 ~bandwidth:0.)

let test_pair_fits_empty_vm () =
  let p = Helpers.fig1_problem ~capacity:35. () in
  (* t0 needs 2x20 = 40 > 35; t1 needs 20 <= 35. *)
  Helpers.check_bool "t0 too big" false (Problem.pair_fits_empty_vm p 0);
  Helpers.check_bool "t1 fits" true (Problem.pair_fits_empty_vm p 1)

let test_infeasible_subscribers () =
  (* BC = 35: topic 0 (rate 20) cannot be placed at all. v0/v1 need 30
     but can only reach 10 via t1 -> infeasible; v2 needs 10 -> fine. *)
  let p = Helpers.fig1_problem ~capacity:35. () in
  Alcotest.(check (list int)) "v0 v1 stuck" [ 0; 1 ] (Problem.infeasible_subscribers p);
  let ok = Helpers.fig1_problem ~capacity:80. () in
  Alcotest.(check (list int)) "all fine" [] (Problem.infeasible_subscribers ok)

let test_epsilon_scales_with_capacity () =
  let p1 = Helpers.fig1_problem ~capacity:1. () in
  let p2 = Helpers.fig1_problem ~capacity:1e6 () in
  Helpers.check_bool "scales" true (Problem.epsilon p2 > Problem.epsilon p1)

let suite =
  [
    Alcotest.test_case "create validates" `Quick test_create_validates;
    Alcotest.test_case "tau_v" `Quick test_tau_v;
    Alcotest.test_case "unit costs" `Quick test_unit_costs;
    Alcotest.test_case "linear costs" `Quick test_linear_costs;
    Alcotest.test_case "of_pricing" `Quick test_of_pricing_capacity;
    Alcotest.test_case "pair fits empty VM" `Quick test_pair_fits_empty_vm;
    Alcotest.test_case "infeasible subscribers" `Quick test_infeasible_subscribers;
    Alcotest.test_case "epsilon scales" `Quick test_epsilon_scales_with_capacity;
  ]
