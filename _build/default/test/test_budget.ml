(* Tests for the fixed-budget satisfaction maximiser (the dual problem,
   after the paper's reference [9]). *)

module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Allocation = Mcss_core.Allocation
module Solver = Mcss_core.Solver
module Budget = Mcss_core.Budget

let test_zero_budget () =
  let p = Helpers.fig1_problem ~capacity:50. () in
  let r = Budget.solve p ~budget:0 in
  Helpers.check_int "nobody satisfied" 0 r.Budget.num_satisfied;
  Helpers.check_int "no VMs" 0 (Allocation.num_vms r.Budget.allocation)

let test_ample_budget_satisfies_all () =
  let p = Helpers.fig1_problem ~capacity:50. () in
  let full = Solver.solve p in
  let r = Budget.solve p ~budget:full.Solver.num_vms in
  Helpers.check_int "everyone satisfied" 3 r.Budget.num_satisfied;
  Helpers.check_bool "within budget" true
    (Allocation.num_vms r.Budget.allocation <= full.Solver.num_vms)

let test_partial_budget_prefers_cheap_subscribers () =
  (* fig1 with BC=50: the full solution needs 3 VMs. With 1 VM, only the
     cheap subscriber (v2, needing just topic 1 at rate 10) fits along
     with at most one expensive one. *)
  let p = Helpers.fig1_problem ~capacity:50. () in
  let r = Budget.solve p ~budget:1 in
  Helpers.check_bool "v2 admitted" true r.Budget.satisfied.(2);
  Helpers.check_bool "not everyone" true (r.Budget.num_satisfied < 3);
  Helpers.check_int "one VM" 1 (Allocation.num_vms r.Budget.allocation)

let test_negative_budget_rejected () =
  let p = Helpers.fig1_problem () in
  Alcotest.check_raises "negative" (Invalid_argument "Budget.solve: negative budget")
    (fun () -> ignore (Budget.solve p ~budget:(-1)))

let test_no_interest_subscribers_free () =
  let w = Helpers.workload ~rates:[ 5. ] ~interests:[ []; [ 0 ] ] in
  let p = Problem.create ~workload:w ~tau:5. ~capacity:100. Problem.unit_costs in
  let r = Budget.solve p ~budget:0 in
  Helpers.check_bool "empty subscriber satisfied" true r.Budget.satisfied.(0);
  Helpers.check_int "count" 1 r.Budget.num_satisfied

let test_satisfaction_curve_monotone () =
  let rng = Mcss_prng.Rng.create 23 in
  let p =
    Helpers.random_problem rng ~num_topics:40 ~num_subscribers:80 ~max_rate:20
      ~max_interests:6 ~tau:40. ~capacity:150.
  in
  let curve = Budget.satisfaction_curve p ~budgets:[ 0; 1; 2; 4; 8; 16; 32 ] in
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Helpers.check_bool "non-decreasing in budget" true (monotone curve)

(* The budget solver's claims, checked from first principles: admitted
   subscribers really receive tau_v, capacity and budget hold. *)
let check_result (p : Problem.t) budget (r : Budget.result) =
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let delivered = Array.make (Workload.num_subscribers w) 0. in
  let over = ref false in
  Array.iter
    (fun vm ->
      let seen = Hashtbl.create 16 in
      let load = ref 0. in
      Allocation.iter_vm_pairs vm (fun t v ->
          let ev = Workload.event_rate w t in
          delivered.(v) <- delivered.(v) +. ev;
          load := !load +. ev;
          if not (Hashtbl.mem seen t) then begin
            Hashtbl.add seen t ();
            load := !load +. ev
          end);
      if !load > p.Problem.capacity +. eps then over := true)
    (Allocation.vms r.Budget.allocation);
  (not !over)
  && Allocation.num_vms r.Budget.allocation <= budget
  && Array.for_all
       (fun v ->
         (not r.Budget.satisfied.(v)) || delivered.(v) +. eps >= Problem.tau_v p v)
       (Array.init (Workload.num_subscribers w) (fun v -> v))

let prop_budget_solutions_sound =
  Helpers.qtest ~count:80 "budgeted solutions satisfy exactly whom they claim"
    Helpers.problem_arbitrary (fun p ->
      List.for_all
        (fun budget -> check_result p budget (Budget.solve p ~budget))
        [ 0; 1; 3; 10 ])

let prop_ample_budget_satisfies_everyone =
  (* One VM per selected pair is always enough room for the greedy to
     admit every subscriber (each pair alone fits an empty VM whenever
     the instance is feasible at all). *)
  Helpers.qtest ~count:60 "a pair-per-VM budget satisfies everyone"
    Helpers.problem_arbitrary (fun p ->
      let gsp = Mcss_core.Selection.gsp p in
      let r = Budget.solve p ~budget:gsp.Mcss_core.Selection.num_pairs in
      r.Budget.num_satisfied = Workload.num_subscribers p.Problem.workload)

let suite =
  [
    Alcotest.test_case "zero budget" `Quick test_zero_budget;
    Alcotest.test_case "ample budget satisfies all" `Quick test_ample_budget_satisfies_all;
    Alcotest.test_case "partial budget prefers cheap" `Quick
      test_partial_budget_prefers_cheap_subscribers;
    Alcotest.test_case "negative budget rejected" `Quick test_negative_budget_rejected;
    Alcotest.test_case "no-interest subscribers free" `Quick test_no_interest_subscribers_free;
    Alcotest.test_case "satisfaction curve monotone" `Quick test_satisfaction_curve_monotone;
    prop_budget_solutions_sound;
    prop_ample_budget_satisfies_everyone;
  ]
