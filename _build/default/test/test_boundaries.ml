(* Boundary and robustness cases across the pipeline: exact capacity
   fits, epsilon behaviour, degenerate workloads, extreme thresholds. *)

module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Selection = Mcss_core.Selection
module Allocation = Mcss_core.Allocation
module Solver = Mcss_core.Solver
module Verifier = Mcss_core.Verifier

let solve_and_verify p =
  let r = Solver.solve p in
  ignore (Verifier.check_exn p r.Solver.selection r.Solver.allocation);
  r

let test_pair_exactly_fills_vm () =
  (* 2·ev = BC exactly: one pair per VM, no epsilon accident. *)
  let w = Helpers.workload ~rates:[ 25. ] ~interests:[ [ 0 ]; [ 0 ] ] in
  let p = Problem.create ~workload:w ~tau:25. ~capacity:50. Problem.unit_costs in
  let r = solve_and_verify p in
  Helpers.check_int "two single-pair VMs" 2 r.Solver.num_vms;
  Helpers.check_float "both full" 100. r.Solver.bandwidth

let test_group_exactly_fills_vm () =
  (* (k+1)·ev = BC for k = 4: the whole group fits with zero slack. *)
  let w =
    Helpers.workload ~rates:[ 10. ] ~interests:[ [ 0 ]; [ 0 ]; [ 0 ]; [ 0 ] ]
  in
  let p = Problem.create ~workload:w ~tau:10. ~capacity:50. Problem.unit_costs in
  let r = solve_and_verify p in
  Helpers.check_int "one VM" 1 r.Solver.num_vms

let test_single_subscriber_single_topic () =
  let w = Helpers.workload ~rates:[ 7. ] ~interests:[ [ 0 ] ] in
  let p = Problem.create ~workload:w ~tau:100. ~capacity:14. Problem.unit_costs in
  let r = solve_and_verify p in
  Helpers.check_int "one VM" 1 r.Solver.num_vms;
  Helpers.check_int "one pair" 1 r.Solver.selection.Selection.num_pairs

let test_all_subscribers_interestless () =
  let w = Helpers.workload ~rates:[ 5. ] ~interests:[ []; []; [] ] in
  let p = Problem.create ~workload:w ~tau:10. ~capacity:100. Problem.unit_costs in
  let r = solve_and_verify p in
  Helpers.check_int "no VMs at all" 0 r.Solver.num_vms;
  Helpers.check_float "no traffic" 0. r.Solver.bandwidth

let test_tiny_fractional_tau () =
  (* tau far below every rate: the min-rate clause governs everywhere. *)
  let w = Helpers.workload ~rates:[ 100.; 50. ] ~interests:[ [ 0; 1 ]; [ 1 ] ] in
  let p = Problem.create ~workload:w ~tau:0.25 ~capacity:500. Problem.unit_costs in
  let r = solve_and_verify p in
  (* Each subscriber takes exactly its cheapest topic. *)
  Helpers.check_int "two pairs" 2 r.Solver.selection.Selection.num_pairs;
  Helpers.check_float "cheapest covers" 100. r.Solver.selection.Selection.outgoing_rate

let test_huge_tau_takes_everything () =
  let rng = Mcss_prng.Rng.create 61 in
  let w =
    Helpers.random_workload rng ~num_topics:20 ~num_subscribers:30 ~max_rate:10
      ~max_interests:5
  in
  let p = Problem.create ~workload:w ~tau:1e12 ~capacity:1e6 Problem.unit_costs in
  let r = solve_and_verify p in
  Helpers.check_int "every pair selected" (Workload.num_pairs w)
    r.Solver.selection.Selection.num_pairs

let test_fractional_rates_pipeline () =
  (* Non-integral rates exercise the float paths end to end. *)
  let w =
    Helpers.workload ~rates:[ 0.5; 1.25; 3.75 ] ~interests:[ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ]
  in
  let p = Problem.create ~workload:w ~tau:2. ~capacity:10. Problem.unit_costs in
  ignore (solve_and_verify p);
  (* The reference agrees on fractional instances too. *)
  let a = Selection.gsp p and b = Selection.gsp_reference p in
  Helpers.check_bool "gsp = reference on fractional rates" true
    (a.Selection.chosen = b.Selection.chosen)

let test_epsilon_tolerates_accumulated_rounding () =
  (* Many small pairs summing to exactly BC: incremental accounting must
     not spuriously overflow the capacity check. *)
  let n = 1000 in
  let w =
    Workload.create
      ~event_rates:(Array.make n 0.1)
      ~interests:(Array.init n (fun t -> [| t |]))
  in
  (* Each pair costs 0.2; 500 pairs fill a VM of capacity 100... wait:
     500 * 0.2 = 100 with ~500 incoming streams included pairwise. Use a
     capacity that floats cannot hit exactly. *)
  let p = Problem.create ~workload:w ~tau:0.1 ~capacity:100.3 Problem.unit_costs in
  ignore (solve_and_verify p)

let test_identical_rates_stable_tie_breaks () =
  let w =
    Helpers.workload ~rates:[ 5.; 5.; 5.; 5. ] ~interests:[ [ 0; 1; 2; 3 ] ]
  in
  let p = Problem.create ~workload:w ~tau:12. ~capacity:100. Problem.unit_costs in
  let s = Selection.gsp p in
  (* Ties break to the lowest ids: 0, 1, 2 (3 x 5 >= 12). *)
  Alcotest.(check (list int)) "lowest ids win" [ 0; 1; 2 ]
    (Array.to_list s.Selection.chosen.(0))

let test_sample_subscribers () =
  let rng = Mcss_prng.Rng.create 71 in
  let w =
    Helpers.random_workload rng ~num_topics:20 ~num_subscribers:200 ~max_rate:9
      ~max_interests:4
  in
  let everything = Workload.sample_subscribers (Mcss_prng.Rng.create 1) ~fraction:1. w in
  Helpers.check_int "fraction 1 keeps all" 200 (Workload.num_subscribers everything);
  let nothing = Workload.sample_subscribers (Mcss_prng.Rng.create 1) ~fraction:0. w in
  Helpers.check_int "fraction 0 keeps none" 0 (Workload.num_subscribers nothing);
  let half = Workload.sample_subscribers (Mcss_prng.Rng.create 1) ~fraction:0.5 w in
  let n = Workload.num_subscribers half in
  Helpers.check_bool "roughly half" true (n > 60 && n < 140);
  Helpers.check_int "topics untouched" 20 (Workload.num_topics half);
  (* The sample is still solvable. *)
  let p = Problem.create ~workload:half ~tau:10. ~capacity:100. Problem.unit_costs in
  ignore (solve_and_verify p);
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Workload.sample_subscribers: fraction outside [0,1]") (fun () ->
      ignore (Workload.sample_subscribers rng ~fraction:1.5 w))

let test_capacity_one_pair_at_a_time () =
  (* BC fits exactly one pair of anything: the fleet degenerates to one
     VM per pair and every algorithm must still agree and verify. *)
  let w = Helpers.workload ~rates:[ 10.; 10. ] ~interests:[ [ 0; 1 ]; [ 0 ] ] in
  let p = Problem.create ~workload:w ~tau:20. ~capacity:20. Problem.unit_costs in
  List.iter
    (fun (_, config) ->
      let r = Solver.solve ~config p in
      Helpers.check_int "one VM per pair" r.Solver.selection.Selection.num_pairs
        r.Solver.num_vms)
    Solver.ladder

let suite =
  [
    Alcotest.test_case "pair exactly fills VM" `Quick test_pair_exactly_fills_vm;
    Alcotest.test_case "group exactly fills VM" `Quick test_group_exactly_fills_vm;
    Alcotest.test_case "single subscriber/topic" `Quick test_single_subscriber_single_topic;
    Alcotest.test_case "all subscribers interestless" `Quick test_all_subscribers_interestless;
    Alcotest.test_case "tiny fractional tau" `Quick test_tiny_fractional_tau;
    Alcotest.test_case "huge tau takes everything" `Quick test_huge_tau_takes_everything;
    Alcotest.test_case "fractional rates pipeline" `Quick test_fractional_rates_pipeline;
    Alcotest.test_case "epsilon vs accumulated rounding" `Quick
      test_epsilon_tolerates_accumulated_rounding;
    Alcotest.test_case "identical rates tie-breaks" `Quick test_identical_rates_stable_tie_breaks;
    Alcotest.test_case "sample subscribers" `Quick test_sample_subscribers;
    Alcotest.test_case "capacity one pair at a time" `Quick test_capacity_one_pair_at_a_time;
  ]
