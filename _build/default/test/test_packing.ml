(* Tests for Stage 2: FFBP, CBP and its optimisation switches, and the
   Alg. 7 distribute-vs-deploy estimate. *)

module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Selection = Mcss_core.Selection
module Allocation = Mcss_core.Allocation
module Ffbp = Mcss_core.Ffbp
module Cbp = Mcss_core.Cbp
module Verifier = Mcss_core.Verifier

let valid p s a = Verifier.is_valid (Verifier.verify p s a)

(* On how many VMs does each topic appear? Splitting is the bandwidth
   overhead CBP exists to avoid. *)
let topic_spread a =
  let spread = Hashtbl.create 16 in
  Array.iter
    (fun vm ->
      List.iter
        (fun t ->
          Hashtbl.replace spread t (1 + Option.value ~default:0 (Hashtbl.find_opt spread t)))
        (Allocation.topics_on vm))
    (Allocation.vms a);
  spread

let test_ffbp_fig1_valid () =
  let p = Helpers.fig1_problem ~capacity:80. () in
  let s = Selection.gsp p in
  let a = Ffbp.run p s in
  Helpers.check_bool "valid" true (valid p s a)

let test_ffbp_splits_topics () =
  (* Subscriber order interleaves topics, so first-fit splits topic 0
     across VMs once the first VM is tight. Three subscribers each take
     (t0, t1); BC fits one t0 pair plus one t1 pair per VM. *)
  let w =
    Helpers.workload ~rates:[ 20.; 10. ] ~interests:[ [ 0; 1 ]; [ 0; 1 ]; [ 0; 1 ] ]
  in
  let p = Problem.create ~workload:w ~tau:30. ~capacity:60. Problem.unit_costs in
  let s = Selection.gsp p in
  let ff = Ffbp.run p s in
  Helpers.check_bool "valid" true (valid p s ff);
  let spread = topic_spread ff in
  Helpers.check_bool "t0 split over >= 2 VMs" true (Hashtbl.find spread 0 >= 2)

let test_cbp_groups_topics () =
  (* Same workload: CBP keeps each topic on as few VMs as its size allows. *)
  let w =
    Helpers.workload ~rates:[ 20.; 10. ] ~interests:[ [ 0; 1 ]; [ 0; 1 ]; [ 0; 1 ] ]
  in
  let p = Problem.create ~workload:w ~tau:30. ~capacity:80. Problem.unit_costs in
  let s = Selection.gsp p in
  let cb = Cbp.run p s Cbp.with_most_free in
  Helpers.check_bool "valid" true (valid p s cb);
  let spread = topic_spread cb in
  Helpers.check_int "t0 on one VM" 1 (Hashtbl.find spread 0);
  let ff = Ffbp.run p s in
  Helpers.check_bool "CBP bandwidth <= FFBP bandwidth" true
    (Allocation.total_load cb <= Allocation.total_load ff +. 1e-9)

let test_cbp_expensive_first_order () =
  (* With one pair per topic and a capacity fitting exactly one pair,
     expensive-first deploys VMs in decreasing rate order. *)
  let w = Helpers.workload ~rates:[ 10.; 30.; 20. ] ~interests:[ [ 0 ]; [ 1 ]; [ 2 ] ] in
  let p = Problem.create ~workload:w ~tau:30. ~capacity:60. Problem.unit_costs in
  let s = Selection.gsp p in
  let a = Cbp.run p s Cbp.with_expensive_first in
  Helpers.check_bool "valid" true (valid p s a);
  let vms = Allocation.vms a in
  (* VM 0 must host the most expensive topic (id 1, rate 30). *)
  Helpers.check_bool "vm0 hosts topic 1" true (Allocation.hosts_topic vms.(0) 1)

let test_ffbp_infeasible () =
  let w = Helpers.workload ~rates:[ 100. ] ~interests:[ [ 0 ] ] in
  let p = Problem.create ~workload:w ~tau:10. ~capacity:50. Problem.unit_costs in
  let s = Selection.gsp p in
  (match Ffbp.run p s with
  | _ -> Alcotest.fail "expected Infeasible"
  | exception Problem.Infeasible _ -> ())

let test_cbp_infeasible () =
  let w = Helpers.workload ~rates:[ 100. ] ~interests:[ [ 0 ] ] in
  let p = Problem.create ~workload:w ~tau:10. ~capacity:50. Problem.unit_costs in
  let s = Selection.gsp p in
  (match Cbp.run p s Cbp.with_cost_decision with
  | _ -> Alcotest.fail "expected Infeasible"
  | exception Problem.Infeasible _ -> ())

let test_cheaper_to_distribute_obvious_cases () =
  let w = Helpers.workload ~rates:[ 10.; 10. ] ~interests:[ [ 0 ]; [ 1 ] ] in
  (* Expensive VMs, free bandwidth: spreading into existing room must win. *)
  let p =
    Problem.create ~workload:w ~tau:10. ~capacity:100.
      (Problem.linear_costs ~vm_usd:1000. ~per_event_usd:0.0001)
  in
  let a = Allocation.create ~capacity:100. in
  let b = Allocation.deploy a in
  Allocation.place a b ~topic:1 ~ev:10. ~subscribers:[| 1 |] ~from:0 ~count:1;
  Helpers.check_bool "VMs dear, bandwidth cheap -> distribute" true
    (Cbp.cheaper_to_distribute p a ~ev:10. ~count:2 ~hosts:(fun _ -> false));
  (* Free VMs, ruinous bandwidth: spreading 4 pairs over two nearly full
     VMs pays two incoming streams and still overflows to an extra VM,
     while one fresh VM pays a single incoming stream — distribution must
     lose. *)
  let p' =
    Problem.create ~workload:w ~tau:10. ~capacity:100.
      (Problem.linear_costs ~vm_usd:0.0001 ~per_event_usd:1000.)
  in
  let a' = Allocation.create ~capacity:100. in
  let b0 = Allocation.deploy a' in
  Allocation.place a' b0 ~topic:1 ~ev:37.5 ~subscribers:[| 1 |] ~from:0 ~count:1;
  let b1 = Allocation.deploy a' in
  Allocation.place a' b1 ~topic:1 ~ev:37.5 ~subscribers:[| 0 |] ~from:0 ~count:1;
  Helpers.check_bool "VMs cheap, bandwidth dear -> deploy fresh" true
    (not (Cbp.cheaper_to_distribute p' a' ~ev:10. ~count:4 ~hosts:(fun _ -> false)))

let test_presets_are_cumulative () =
  Helpers.check_bool "grouping: arbitrary/first-fit/no-cost" true
    (Cbp.grouping_only.Cbp.topic_order = Cbp.Arbitrary
    && Cbp.grouping_only.Cbp.vm_choice = Cbp.First_fit
    && not Cbp.grouping_only.Cbp.cost_decision);
  Helpers.check_bool "(c) adds ordering" true
    (Cbp.with_expensive_first.Cbp.topic_order = Cbp.Expensive_first);
  Helpers.check_bool "(d) adds most-free" true
    (Cbp.with_most_free.Cbp.vm_choice = Cbp.Most_free);
  Helpers.check_bool "(e) adds cost decision" true
    Cbp.with_cost_decision.Cbp.cost_decision

let test_heaviest_group_first_order () =
  (* Topic 0: rate 10 with 5 pairs (volume 50); topic 1: rate 30 with one
     pair (volume 30). Expensive-first starts with topic 1; the
     heaviest-group reading of Alg. 4 line 3 starts with topic 0. *)
  let w =
    Helpers.workload ~rates:[ 10.; 30. ]
      ~interests:[ [ 0 ]; [ 0 ]; [ 0 ]; [ 0 ]; [ 0 ]; [ 1 ] ]
  in
  let p = Problem.create ~workload:w ~tau:30. ~capacity:70. Problem.unit_costs in
  let s = Selection.gsp p in
  let heavy =
    Cbp.run p s { Cbp.with_most_free with Cbp.topic_order = Cbp.Heaviest_group_first }
  in
  let expensive = Cbp.run p s Cbp.with_most_free in
  Helpers.check_bool "heavy: vm0 hosts topic 0" true
    (Allocation.hosts_topic (Allocation.vms heavy).(0) 0);
  Helpers.check_bool "expensive: vm0 hosts topic 1" true
    (Allocation.hosts_topic (Allocation.vms expensive).(0) 1);
  Helpers.check_bool "both valid" true (valid p s heavy && valid p s expensive)

let all_stage2 =
  [
    ("ffbp", fun p s -> Ffbp.run p s);
    ("cbp-b", fun p s -> Cbp.run p s Cbp.grouping_only);
    ("cbp-c", fun p s -> Cbp.run p s Cbp.with_expensive_first);
    ("cbp-d", fun p s -> Cbp.run p s Cbp.with_most_free);
    ("cbp-e", fun p s -> Cbp.run p s Cbp.with_cost_decision);
    ( "cbp-heavy",
      fun p s ->
        Cbp.run p s { Cbp.with_most_free with Cbp.topic_order = Cbp.Heaviest_group_first } );
  ]

let prop_every_packer_is_valid =
  Helpers.qtest ~count:150 "every Stage-2 packer yields a verifier-clean allocation"
    Helpers.problem_arbitrary (fun p ->
      let s = Selection.gsp p in
      List.for_all (fun (_, run) -> valid p s (run p s)) all_stage2)

let prop_rsp_selection_packs_validly =
  Helpers.qtest "packers also handle RSP selections" Helpers.problem_arbitrary
    (fun p ->
      let s = Selection.rsp p in
      List.for_all (fun (_, run) -> valid p s (run p s)) all_stage2)

let prop_no_empty_vms =
  Helpers.qtest "no packer ever deploys an empty VM" Helpers.problem_arbitrary
    (fun p ->
      let s = Selection.gsp p in
      List.for_all
        (fun (_, run) ->
          Array.for_all
            (fun vm -> Allocation.num_pairs_on vm > 0)
            (Allocation.vms (run p s)))
        all_stage2)

let prop_ffbp_uses_earliest_vm =
  Helpers.qtest "FFBP never leaves an earlier VM that could host a pair"
    Helpers.tiny_problem_arbitrary (fun p ->
      (* Every pair on VM b>0 must not have fit any earlier VM at the time
         it was placed; a cheap necessary condition observable after the
         fact: the last VM holds at least one pair whose placement delta
         exceeds no earlier VM's *final* free capacity plus its own delta.
         We check the weaker invariant that the final fleet has no VM able
         to absorb the entire last VM. *)
      let s = Selection.gsp p in
      let a = Ffbp.run p s in
      let vms = Allocation.vms a in
      let n = Array.length vms in
      n <= 1
      ||
      let last = vms.(n - 1) in
      not
        (Array.exists
           (fun vm ->
             Allocation.vm_id vm < n - 1
             && Allocation.free a vm >= Allocation.load last)
           vms))

let suite =
  [
    Alcotest.test_case "ffbp fig1 valid" `Quick test_ffbp_fig1_valid;
    Alcotest.test_case "ffbp splits topics" `Quick test_ffbp_splits_topics;
    Alcotest.test_case "cbp groups topics" `Quick test_cbp_groups_topics;
    Alcotest.test_case "cbp expensive-first order" `Quick test_cbp_expensive_first_order;
    Alcotest.test_case "ffbp infeasible" `Quick test_ffbp_infeasible;
    Alcotest.test_case "cbp infeasible" `Quick test_cbp_infeasible;
    Alcotest.test_case "cheaper-to-distribute obvious cases" `Quick
      test_cheaper_to_distribute_obvious_cases;
    Alcotest.test_case "presets are cumulative" `Quick test_presets_are_cumulative;
    Alcotest.test_case "heaviest-group-first order" `Quick test_heaviest_group_first_order;
    prop_every_packer_is_valid;
    prop_rsp_selection_packs_validly;
    prop_no_empty_vms;
    prop_ffbp_uses_earliest_vm;
  ]
