(* Tests for the workload model: validation, derived views, thresholds. *)

module Workload = Mcss_workload.Workload

let simple () =
  Helpers.workload ~rates:[ 5.; 3.; 7. ] ~interests:[ [ 0; 2 ]; [ 1 ]; []; [ 0; 1; 2 ] ]

let test_dimensions () =
  let w = simple () in
  Helpers.check_int "topics" 3 (Workload.num_topics w);
  Helpers.check_int "subscribers" 4 (Workload.num_subscribers w);
  Helpers.check_int "pairs" 6 (Workload.num_pairs w)

let test_event_rates () =
  let w = simple () in
  Helpers.check_float "ev_0" 5. (Workload.event_rate w 0);
  Helpers.check_float "ev_2" 7. (Workload.event_rate w 2);
  Alcotest.(check (array (float 1e-12))) "all" [| 5.; 3.; 7. |] (Workload.event_rates w)

let test_interest_rate () =
  let w = simple () in
  Helpers.check_float "v0" 12. (Workload.interest_rate w 0);
  Helpers.check_float "v2 (empty)" 0. (Workload.interest_rate w 2);
  Helpers.check_float "v3" 15. (Workload.interest_rate w 3);
  Helpers.check_float "total" 15. (Workload.total_event_rate w)

let test_followers_transpose () =
  let w = simple () in
  Alcotest.(check (array int)) "V_t0" [| 0; 3 |] (Workload.followers w 0);
  Alcotest.(check (array int)) "V_t1" [| 1; 3 |] (Workload.followers w 1);
  Alcotest.(check (array int)) "V_t2" [| 0; 3 |] (Workload.followers w 2);
  Helpers.check_int "num_followers" 2 (Workload.num_followers w 1)

let test_interests_sorted () =
  let w =
    Workload.create ~event_rates:[| 1.; 2.; 3. |] ~interests:[| [| 2; 0; 1 |] |]
  in
  Alcotest.(check (array int)) "sorted" [| 0; 1; 2 |] (Workload.interests w 0)

let test_tau_v () =
  let w = simple () in
  Helpers.check_float "capped by tau" 10. (Workload.tau_v w ~tau:10. 0);
  Helpers.check_float "capped by interest rate" 12. (Workload.tau_v w ~tau:100. 0);
  Helpers.check_float "no interests" 0. (Workload.tau_v w ~tau:10. 2)

let test_iter_pairs () =
  let w = simple () in
  let pairs = ref [] in
  Workload.iter_pairs w (fun t v -> pairs := (t, v) :: !pairs);
  Alcotest.(check (list (pair int int)))
    "all pairs, grouped by subscriber"
    [ (0, 0); (2, 0); (1, 1); (0, 3); (1, 3); (2, 3) ]
    (List.rev !pairs)

let test_subscribers_with_interests () =
  let w = simple () in
  Alcotest.(check (list int)) "skips empty" [ 0; 1; 3 ]
    (Workload.subscribers_with_interests w)

let test_rejects_nonpositive_rate () =
  Alcotest.check_raises "zero rate"
    (Invalid_argument "Workload.create: event rate of topic 1 is 0 (must be > 0)")
    (fun () ->
      ignore (Workload.create ~event_rates:[| 1.; 0. |] ~interests:[||]))

let test_rejects_out_of_range_topic () =
  Alcotest.check_raises "bad topic"
    (Invalid_argument "Workload.create: subscriber 0 references topic 5 out of range")
    (fun () ->
      ignore (Workload.create ~event_rates:[| 1. |] ~interests:[| [| 5 |] |]))

let test_rejects_duplicate_interest () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Workload.create: subscriber 0 lists topic 0 twice") (fun () ->
      ignore (Workload.create ~event_rates:[| 1. |] ~interests:[| [| 0; 0 |] |]))

let test_create_copies_input () =
  let rates = [| 1.; 2. |] in
  let interests = [| [| 0 |] |] in
  let w = Workload.create ~event_rates:rates ~interests in
  rates.(0) <- 99.;
  interests.(0) <- [| 1 |];
  Helpers.check_float "rates copied" 1. (Workload.event_rate w 0);
  Alcotest.(check (array int)) "interests copied" [| 0 |] (Workload.interests w 0)

let contains = Helpers.contains

let test_pp_summary () =
  let s = Format.asprintf "%a" Workload.pp_summary (simple ()) in
  Helpers.check_bool "mentions topic count" true (contains ~needle:"3 topics" s);
  Helpers.check_bool "mentions pair count" true (contains ~needle:"6 pairs" s)

let prop_followers_interests_transpose =
  Helpers.qtest "followers is the transpose of interests" Helpers.problem_arbitrary
    (fun p ->
      let w = p.Mcss_core.Problem.workload in
      let ok = ref true in
      for t = 0 to Workload.num_topics w - 1 do
        Array.iter
          (fun v -> if not (Array.mem t (Workload.interests w v)) then ok := false)
          (Workload.followers w t)
      done;
      Workload.iter_pairs w (fun t v ->
          if not (Array.mem v (Workload.followers w t)) then ok := false);
      !ok)

let prop_num_pairs_consistent =
  Helpers.qtest "num_pairs equals both sums" Helpers.problem_arbitrary (fun p ->
      let w = p.Mcss_core.Problem.workload in
      let by_interests = ref 0 and by_followers = ref 0 in
      for v = 0 to Workload.num_subscribers w - 1 do
        by_interests := !by_interests + Array.length (Workload.interests w v)
      done;
      for t = 0 to Workload.num_topics w - 1 do
        by_followers := !by_followers + Workload.num_followers w t
      done;
      Workload.num_pairs w = !by_interests && !by_interests = !by_followers)

let suite =
  [
    Alcotest.test_case "dimensions" `Quick test_dimensions;
    Alcotest.test_case "event rates" `Quick test_event_rates;
    Alcotest.test_case "interest rate" `Quick test_interest_rate;
    Alcotest.test_case "followers transpose" `Quick test_followers_transpose;
    Alcotest.test_case "interests sorted" `Quick test_interests_sorted;
    Alcotest.test_case "tau_v" `Quick test_tau_v;
    Alcotest.test_case "iter_pairs" `Quick test_iter_pairs;
    Alcotest.test_case "subscribers_with_interests" `Quick test_subscribers_with_interests;
    Alcotest.test_case "rejects nonpositive rate" `Quick test_rejects_nonpositive_rate;
    Alcotest.test_case "rejects out-of-range topic" `Quick test_rejects_out_of_range_topic;
    Alcotest.test_case "rejects duplicate interest" `Quick test_rejects_duplicate_interest;
    Alcotest.test_case "create copies input" `Quick test_create_copies_input;
    Alcotest.test_case "pp_summary" `Quick test_pp_summary;
    prop_followers_interests_transpose;
    prop_num_pairs_consistent;
  ]
