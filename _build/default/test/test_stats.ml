(* Tests for the workload statistics behind the paper's Appendix-D
   analysis. *)

module Workload = Mcss_workload.Workload
module Stats = Mcss_workload.Stats

let simple () =
  Helpers.workload ~rates:[ 5.; 3.; 7. ] ~interests:[ [ 0; 2 ]; [ 1 ]; []; [ 0; 1; 2 ] ]

let test_follower_counts () =
  Alcotest.(check (array int)) "counts" [| 2; 2; 2 |] (Stats.follower_counts (simple ()))

let test_interest_counts () =
  Alcotest.(check (array int)) "counts" [| 2; 1; 0; 3 |] (Stats.interest_counts (simple ()))

let test_ccdf_int () =
  (* Sample {1, 1, 2, 5}: P(X > 1) = 0.5, P(X > 2) = 0.25, P(X > 5) = 0. *)
  let ccdf = Stats.ccdf_int [| 1; 5; 1; 2 |] in
  Alcotest.(check (list (pair int (float 1e-12))))
    "ccdf" [ (1, 0.5); (2, 0.25); (5, 0.) ] ccdf

let test_ccdf_int_empty () =
  Alcotest.(check (list (pair int (float 1e-12)))) "empty" [] (Stats.ccdf_int [||])

let test_ccdf_float () =
  let ccdf = Stats.ccdf_float [| 1.5; 1.5; 3.0 |] in
  Alcotest.(check (list (pair (float 1e-12) (float 1e-12))))
    "ccdf"
    [ (1.5, 1. /. 3.); (3.0, 0.) ]
    ccdf

let test_ccdf_is_nonincreasing () =
  let xs = Array.init 200 (fun i -> (i * 7919) mod 37) in
  let ccdf = Stats.ccdf_int xs in
  let rec check = function
    | (_, p1) :: ((_, p2) :: _ as rest) ->
        Helpers.check_bool "non-increasing" true (p2 <= p1 +. 1e-12);
        check rest
    | _ -> ()
  in
  check ccdf;
  (match List.rev ccdf with
  | (_, last) :: _ -> Helpers.check_float "last is 0" 0. last
  | [] -> Alcotest.fail "empty ccdf")

let test_subscription_cardinality () =
  let w = simple () in
  (* Total rate 15; v0 receives 12 -> SC = 80%. *)
  Helpers.check_float "v0" 80. (Stats.subscription_cardinality w 0);
  Helpers.check_float "v2" 0. (Stats.subscription_cardinality w 2);
  Helpers.check_float "v3" 100. (Stats.subscription_cardinality w 3)

let test_mean_rate_by_followers () =
  (* All three topics have 2 followers; mean rate = 5. *)
  Alcotest.(check (list (pair int (float 1e-9))))
    "grouped" [ (2, 5.) ]
    (Stats.mean_rate_by_followers (simple ()))

let test_mean_sc_by_interests () =
  let w = simple () in
  let result = Stats.mean_sc_by_interests w in
  (* Keys 1 (v1: SC 20), 2 (v0: SC 80), 3 (v3: SC 100); key 0 excluded. *)
  Alcotest.(check (list (pair int (float 1e-9))))
    "grouped" [ (1, 20.); (2, 80.); (3, 100.) ] result

let test_quantile () =
  let xs = [| 4.; 1.; 3.; 2. |] in
  Helpers.check_float "q0" 1. (Stats.quantile xs 0.);
  Helpers.check_float "q1" 4. (Stats.quantile xs 1.);
  Helpers.check_float "median" 2.5 (Stats.quantile xs 0.5);
  (* Input not mutated. *)
  Alcotest.(check (array (float 1e-12))) "unchanged" [| 4.; 1.; 3.; 2. |] xs

let test_quantile_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.quantile: empty sample")
    (fun () -> ignore (Stats.quantile [||] 0.5));
  Alcotest.check_raises "bad q" (Invalid_argument "Stats.quantile: q outside [0,1]")
    (fun () -> ignore (Stats.quantile [| 1. |] 1.5))

let test_summarize () =
  let s = Stats.summarize [| 1.; 2.; 3.; 4. |] in
  Helpers.check_int "count" 4 s.Stats.count;
  Helpers.check_float "mean" 2.5 s.Stats.mean;
  Helpers.check_float "min" 1. s.Stats.min;
  Helpers.check_float "max" 4. s.Stats.max;
  Helpers.check_float "p50" 2.5 s.Stats.p50

let prop_sc_bounded =
  Helpers.qtest "subscription cardinality in [0, 100]" Helpers.problem_arbitrary
    (fun p ->
      let w = p.Mcss_core.Problem.workload in
      Array.for_all
        (fun sc -> sc >= -1e-9 && sc <= 100. +. 1e-9)
        (Stats.subscription_cardinalities w))

let prop_ccdf_first_point =
  Helpers.qtest "ccdf at the minimum = 1 - freq(min)" Helpers.problem_arbitrary
    (fun p ->
      let w = p.Mcss_core.Problem.workload in
      let counts = Stats.follower_counts w in
      match Stats.ccdf_int counts with
      | [] -> Array.length counts = 0
      | (x0, p0) :: _ ->
          let n = Array.length counts in
          let at_min = Array.fold_left (fun acc c -> if c = x0 then acc + 1 else acc) 0 counts in
          Float.abs (p0 -. (float_of_int (n - at_min) /. float_of_int n)) < 1e-12)

let suite =
  [
    Alcotest.test_case "follower counts" `Quick test_follower_counts;
    Alcotest.test_case "interest counts" `Quick test_interest_counts;
    Alcotest.test_case "ccdf int" `Quick test_ccdf_int;
    Alcotest.test_case "ccdf int empty" `Quick test_ccdf_int_empty;
    Alcotest.test_case "ccdf float" `Quick test_ccdf_float;
    Alcotest.test_case "ccdf non-increasing" `Quick test_ccdf_is_nonincreasing;
    Alcotest.test_case "subscription cardinality" `Quick test_subscription_cardinality;
    Alcotest.test_case "mean rate by followers" `Quick test_mean_rate_by_followers;
    Alcotest.test_case "mean SC by interests" `Quick test_mean_sc_by_interests;
    Alcotest.test_case "quantile" `Quick test_quantile;
    Alcotest.test_case "quantile rejects" `Quick test_quantile_rejects;
    Alcotest.test_case "summarize" `Quick test_summarize;
    prop_sc_bounded;
    prop_ccdf_first_point;
  ]
