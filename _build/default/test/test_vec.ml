(* Tests for the growable array. *)

module Vec = Mcss_core.Vec

let test_empty () =
  let v = Vec.create () in
  Helpers.check_int "length" 0 (Vec.length v);
  Helpers.check_bool "is_empty" true (Vec.is_empty v)

let test_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * 2)
  done;
  Helpers.check_int "length" 100 (Vec.length v);
  Helpers.check_int "get 0" 0 (Vec.get v 0);
  Helpers.check_int "get 99" 198 (Vec.get v 99)

let test_set () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  Vec.set v 1 42;
  Alcotest.(check (array int)) "updated" [| 1; 42; 3 |] (Vec.to_array v)

let test_bounds () =
  let v = Vec.of_array [| 1 |] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index 1 out of 1") (fun () ->
      ignore (Vec.get v 1));
  Alcotest.check_raises "negative" (Invalid_argument "Vec: index -1 out of 1") (fun () ->
      ignore (Vec.get v (-1)))

let test_iterators () =
  let v = Vec.of_array [| 3; 1; 4 |] in
  let sum = ref 0 in
  Vec.iter (fun x -> sum := !sum + x) v;
  Helpers.check_int "iter" 8 !sum;
  let indexed = ref [] in
  Vec.iteri (fun i x -> indexed := (i, x) :: !indexed) v;
  Alcotest.(check (list (pair int int))) "iteri" [ (0, 3); (1, 1); (2, 4) ] (List.rev !indexed);
  Helpers.check_int "fold" 8 (Vec.fold_left ( + ) 0 v);
  Helpers.check_bool "exists" true (Vec.exists (fun x -> x = 4) v);
  Helpers.check_bool "not exists" false (Vec.exists (fun x -> x = 9) v);
  Alcotest.(check (list int)) "to_list" [ 3; 1; 4 ] (Vec.to_list v)

let test_of_array_copies () =
  let a = [| 1; 2 |] in
  let v = Vec.of_array a in
  a.(0) <- 99;
  Helpers.check_int "copied" 1 (Vec.get v 0)

let prop_to_array_roundtrip =
  Helpers.qtest "push-all then to_array is identity" QCheck.(list int) (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      Vec.to_list v = xs)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "push/get" `Quick test_push_get;
    Alcotest.test_case "set" `Quick test_set;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "iterators" `Quick test_iterators;
    Alcotest.test_case "of_array copies" `Quick test_of_array_copies;
    prop_to_array_roundtrip;
  ]
