(* Tests for workload (de)serialisation: round-trips and parse errors. *)

module Workload = Mcss_workload.Workload
module Wio = Mcss_workload.Wio

let equal_workloads a b =
  Workload.num_topics a = Workload.num_topics b
  && Workload.num_subscribers a = Workload.num_subscribers b
  && Workload.event_rates a = Workload.event_rates b
  && Array.init (Workload.num_subscribers a) (Workload.interests a)
     = Array.init (Workload.num_subscribers b) (Workload.interests b)

let roundtrip w =
  let path = Filename.temp_file "mcss_wio" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Wio.save w path;
      Wio.load path)

let test_roundtrip_simple () =
  let w =
    Helpers.workload ~rates:[ 5.; 3.25; 7. ]
      ~interests:[ [ 0; 2 ]; [ 1 ]; []; [ 0; 1; 2 ] ]
  in
  Helpers.check_bool "roundtrip equal" true (equal_workloads w (roundtrip w))

let test_roundtrip_empty_subscribers () =
  let w = Helpers.workload ~rates:[ 1. ] ~interests:[] in
  Helpers.check_bool "roundtrip equal" true (equal_workloads w (roundtrip w))

let parse s =
  let path = Filename.temp_file "mcss_wio" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc -> output_string oc s);
      Wio.load path)

let expect_parse_error name input =
  match parse input with
  | _ -> Alcotest.failf "%s: expected Parse_error" name
  | exception Wio.Parse_error _ -> ()

let test_accepts_comments_and_blanks () =
  let w =
    parse
      "# a comment\nmcss-workload 1\n\ntopics 1\nsubscribers 1\nrates\n# rate of t0\n2\ninterests\n1 0\n"
  in
  Helpers.check_int "topics" 1 (Workload.num_topics w);
  Helpers.check_float "rate" 2. (Workload.event_rate w 0)

let test_rejects_bad_header () = expect_parse_error "header" "mcss-workload 2\n"

let test_rejects_truncated () =
  expect_parse_error "truncated" "mcss-workload 1\ntopics 2\nsubscribers 0\nrates\n1\n"

let test_rejects_bad_rate () =
  expect_parse_error "bad rate"
    "mcss-workload 1\ntopics 1\nsubscribers 0\nrates\nabc\ninterests\n"

let test_rejects_interest_count_mismatch () =
  expect_parse_error "count mismatch"
    "mcss-workload 1\ntopics 1\nsubscribers 1\nrates\n1\ninterests\n2 0\n"

let test_rejects_invalid_topic_reference () =
  expect_parse_error "bad reference"
    "mcss-workload 1\ntopics 1\nsubscribers 1\nrates\n1\ninterests\n1 7\n"

let test_error_mentions_line_number () =
  (match parse "mcss-workload 1\ntopics x\n" with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Wio.Parse_error msg ->
      Helpers.check_bool "mentions line" true (Helpers.contains ~needle:"line 2" msg))

let prop_roundtrip =
  Helpers.qtest ~count:50 "save/load is the identity" Helpers.problem_arbitrary
    (fun p ->
      let w = p.Mcss_core.Problem.workload in
      equal_workloads w (roundtrip w))

let suite =
  [
    Alcotest.test_case "roundtrip simple" `Quick test_roundtrip_simple;
    Alcotest.test_case "roundtrip no subscribers" `Quick test_roundtrip_empty_subscribers;
    Alcotest.test_case "accepts comments/blanks" `Quick test_accepts_comments_and_blanks;
    Alcotest.test_case "rejects bad header" `Quick test_rejects_bad_header;
    Alcotest.test_case "rejects truncated" `Quick test_rejects_truncated;
    Alcotest.test_case "rejects bad rate" `Quick test_rejects_bad_rate;
    Alcotest.test_case "rejects count mismatch" `Quick test_rejects_interest_count_mismatch;
    Alcotest.test_case "rejects invalid topic ref" `Quick test_rejects_invalid_topic_reference;
    Alcotest.test_case "error mentions line number" `Quick test_error_mentions_line_number;
    prop_roundtrip;
  ]
