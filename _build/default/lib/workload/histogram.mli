(** Histograms with terminal-friendly rendering — the [mcss analyze]
    command summarises the heavy-tailed trace distributions as log-binned
    sparklines instead of pages of numbers. *)

type t = private {
  edges : float array;  (** [n+1] ascending bin edges. *)
  counts : int array;  (** [n] bin counts; values land in [edge_i, edge_{i+1}). *)
  total : int;  (** Number of samples binned (outliers are clamped in). *)
}

val equi_width : ?bins:int -> float array -> t
(** [bins] defaults to 20. Raises [Invalid_argument] on an empty sample or
    [bins < 1]. A constant sample yields one bin holding everything. *)

val log_bins : ?per_decade:int -> float array -> t
(** Logarithmic bins, [per_decade] (default 3) per factor of ten,
    spanning the positive samples; non-positive samples are rejected with
    [Invalid_argument]. *)

val sparkline : t -> string
(** One Unicode block character per bin, height proportional to the
    count: ["▁▂▃▄▅▆▇█"] (empty bins print a space). *)

val pp : Format.formatter -> t -> unit
(** Multi-line rendering: one row per non-empty bin with edge range,
    count and a bar. *)
