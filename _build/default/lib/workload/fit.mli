(** Least-squares fitting utilities for trace analysis: the paper's
    Appendix-D figures are log-log CCDFs whose straight-line stretches
    characterise the heavy tails; this module measures those slopes so
    generator fidelity can be asserted numerically instead of eyeballed. *)

type regression = {
  slope : float;
  intercept : float;
  r2 : float;  (** Coefficient of determination; 1 = perfect line. *)
}

val linear_regression : (float * float) list -> regression option
(** Ordinary least squares over the points; [None] with fewer than two
    distinct x values. An exactly constant y yields [r2 = 1]. *)

val loglog_regression : (float * float) list -> regression option
(** OLS over [(log10 x, log10 y)], silently dropping points with a
    non-positive coordinate; [None] if fewer than two survive. *)

val powerlaw_exponent_of_ccdf : (float * float) list -> float option
(** For a CCDF that follows [P(X > x) ∝ x^-α], returns the fitted [α]
    (the negated log-log slope). Points with zero probability (the last
    CCDF step) are dropped by the log transform. *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient; raises [Invalid_argument] on length
    mismatch or fewer than two samples; returns [nan] when either side
    has zero variance. *)

val thin_log : ?per_decade:int -> (float * float) list -> (float * float) list
(** Thin a (sorted by x, positive x) series to roughly [per_decade]
    (default 10) points per decade of x — enough for plotting without
    megabyte .dat files. Always keeps the first and last points. *)

val chi_square : observed:int array -> expected:float array -> float
(** Pearson's goodness-of-fit statistic [Σ (o - e)² / e] — the classical
    way to test a sampler against its target distribution, used by the
    PRNG test suite. Raises [Invalid_argument] on mismatched lengths,
    empty input, or a non-positive expected count. *)

val chi_square_critical_99 : df:int -> float
(** Approximate 99th-percentile critical value of the χ² distribution
    with [df >= 1] degrees of freedom (Wilson–Hilferty approximation,
    accurate to well under 1% for df >= 3): a correct sampler's statistic
    exceeds it only ~1% of the time. *)
