lib/workload/workload.mli: Format Mcss_prng
