lib/workload/stats.mli: Workload
