lib/workload/workload.ml: Array Float Format List Mcss_prng Printf
