lib/workload/fit.ml: Array Float List
