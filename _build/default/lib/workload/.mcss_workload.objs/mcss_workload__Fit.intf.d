lib/workload/fit.mli:
