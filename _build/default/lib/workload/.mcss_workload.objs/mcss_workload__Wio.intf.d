lib/workload/wio.mli: Workload
