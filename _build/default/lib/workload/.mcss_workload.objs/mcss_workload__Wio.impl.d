lib/workload/wio.ml: Array Fun In_channel List Printf String Workload
