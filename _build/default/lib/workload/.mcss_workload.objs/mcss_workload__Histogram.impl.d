lib/workload/histogram.ml: Array Buffer Float Format List String
