lib/workload/stats.ml: Array Float Hashtbl List Workload
