let follower_counts w =
  let counts = Array.make (Workload.num_topics w) 0 in
  Workload.iter_pairs w (fun t _v -> counts.(t) <- counts.(t) + 1);
  counts

let interest_counts w =
  Array.init (Workload.num_subscribers w) (fun v ->
      Array.length (Workload.interests w v))

(* Generic CCDF over a sorted copy: walk runs of equal values; the CCDF at a
   value x is the fraction of samples strictly above x. *)
let ccdf_sorted n get =
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let x = get !i in
    let j = ref !i in
    while !j < n && get !j = x do incr j done;
    let above = n - !j in
    out := (x, float_of_int above /. float_of_int n) :: !out;
    i := !j
  done;
  List.rev !out

let ccdf_int xs =
  let n = Array.length xs in
  if n = 0 then []
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    ccdf_sorted n (fun i -> sorted.(i))
    |> List.map (fun (x, p) -> (x, p))
  end

let ccdf_float xs =
  let n = Array.length xs in
  if n = 0 then []
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    ccdf_sorted n (fun i -> sorted.(i))
  end

let subscription_cardinality w v =
  100. *. Workload.interest_rate w v /. Workload.total_event_rate w

let subscription_cardinalities w =
  Array.init (Workload.num_subscribers w) (subscription_cardinality w)

(* Mean of [value] grouped by integer [key], ascending by key. *)
let mean_by_key keys values =
  let tbl = Hashtbl.create 1024 in
  Array.iteri
    (fun i k ->
      let sum, n = try Hashtbl.find tbl k with Not_found -> (0., 0) in
      Hashtbl.replace tbl k (sum +. values.(i), n + 1))
    keys;
  Hashtbl.fold (fun k (sum, n) acc -> (k, sum /. float_of_int n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let mean_rate_by_followers w =
  mean_by_key (follower_counts w) (Workload.event_rates w)

let mean_sc_by_interests w =
  let keys = interest_counts w in
  let scs = subscription_cardinalities w in
  mean_by_key keys scs |> List.filter (fun (k, _) -> k > 0)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty sample";
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  let sum = Array.fold_left ( +. ) 0. xs in
  {
    count = n;
    mean = sum /. float_of_int n;
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs;
    p50 = quantile xs 0.5;
    p90 = quantile xs 0.9;
    p99 = quantile xs 0.99;
  }
