(** Workload statistics backing the paper's trace analysis (Appendix D,
    Figs. 8–12): degree distributions, complementary CDFs, subscription
    cardinality, and conditional means. *)

val follower_counts : Workload.t -> int array
(** [|V_t|] per topic (the topic's "#followers"). *)

val interest_counts : Workload.t -> int array
(** [|T_v|] per subscriber (the subscriber's "#followings"). *)

val ccdf_int : int array -> (int * float) list
(** Complementary CDF of an integer sample: for each distinct value [x]
    (ascending), the fraction of samples strictly greater than [x], matching
    the paper's definition CCDF(x) = P(X > x). The empty array yields []. *)

val ccdf_float : float array -> (float * float) list
(** Same for float samples. *)

val subscription_cardinality : Workload.t -> Workload.subscriber -> float
(** SC_v = 100 · (Σ_{t∈T_v} ev_t) / (Σ_{t∈T} ev_t), the percentage of all
    traffic a subscriber receives (§Appendix D, from [6]). *)

val subscription_cardinalities : Workload.t -> float array

val mean_rate_by_followers : Workload.t -> (int * float) list
(** For each distinct follower count (ascending), the mean event rate of
    topics with that many followers — the data behind Fig. 10. *)

val mean_sc_by_interests : Workload.t -> (int * float) list
(** For each distinct interest count (ascending), the mean subscription
    cardinality of subscribers with that many interests — Fig. 12. Only
    subscribers with at least one interest are included. *)

val quantile : float array -> float -> float
(** [quantile xs q] for [0 <= q <= 1]: linear-interpolation quantile of the
    sample. Raises [Invalid_argument] on the empty array or out-of-range
    [q]. Does not mutate its argument. *)

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : float array -> summary
(** Basic descriptive statistics; raises [Invalid_argument] on empty. *)
