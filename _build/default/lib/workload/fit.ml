type regression = { slope : float; intercept : float; r2 : float }

let linear_regression points =
  let n = List.length points in
  if n < 2 then None
  else begin
    let fn = float_of_int n in
    let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0. points in
    let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0. points in
    let mean_x = sx /. fn and mean_y = sy /. fn in
    let sxx =
      List.fold_left (fun acc (x, _) -> acc +. ((x -. mean_x) ** 2.)) 0. points
    in
    let syy =
      List.fold_left (fun acc (_, y) -> acc +. ((y -. mean_y) ** 2.)) 0. points
    in
    let sxy =
      List.fold_left
        (fun acc (x, y) -> acc +. ((x -. mean_x) *. (y -. mean_y)))
        0. points
    in
    if sxx = 0. then None
    else begin
      let slope = sxy /. sxx in
      let intercept = mean_y -. (slope *. mean_x) in
      let r2 = if syy = 0. then 1. else sxy *. sxy /. (sxx *. syy) in
      Some { slope; intercept; r2 }
    end
  end

let loglog_regression points =
  let logs =
    List.filter_map
      (fun (x, y) -> if x > 0. && y > 0. then Some (log10 x, log10 y) else None)
      points
  in
  linear_regression logs

let powerlaw_exponent_of_ccdf ccdf =
  match loglog_regression ccdf with
  | Some { slope; _ } -> Some (-.slope)
  | None -> None

let pearson xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Fit.pearson: length mismatch";
  if n < 2 then invalid_arg "Fit.pearson: need at least two samples";
  let fn = float_of_int n in
  let mean a = Array.fold_left ( +. ) 0. a /. fn in
  let mx = mean xs and my = mean ys in
  let sxx = ref 0. and syy = ref 0. and sxy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy);
    sxy := !sxy +. (dx *. dy)
  done;
  if !sxx = 0. || !syy = 0. then nan else !sxy /. sqrt (!sxx *. !syy)

let chi_square ~observed ~expected =
  let n = Array.length observed in
  if n = 0 then invalid_arg "Fit.chi_square: empty input";
  if n <> Array.length expected then invalid_arg "Fit.chi_square: length mismatch";
  let stat = ref 0. in
  for i = 0 to n - 1 do
    if not (expected.(i) > 0.) then
      invalid_arg "Fit.chi_square: expected counts must be positive";
    let d = float_of_int observed.(i) -. expected.(i) in
    stat := !stat +. (d *. d /. expected.(i))
  done;
  !stat

let chi_square_critical_99 ~df =
  if df < 1 then invalid_arg "Fit.chi_square_critical_99: df must be >= 1";
  (* Wilson–Hilferty: χ²_p(k) ≈ k (1 - 2/(9k) + z_p √(2/(9k)))³ with
     z_0.99 = 2.3263. *)
  let k = float_of_int df in
  let h = 2. /. (9. *. k) in
  k *. ((1. -. h +. (2.3263 *. sqrt h)) ** 3.)

let thin_log ?(per_decade = 10) points =
  match points with
  | [] | [ _ ] -> points
  | first :: _ ->
      let last = List.nth points (List.length points - 1) in
      let step = 1. /. float_of_int (max 1 per_decade) in
      let kept = ref [ first ] in
      let next_threshold = ref (log10 (Float.max (fst first) 1e-300) +. step) in
      List.iter
        (fun (x, y) ->
          if x > 0. && log10 x >= !next_threshold then begin
            kept := (x, y) :: !kept;
            next_threshold := log10 x +. step
          end)
        points;
      let kept = if List.hd !kept = last then !kept else last :: !kept in
      List.rev kept
