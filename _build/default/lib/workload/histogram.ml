type t = { edges : float array; counts : int array; total : int }

let build edges xs =
  let n = Array.length edges - 1 in
  let counts = Array.make n 0 in
  Array.iter
    (fun x ->
      (* Rightmost bin whose lower edge is <= x, clamped into range. *)
      let rec find lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi + 1) / 2 in
          if edges.(mid) <= x then find mid hi else find lo (mid - 1)
      in
      let i = min (n - 1) (find 0 (n - 1)) in
      counts.(i) <- counts.(i) + 1)
    xs;
  { edges; counts; total = Array.length xs }

let equi_width ?(bins = 20) xs =
  if Array.length xs = 0 then invalid_arg "Histogram.equi_width: empty sample";
  if bins < 1 then invalid_arg "Histogram.equi_width: bins must be >= 1";
  let lo = Array.fold_left Float.min xs.(0) xs in
  let hi = Array.fold_left Float.max xs.(0) xs in
  if lo = hi then build [| lo; lo +. 1. |] xs
  else begin
    let bins = bins in
    let width = (hi -. lo) /. float_of_int bins in
    let edges = Array.init (bins + 1) (fun i -> lo +. (float_of_int i *. width)) in
    build edges xs
  end

let log_bins ?(per_decade = 3) xs =
  if Array.length xs = 0 then invalid_arg "Histogram.log_bins: empty sample";
  if per_decade < 1 then invalid_arg "Histogram.log_bins: per_decade must be >= 1";
  Array.iter
    (fun x -> if not (x > 0.) then invalid_arg "Histogram.log_bins: non-positive sample")
    xs;
  let lo = Array.fold_left Float.min xs.(0) xs in
  let hi = Array.fold_left Float.max xs.(0) xs in
  if lo = hi then build [| lo; lo *. 10. |] xs
  else begin
    let step = 1. /. float_of_int per_decade in
    let log_lo = floor (log10 lo /. step) *. step in
    let bins =
      max 1 (int_of_float (ceil ((log10 hi -. log_lo) /. step +. 1e-9)))
    in
    let edges =
      Array.init (bins + 1) (fun i -> 10. ** (log_lo +. (float_of_int i *. step)))
    in
    build edges xs
  end

let blocks = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline h =
  let max_count = Array.fold_left max 1 h.counts in
  let buf = Buffer.create (Array.length h.counts * 3) in
  Array.iter
    (fun c ->
      let level =
        if c = 0 then 0
        else 1 + (c * (Array.length blocks - 2) / max_count)
      in
      Buffer.add_string buf blocks.(min level (Array.length blocks - 1)))
    h.counts;
  Buffer.contents buf

let pp ppf h =
  let max_count = Array.fold_left max 1 h.counts in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let bar_len = max 1 (c * 40 / max_count) in
        Format.fprintf ppf "[%10.4g, %10.4g) %8d %s@." h.edges.(i) h.edges.(i + 1) c
          (String.concat "" (List.init bar_len (fun _ -> "#")))
      end)
    h.counts
