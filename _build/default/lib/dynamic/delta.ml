module Workload = Mcss_workload.Workload

type t =
  | Subscribe of { subscriber : int; topic : int }
  | Unsubscribe of { subscriber : int; topic : int }
  | Rate_change of { topic : int; rate : float }
  | New_topic of { rate : float }
  | New_subscriber of { interests : int array }

let pp ppf = function
  | Subscribe { subscriber; topic } -> Format.fprintf ppf "subscribe(%d, %d)" subscriber topic
  | Unsubscribe { subscriber; topic } ->
      Format.fprintf ppf "unsubscribe(%d, %d)" subscriber topic
  | Rate_change { topic; rate } -> Format.fprintf ppf "rate(%d <- %g)" topic rate
  | New_topic { rate } -> Format.fprintf ppf "new-topic(%g)" rate
  | New_subscriber { interests } ->
      Format.fprintf ppf "new-subscriber(%d interests)" (Array.length interests)

let apply w deltas =
  let num_topics = ref (Workload.num_topics w) in
  let rates = Hashtbl.create 16 in
  (* interest sets as hashtables for O(1) membership updates *)
  let base_subs = Workload.num_subscribers w in
  let interests =
    Array.init base_subs (fun v ->
        let h = Hashtbl.create 8 in
        Array.iter (fun t -> Hashtbl.replace h t ()) (Workload.interests w v);
        h)
  in
  let extra_interests : (int, unit) Hashtbl.t Mcss_core.Vec.t = Mcss_core.Vec.create () in
  let num_subscribers () = base_subs + Mcss_core.Vec.length extra_interests in
  let interest_set v =
    if v < base_subs then interests.(v) else Mcss_core.Vec.get extra_interests (v - base_subs)
  in
  let check_topic t what =
    if t < 0 || t >= !num_topics then
      invalid_arg (Printf.sprintf "Delta.apply: %s references topic %d out of %d" what t !num_topics)
  in
  let check_subscriber v what =
    if v < 0 || v >= num_subscribers () then
      invalid_arg
        (Printf.sprintf "Delta.apply: %s references subscriber %d out of %d" what v
           (num_subscribers ()))
  in
  List.iter
    (fun delta ->
      match delta with
      | Subscribe { subscriber; topic } ->
          check_subscriber subscriber "subscribe";
          check_topic topic "subscribe";
          let set = interest_set subscriber in
          if Hashtbl.mem set topic then
            invalid_arg
              (Printf.sprintf "Delta.apply: subscriber %d already follows topic %d"
                 subscriber topic);
          Hashtbl.replace set topic ()
      | Unsubscribe { subscriber; topic } ->
          check_subscriber subscriber "unsubscribe";
          check_topic topic "unsubscribe";
          let set = interest_set subscriber in
          if not (Hashtbl.mem set topic) then
            invalid_arg
              (Printf.sprintf "Delta.apply: subscriber %d does not follow topic %d"
                 subscriber topic);
          Hashtbl.remove set topic
      | Rate_change { topic; rate } ->
          check_topic topic "rate-change";
          if not (rate > 0.) then invalid_arg "Delta.apply: rate must be positive";
          Hashtbl.replace rates topic rate
      | New_topic { rate } ->
          if not (rate > 0.) then invalid_arg "Delta.apply: rate must be positive";
          Hashtbl.replace rates !num_topics rate;
          incr num_topics
      | New_subscriber { interests = wanted } ->
          let h = Hashtbl.create 8 in
          Array.iter
            (fun t ->
              check_topic t "new-subscriber";
              if Hashtbl.mem h t then
                invalid_arg "Delta.apply: new subscriber lists a topic twice";
              Hashtbl.replace h t ())
            wanted;
          Mcss_core.Vec.push extra_interests h)
    deltas;
  let event_rates =
    Array.init !num_topics (fun t ->
        match Hashtbl.find_opt rates t with
        | Some r -> r
        | None -> Workload.event_rate w t)
  in
  let all_interests =
    Array.init (num_subscribers ()) (fun v ->
        let set = interest_set v in
        let a = Array.make (Hashtbl.length set) 0 in
        let i = ref 0 in
        Hashtbl.iter
          (fun t () ->
            a.(!i) <- t;
            incr i)
          set;
        a)
  in
  Workload.create ~event_rates ~interests:all_interests
