module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Solver = Mcss_core.Solver
module Billing = Mcss_pricing.Billing
module Cost_model = Mcss_pricing.Cost_model

type strategy = On_demand_only | All_reserved | Hybrid

type period_plan = {
  period : int;
  subscribers : int;
  vms_needed : int;
  cost_on_demand : float;
  cost_all_reserved : float;
  cost_hybrid : float;
}

type plan = {
  periods : period_plan list;
  total_on_demand : float;
  total_all_reserved : float;
  total_hybrid : float;
  best : strategy;
}

let pp_strategy ppf = function
  | On_demand_only -> Format.pp_print_string ppf "on-demand only"
  | All_reserved -> Format.pp_print_string ppf "all reserved"
  | Hybrid -> Format.pp_print_string ppf "hybrid (reserved baseline + on-demand burst)"

(* Grow the subscriber population to [target] by cloning existing
   subscribers round-robin: the joint (interests, rates) distribution is
   preserved exactly, which is what "same service, more users" means. *)
let grown base target =
  let ns = Workload.num_subscribers base in
  if target <= ns then base
  else begin
    let interests =
      Array.init target (fun v ->
          Workload.interests base (if v < ns then v else v mod ns))
    in
    Workload.create ~event_rates:(Workload.event_rates base) ~interests
  end

let plan ~base ~tau ~capacity_events ~model ~growth_per_period ~periods ~reserved_term =
  if not (growth_per_period > 0.) then invalid_arg "Forecast.plan: growth must be positive";
  if periods < 1 then invalid_arg "Forecast.plan: need at least one period";
  let base_subs = Workload.num_subscribers base in
  let subscribers_in k =
    int_of_float (Float.round (float_of_int base_subs *. (growth_per_period ** float_of_int k)))
  in
  let od_hourly = Billing.effective_hourly model.Cost_model.instance Billing.On_demand in
  let ri_hourly = Billing.effective_hourly model.Cost_model.instance reserved_term in
  let hours = model.Cost_model.horizon_hours in
  let solve_period k =
    let w = grown base (subscribers_in k) in
    let p = Problem.of_pricing ~capacity_events ~workload:w ~tau model in
    let r = Solver.solve p in
    (k, Workload.num_subscribers w, r.Solver.num_vms,
     Cost_model.bandwidth_cost model r.Solver.bandwidth)
  in
  let solved = List.init periods solve_period in
  let final_vms =
    List.fold_left (fun acc (_, _, vms, _) -> max acc vms) 0 solved
  in
  let baseline_vms =
    match solved with (_, _, vms, _) :: _ -> vms | [] -> 0
  in
  let period_plans =
    List.map
      (fun (k, subscribers, vms, bw_cost) ->
        let cost_on_demand = (float_of_int vms *. od_hourly *. hours) +. bw_cost in
        let cost_all_reserved = (float_of_int final_vms *. ri_hourly *. hours) +. bw_cost in
        let burst = max 0 (vms - baseline_vms) in
        let cost_hybrid =
          (float_of_int baseline_vms *. ri_hourly *. hours)
          +. (float_of_int burst *. od_hourly *. hours)
          +. bw_cost
        in
        { period = k; subscribers; vms_needed = vms; cost_on_demand;
          cost_all_reserved; cost_hybrid })
      solved
  in
  let total f = List.fold_left (fun acc pp -> acc +. f pp) 0. period_plans in
  let total_on_demand = total (fun pp -> pp.cost_on_demand) in
  let total_all_reserved = total (fun pp -> pp.cost_all_reserved) in
  let total_hybrid = total (fun pp -> pp.cost_hybrid) in
  let best =
    if total_on_demand <= total_all_reserved && total_on_demand <= total_hybrid then
      On_demand_only
    else if total_all_reserved <= total_hybrid then All_reserved
    else Hybrid
  in
  { periods = period_plans; total_on_demand; total_all_reserved; total_hybrid; best }
