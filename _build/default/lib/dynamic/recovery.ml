module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Allocation = Mcss_core.Allocation

type stats = { vms_lost : int; pairs_rehomed : int; vms_added : int }

let replan (plan : Reprovision.plan) ~failed =
  let p = plan.Reprovision.problem in
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let dead = Hashtbl.create 8 in
  let old_vms = Allocation.vms plan.Reprovision.allocation in
  List.iter
    (fun id -> if id >= 0 && id < Array.length old_vms then Hashtbl.replace dead id ())
    failed;
  (* Survivors keep their placements; the dead VMs' pairs go to the
     pending pool. *)
  let a = Allocation.create ~capacity:p.Problem.capacity in
  let pending : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let pairs_rehomed = ref 0 in
  let survivors = ref 0 in
  Array.iter
    (fun vm ->
      let id = Allocation.vm_id vm in
      if Hashtbl.mem dead id then
        Allocation.iter_vm_pairs vm (fun t v ->
            incr pairs_rehomed;
            Hashtbl.replace pending t
              (v :: Option.value ~default:[] (Hashtbl.find_opt pending t)))
      else begin
        incr survivors;
        let copy = Allocation.deploy a in
        List.iter
          (fun topic ->
            let subs = Array.of_list (Allocation.subscribers_of_topic_on vm topic) in
            Allocation.place a copy ~topic ~ev:(Workload.event_rate w topic)
              ~subscribers:subs ~from:0 ~count:(Array.length subs))
          (Allocation.topics_on vm)
      end)
    old_vms;
  (* Re-home grouped per topic, most-free first, new VMs on overflow. *)
  let before_placement = Allocation.num_vms a in
  Hashtbl.iter
    (fun topic subs ->
      let ev = Workload.event_rate w topic in
      let subs = Array.of_list subs in
      let n = Array.length subs in
      let from = ref 0 in
      while !from < n do
        let best = ref None in
        Array.iter
          (fun vm ->
            if Allocation.max_pairs_that_fit a vm ~topic ~ev ~eps > 0 then
              match !best with
              | Some b when Allocation.free a b >= Allocation.free a vm -> ()
              | _ -> best := Some vm)
          (Allocation.vms a);
        let vm =
          match !best with
          | Some vm -> vm
          | None ->
              let vm = Allocation.deploy a in
              if Allocation.max_pairs_that_fit a vm ~topic ~ev ~eps = 0 then
                raise
                  (Problem.Infeasible
                     (Printf.sprintf
                        "topic %d: a single pair needs %g bandwidth but BC is %g" topic
                        (2. *. ev) p.Problem.capacity));
              vm
        in
        let k = min (Allocation.max_pairs_that_fit a vm ~topic ~ev ~eps) (n - !from) in
        Allocation.place a vm ~topic ~ev ~subscribers:subs ~from:!from ~count:k;
        from := !from + k
      done)
    pending;
  ( { plan with Reprovision.allocation = a },
    {
      vms_lost = Array.length old_vms - !survivors;
      pairs_rehomed = !pairs_rehomed;
      vms_added = Allocation.num_vms a - before_placement;
    } )
