(** Multi-period capacity planning under growth: social pub/sub workloads
    grow (the paper's traces are samples of services adding users daily),
    and the Reserved-vs-On-Demand decision depends on how much of the
    fleet is a stable baseline. This planner sizes the fleet for each
    future period by scaling the workload, then prices three purchasing
    strategies:

    - {b on-demand}: rent exactly each period's fleet at the On-Demand
      rate;
    - {b all-reserved}: reserve the {e final} period's fleet from day
      one (no elasticity, maximal discount, idle VMs early on);
    - {b hybrid}: reserve the first period's fleet as a baseline and
      cover each period's growth with On-Demand instances.

    Scaling approximates growth by replicating subscribers: period [k]
    uses the base workload with every subscriber's threshold demand
    multiplied via a fleet-size model that is linear in the number of
    subscribers, which matches how the MCSS fleet scales when topic
    popularity stays fixed. Fleet sizes are obtained by solving MCSS on
    the scaled subscriber population. *)

type strategy = On_demand_only | All_reserved | Hybrid

type period_plan = {
  period : int;  (** 0-based. *)
  subscribers : int;
  vms_needed : int;
  cost_on_demand : float;
  cost_all_reserved : float;
  cost_hybrid : float;
}

type plan = {
  periods : period_plan list;
  total_on_demand : float;
  total_all_reserved : float;
  total_hybrid : float;
  best : strategy;
}

val plan :
  base:Mcss_workload.Workload.t ->
  tau:float ->
  capacity_events:float ->
  model:Mcss_pricing.Cost_model.t ->
  growth_per_period:float ->
  periods:int ->
  reserved_term:Mcss_pricing.Billing.term ->
  plan
(** [growth_per_period] is the multiplicative subscriber growth (e.g.
    [1.2] for +20% per period); [periods >= 1]. The [model]'s own term is
    ignored — On-Demand and [reserved_term] prices are taken from
    {!Mcss_pricing.Billing}. Bandwidth cost is charged identically under
    every strategy and included in all totals. Subscriber populations are
    grown by cloning the base workload's subscribers round-robin.
    Raises [Invalid_argument] on a non-positive growth or period count. *)

val pp_strategy : Format.formatter -> strategy -> unit
