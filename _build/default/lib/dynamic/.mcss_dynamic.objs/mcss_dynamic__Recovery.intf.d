lib/dynamic/recovery.mli: Reprovision
