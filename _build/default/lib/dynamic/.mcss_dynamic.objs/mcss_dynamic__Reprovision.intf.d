lib/dynamic/reprovision.mli: Mcss_core
