lib/dynamic/delta.ml: Array Format Hashtbl List Mcss_core Mcss_workload Printf
