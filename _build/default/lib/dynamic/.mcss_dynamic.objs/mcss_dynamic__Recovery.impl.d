lib/dynamic/recovery.ml: Array Hashtbl List Mcss_core Mcss_workload Option Printf Reprovision
