lib/dynamic/churn.ml: Array Delta Float Hashtbl List Mcss_prng Mcss_workload
