lib/dynamic/delta.mli: Format Mcss_workload
