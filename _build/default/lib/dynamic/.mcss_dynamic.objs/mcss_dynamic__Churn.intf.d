lib/dynamic/churn.mli: Delta Mcss_prng Mcss_workload
