lib/dynamic/forecast.mli: Format Mcss_pricing Mcss_workload
