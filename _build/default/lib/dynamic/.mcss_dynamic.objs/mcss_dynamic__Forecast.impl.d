lib/dynamic/forecast.ml: Array Float Format List Mcss_core Mcss_pricing Mcss_workload
