module Workload = Mcss_workload.Workload
module Rng = Mcss_prng.Rng

type params = {
  new_subscribers : int;
  new_subscriber_max_interests : int;
  new_topics : int;
  new_topic_max_rate : float;
  subscribes : int;
  unsubscribes : int;
  rate_changes : int;
  rate_burst_min : float;
  rate_burst_max : float;
}

let default =
  {
    new_subscribers = 20;
    new_subscriber_max_interests = 4;
    new_topics = 5;
    new_topic_max_rate = 50.;
    subscribes = 100;
    unsubscribes = 50;
    rate_changes = 30;
    rate_burst_min = 0.5;
    rate_burst_max = 2.5;
  }

let scaled f =
  let scale n = max 1 (int_of_float (Float.round (float_of_int n *. f))) in
  {
    default with
    new_subscribers = scale default.new_subscribers;
    new_topics = scale default.new_topics;
    subscribes = scale default.subscribes;
    unsubscribes = scale default.unsubscribes;
    rate_changes = scale default.rate_changes;
  }

let tick rng params w =
  let nt = Workload.num_topics w and ns = Workload.num_subscribers w in
  let deltas = ref [] in
  let add d = deltas := d :: !deltas in
  let max_rate = max 1 (int_of_float params.new_topic_max_rate) in
  for _ = 1 to params.new_topics do
    add (Delta.New_topic { rate = float_of_int (1 + Rng.int rng max_rate) })
  done;
  for _ = 1 to params.new_subscribers do
    if nt > 0 then begin
      let k = 1 + Rng.int rng (min params.new_subscriber_max_interests nt) in
      add (Delta.New_subscriber { interests = Rng.sample_without_replacement rng k nt })
    end
  done;
  (* Follows/unfollows target the pre-tick population; collisions within
     the tick are filtered so the batch stays consistent. *)
  let pending_follow : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  if ns > 0 && nt > 0 then begin
    for _ = 1 to params.subscribes do
      let v = Rng.int rng ns and t = Rng.int rng nt in
      if (not (Array.mem t (Workload.interests w v))) && not (Hashtbl.mem pending_follow (v, t))
      then begin
        Hashtbl.add pending_follow (v, t) ();
        add (Delta.Subscribe { subscriber = v; topic = t })
      end
    done;
    for _ = 1 to params.unsubscribes do
      let v = Rng.int rng ns in
      let held = Workload.interests w v in
      if Array.length held > 1 then begin
        let t = held.(Rng.int rng (Array.length held)) in
        if not (Hashtbl.mem pending_follow (v, -1 - t)) then begin
          Hashtbl.add pending_follow (v, -1 - t) ();
          add (Delta.Unsubscribe { subscriber = v; topic = t })
        end
      end
    done
  end;
  if nt > 0 then
    for _ = 1 to params.rate_changes do
      let t = Rng.int rng nt in
      let burst =
        params.rate_burst_min
        +. Rng.float rng (Float.max 1e-9 (params.rate_burst_max -. params.rate_burst_min))
      in
      let rate = Float.max 1. (Float.round (Workload.event_rate w t *. burst)) in
      add (Delta.Rate_change { topic = t; rate })
    done;
  List.rev !deltas

let run rng params ~ticks w f =
  let w = ref w in
  for _ = 1 to ticks do
    let deltas = tick rng params !w in
    f !w deltas;
    w := Delta.apply !w deltas
  done;
  !w
