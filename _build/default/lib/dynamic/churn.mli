(** A parametric churn model for dynamic-provisioning experiments: one
    {!tick} produces the batch of deltas a social pub/sub service might
    accumulate between re-provisioning runs (the paper suggests hourly
    runs in §IV-F) — sign-ups, follows, unfollows, and activity bursts or
    lulls. *)

type params = {
  new_subscribers : int;  (** Sign-ups per tick. *)
  new_subscriber_max_interests : int;  (** Interests a sign-up starts with. *)
  new_topics : int;  (** Fresh publishers per tick. *)
  new_topic_max_rate : float;
  subscribes : int;  (** Follow attempts per tick (skipped if already following). *)
  unsubscribes : int;  (** Unfollow attempts (skipped below 2 interests). *)
  rate_changes : int;  (** Topics whose activity level shifts. *)
  rate_burst_min : float;
  rate_burst_max : float;
      (** Rate multiplier drawn uniformly from
          [rate_burst_min, rate_burst_max]; the result is rounded and
          floored at 1 event. *)
}

val default : params
(** A mild tick: 20 sign-ups, 5 new topics, 100 follows, 50 unfollows,
    30 rate shifts in [0.5, 2.5]x. *)

val scaled : float -> params
(** Multiply all the count fields of {!default} (minimum 1 each). *)

val tick : Mcss_prng.Rng.t -> params -> Mcss_workload.Workload.t -> Delta.t list
(** Generate one tick's deltas against the given workload. The list is
    valid for {!Delta.apply} on exactly that workload. Deterministic for
    a given generator state. *)

val run :
  Mcss_prng.Rng.t -> params -> ticks:int -> Mcss_workload.Workload.t ->
  (Mcss_workload.Workload.t -> Delta.t list -> unit) ->
  Mcss_workload.Workload.t
(** [run rng params ~ticks w f] folds {!tick} + {!Delta.apply} [ticks]
    times, calling [f workload_before deltas] at each step; returns the
    final workload. *)
