lib/exact/lp_export.mli: Mcss_core
