lib/exact/partition.mli: Mcss_core
