lib/exact/brute.ml: Array Hashtbl List Mcss_core Mcss_workload
