lib/exact/lp_export.ml: Array Buffer Mcss_core Mcss_workload Out_channel Printf
