lib/exact/brute.mli: Mcss_core
