lib/exact/partition.ml: Array Mcss_core Mcss_workload
