module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem

let solve xs =
  Array.iter (fun x -> if x <= 0 then invalid_arg "Partition.solve: nonpositive element") xs;
  let total = Array.fold_left ( + ) 0 xs in
  if total mod 2 <> 0 then None
  else begin
    let half = total / 2 in
    let n = Array.length xs in
    (* reach.(s) = index of the first element whose inclusion first made
       sum s reachable, or -1; -2 marks "reachable with no elements". *)
    let reach = Array.make (half + 1) (-1) in
    reach.(0) <- -2;
    (* Downward iteration per element: a cell written in this pass is never
       read in the same pass, so no element is used twice. *)
    for i = 0 to n - 1 do
      for s = half downto xs.(i) do
        if reach.(s) = -1 && reach.(s - xs.(i)) <> -1 then reach.(s) <- i
      done
    done;
    if reach.(half) = -1 then None
    else begin
      let side = Array.make n false in
      let s = ref half in
      while !s > 0 do
        let i = reach.(!s) in
        side.(i) <- true;
        s := !s - xs.(i)
      done;
      Some side
    end
  end

let balanced xs side =
  let total = Array.fold_left ( + ) 0 xs in
  total mod 2 = 0
  &&
  let sum1 = ref 0 in
  Array.iteri (fun i x -> if side.(i) then sum1 := !sum1 + x) xs;
  2 * !sum1 = total

let dcss_cost_threshold = 2.

let reduce xs =
  if Array.length xs = 0 then invalid_arg "Partition.reduce: empty multiset";
  Array.iter (fun x -> if x <= 0 then invalid_arg "Partition.reduce: nonpositive element") xs;
  let event_rates = Array.map float_of_int xs in
  let interests = Array.init (Array.length xs) (fun i -> [| i |]) in
  let workload = Workload.create ~event_rates ~interests in
  let capacity = float_of_int (Array.fold_left ( + ) 0 xs) in
  let tau = float_of_int (Array.fold_left max xs.(0) xs) in
  Problem.create ~workload ~tau ~capacity Problem.unit_costs
