(** Exact MCSS by exhaustive search with branch-and-bound — tractable only
    for tiny instances, where it serves two purposes: quantifying the
    two-stage heuristic's sub-optimality gap, and deciding DCSS instances
    (e.g. those produced by the Theorem II.2 reduction).

    The search exploits that the objective is monotone in the selection
    (adding a pair never lowers the optimal cost), so only {e minimal}
    satisfying interest subsets per subscriber need be considered; for
    each combination of minimal subsets the pairs are packed optimally by
    branch-and-bound over per-pair VM assignments with symmetry breaking
    (a new VM may only be opened as the next index). *)

type result = {
  cost : float;
  num_vms : int;
  bandwidth : float;
  selection : Mcss_core.Selection.t;
  allocation : Mcss_core.Allocation.t;
}

type limits = {
  max_interests : int;
      (** Per-subscriber interest-set size cap for subset enumeration
          (default 16). *)
  max_combinations : int;
      (** Cap on the product of per-subscriber minimal-subset counts
          (default 20_000). *)
  max_pairs : int;
      (** Cap on pairs per packing search (default 14). *)
}

val default_limits : limits

val solve : ?limits:limits -> Mcss_core.Problem.t -> result option
(** [None] when the instance exceeds the limits (never because no solution
    exists: a satisfying selection always exists, and packing only fails
    by {!Mcss_core.Problem.Infeasible}, which propagates). *)

val dcss : ?limits:limits -> Mcss_core.Problem.t -> threshold:float -> bool option
(** The decision problem: [Some true] iff the optimal cost is at most the
    threshold; [None] if over the limits. *)
