(** Export an MCSS instance as a mixed-integer program in CPLEX LP
    format, for users with access to an industrial solver.

    The paper formulates MCSS as the integer program of §II-C and notes
    that no IP solver scales to the millions of variables of real
    workloads — which motivates the heuristic. For the small instances
    where exact answers matter (validation, adversarial cases), this
    module writes the standard linearisation so CPLEX/Gurobi/SCIP/CBC can
    chew on it:

    - [x_t_v_b] ∈ {0,1} — pair (t, v) assigned to VM b (Eq. 1);
    - [z_t_b] ∈ {0,1} — topic t present on VM b (the incoming-stream
      indicator realising [max_{v∈V_t} x_tvb] of Eq. 2);
    - [y_b] ∈ {0,1} — VM b rented (realising [C1(|B|)]);
    - [w_t_v] ∈ {0,1} — pair counted towards satisfaction (realising
      [max_b x_tvb] of Eq. 3);

    with [x ≤ z ≤ y], per-VM capacity [Σ ev·x + Σ ev·z ≤ BC·y],
    satisfaction [Σ_t ev_t·w_t_v ≥ τ_v], [w ≤ Σ_b x], and the
    symmetry-breaking chain [y_b ≥ y_{b+1}].

    Costs must be linear for an LP file: pass the per-VM price and the
    per-event transfer price explicitly. *)

type dimensions = {
  vms : int;  (** The fleet bound [B] used for the model. *)
  variables : int;
  constraints : int;
}

val to_string :
  Mcss_core.Problem.t -> max_vms:int -> vm_usd:float -> per_event_usd:float ->
  string * dimensions
(** Render the model over at most [max_vms] VMs. Note the VM/bandwidth
    trade-off (§II-A): the optimum may use {e more} VMs than a heuristic
    solution to save bandwidth, so pass the heuristic's fleet size plus
    some slack when optimality within the bound matters. Raises
    [Invalid_argument] if [max_vms <= 0]. *)

val save :
  Mcss_core.Problem.t -> max_vms:int -> vm_usd:float -> per_event_usd:float ->
  path:string -> dimensions
(** [to_string] into a file. *)
