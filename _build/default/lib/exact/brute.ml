module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Selection = Mcss_core.Selection
module Allocation = Mcss_core.Allocation

type result = {
  cost : float;
  num_vms : int;
  bandwidth : float;
  selection : Mcss_core.Selection.t;
  allocation : Mcss_core.Allocation.t;
}

type limits = { max_interests : int; max_combinations : int; max_pairs : int }

let default_limits = { max_interests = 16; max_combinations = 20_000; max_pairs = 14 }

(* All minimal subsets of [tv] whose total rate reaches [tau_v]: satisfying,
   and dropping any single member breaks satisfaction. *)
let minimal_subsets w ~eps ~tau_v tv =
  let k = Array.length tv in
  let rate i = Workload.event_rate w tv.(i) in
  let out = ref [] in
  for mask = 0 to (1 lsl k) - 1 do
    let sum = ref 0. in
    for i = 0 to k - 1 do
      if mask land (1 lsl i) <> 0 then sum := !sum +. rate i
    done;
    if !sum +. eps >= tau_v then begin
      let minimal = ref true in
      for i = 0 to k - 1 do
        if mask land (1 lsl i) <> 0 && !sum -. rate i +. eps >= tau_v then
          minimal := false
      done;
      if !minimal then begin
        let subset = ref [] in
        for i = k - 1 downto 0 do
          if mask land (1 lsl i) <> 0 then subset := tv.(i) :: !subset
        done;
        out := Array.of_list !subset :: !out
      end
    end
  done;
  !out

(* Optimal packing of a fixed pair multiset by branch-and-bound: pairs are
   assigned one by one (largest rate first) to an existing VM or to one new
   VM; partial costs are bounded below by the bandwidth already committed
   plus one outgoing unit per remaining pair. *)
let pack_optimal (p : Problem.t) pairs =
  let capacity = p.Problem.capacity in
  let eps = Problem.epsilon p in
  let n = Array.length pairs in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare (snd pairs.(b)) (snd pairs.(a))) order;
  let suffix_out = Array.make (n + 1) 0. in
  for i = n - 1 downto 0 do
    suffix_out.(i) <- suffix_out.(i + 1) +. snd pairs.(order.(i))
  done;
  let best_cost = ref infinity in
  let best_assign = ref [||] in
  let loads = Array.make n 0. in
  let topic_counts = Array.init n (fun _ -> Hashtbl.create 4) in
  let assign = Array.make n (-1) in
  let rec go i used bw =
    let bound = Problem.cost p ~vms:used ~bandwidth:(bw +. suffix_out.(i)) in
    if bound < !best_cost then begin
      if i = n then begin
        best_cost := bound;
        best_assign := Array.copy assign
      end
      else begin
        let t, ev = pairs.(order.(i)) in
        (* Existing VMs 0..used-1 plus at most one fresh VM at index
           [used]; VM count can never exceed the pair count. *)
        for b = 0 to used do
          if b < n then begin
            let new_vm = b = used in
            let counts = topic_counts.(b) in
            let incoming = if Hashtbl.mem counts t then 0. else ev in
            let delta = ev +. incoming in
            if loads.(b) +. delta <= capacity +. eps then begin
              loads.(b) <- loads.(b) +. delta;
              let c = try Hashtbl.find counts t with Not_found -> 0 in
              Hashtbl.replace counts t (c + 1);
              assign.(order.(i)) <- b;
              go (i + 1) (if new_vm then used + 1 else used) (bw +. delta);
              assign.(order.(i)) <- -1;
              if c = 0 then Hashtbl.remove counts t else Hashtbl.replace counts t c;
              loads.(b) <- loads.(b) -. delta
            end
          end
        done
      end
    end
  in
  go 0 0 0.;
  if !best_assign = [||] && n > 0 then
    raise (Problem.Infeasible "Brute.pack_optimal: some pair fits no VM")
  else (!best_cost, !best_assign)

let selection_of_choice w choice =
  let n = Workload.num_subscribers w in
  let chosen = Array.init n (fun v -> Array.copy choice.(v)) in
  Array.iter (fun c -> Array.sort compare c) chosen;
  let selected_rate =
    Array.map
      (Array.fold_left (fun acc t -> acc +. Workload.event_rate w t) 0.)
      chosen
  in
  let num_pairs = Array.fold_left (fun acc c -> acc + Array.length c) 0 chosen in
  let outgoing_rate = Array.fold_left ( +. ) 0. selected_rate in
  { Selection.chosen; selected_rate; num_pairs; outgoing_rate }

let allocation_of_assignment (p : Problem.t) pairs assign =
  let a = Allocation.create ~capacity:p.Problem.capacity in
  let num_vms = Array.fold_left (fun acc b -> max acc (b + 1)) 0 assign in
  let vms = Array.init num_vms (fun _ -> Allocation.deploy a) in
  Array.iteri
    (fun i (t, v) ->
      let ev = Workload.event_rate p.Problem.workload t in
      Allocation.place a vms.(assign.(i)) ~topic:t ~ev ~subscribers:[| v |] ~from:0
        ~count:1)
    pairs;
  a

let solve ?(limits = default_limits) (p : Problem.t) =
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let n = Workload.num_subscribers w in
  let per_subscriber = Array.make n [] in
  let feasible = ref true in
  for v = 0 to n - 1 do
    let tv = Workload.interests w v in
    if Array.length tv > limits.max_interests then feasible := false
    else
      per_subscriber.(v) <-
        minimal_subsets w ~eps ~tau_v:(Problem.tau_v p v) tv
  done;
  let combinations =
    Array.fold_left
      (fun acc subsets -> acc * max 1 (List.length subsets))
      1 per_subscriber
  in
  if (not !feasible) || combinations > limits.max_combinations then None
  else begin
    let best : result option ref = ref None in
    let choice = Array.make n [||] in
    let rec enumerate v =
      if v = n then begin
        let pairs = ref [] in
        Array.iteri
          (fun v' subset ->
            Array.iter (fun t -> pairs := (t, v') :: !pairs) subset)
          choice;
        let pair_ids = Array.of_list (List.rev !pairs) in
        let pair_rates =
          Array.map (fun (t, _) -> (t, Workload.event_rate w t)) pair_ids
        in
        if Array.length pair_rates <= limits.max_pairs then begin
          let cost, assign = pack_optimal p pair_rates in
          let better =
            match !best with None -> true | Some b -> cost < b.cost
          in
          if better then begin
            let allocation = allocation_of_assignment p pair_ids assign in
            let selection = selection_of_choice w choice in
            let bandwidth = Allocation.total_load allocation in
            best :=
              Some
                {
                  cost;
                  num_vms = Allocation.num_vms allocation;
                  bandwidth;
                  selection;
                  allocation;
                }
          end
        end
        else feasible := false
      end
      else
        match per_subscriber.(v) with
        | [] ->
            (* No interests: the empty subset is the only choice. *)
            choice.(v) <- [||];
            enumerate (v + 1)
        | subsets ->
            List.iter
              (fun subset ->
                choice.(v) <- subset;
                enumerate (v + 1))
              subsets
    in
    enumerate 0;
    if not !feasible then None else !best
  end

let dcss ?limits p ~threshold =
  match solve ?limits p with
  | None -> None
  | Some r -> Some (r.cost <= threshold +. 1e-9)
