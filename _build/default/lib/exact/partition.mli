(** The Partition Problem and its reduction to DCSS (Theorem II.2) — the
    paper's NP-hardness argument, as executable code.

    Given a multiset of positive integers, Partition asks whether it splits
    into two halves of equal sum. The reduction creates one topic per
    integer [x_i] with rate [x_i] and a dedicated subscriber, sets
    [BC = Σ x_i], [τ = max x_i], [C1(n) = n] and [C2 = 0]; the instance
    then admits total cost (= VM count) at most 2 iff the partition
    exists. *)

val solve : int array -> bool array option
(** Pseudo-polynomial DP: [Some side] maps each element to its half when a
    perfect partition exists, [None] otherwise. Requires all elements
    positive. O(n · Σ/2) time and space. *)

val reduce : int array -> Mcss_core.Problem.t
(** The Theorem II.2 instance for the given multiset. Requires a
    nonempty array of positive integers. *)

val dcss_cost_threshold : float
(** The constant [CT = 2] used by the reduction. *)

val balanced : int array -> bool array -> bool
(** [balanced xs side] checks a claimed partition: both halves sum to
    [Σ xs / 2]. *)
