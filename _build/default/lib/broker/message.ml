type t = { id : int; topic : int; publish_time : float; size_bytes : int }

let make ~id ~topic ~publish_time ~size_bytes =
  if id < 0 then invalid_arg "Message.make: negative id";
  if size_bytes < 0 then invalid_arg "Message.make: negative size";
  if publish_time < 0. then invalid_arg "Message.make: negative time";
  { id; topic; publish_time; size_bytes }

let compare_by_time a b =
  match compare a.publish_time b.publish_time with 0 -> compare a.id b.id | c -> c

let pp ppf m =
  Format.fprintf ppf "msg#%d(topic %d @ %.4f, %dB)" m.id m.topic m.publish_time
    m.size_bytes
