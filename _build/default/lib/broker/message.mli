(** Publication messages as the broker fleet sees them: unlike the
    counting simulator ({!Mcss_sim.Simulator}), the broker runtime routes
    individual message values with identities and sizes, so duplicate
    detection, ordering and latency are observable. *)

type t = private {
  id : int;  (** Globally unique, in publish order. *)
  topic : Mcss_workload.Workload.topic;
  publish_time : float;  (** Horizon-normalised, like the simulator. *)
  size_bytes : int;
}

val make : id:int -> topic:int -> publish_time:float -> size_bytes:int -> t
(** Raises [Invalid_argument] on a negative id/size or time. *)

val compare_by_time : t -> t -> int
(** Publish-time order, ties by id — the canonical processing order. *)

val pp : Format.formatter -> t -> unit
