(** Analytic queueing formulas, used to validate the broker's measured
    latency against theory: a broker ingesting a Poisson stream with a
    fixed per-message work is exactly an M/D/1 queue, so the
    Pollaczek–Khinchine mean applies. The test suite drives a
    single-topic fleet with Poisson arrivals and checks the measured mean
    sojourn against {!md1_mean_sojourn} — a cross-validation no amount of
    unit-testing the simulator against itself can provide. *)

val md1_mean_wait : utilization:float -> service_time:float -> float
(** Mean time in queue (excluding service) of an M/D/1 server:
    [ρ·s / (2·(1 - ρ))]. Raises [Invalid_argument] unless
    [0 <= utilization < 1] and [service_time >= 0]. *)

val md1_mean_sojourn : utilization:float -> service_time:float -> float
(** Mean total time in system: wait plus service. *)

val mm1_mean_sojourn : utilization:float -> service_time:float -> float
(** The M/M/1 counterpart [s / (1 - ρ)], an upper envelope for the
    deterministic-service broker. Same domain as {!md1_mean_wait}. *)
