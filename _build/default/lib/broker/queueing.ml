let check ~utilization ~service_time =
  if utilization < 0. || utilization >= 1. then
    invalid_arg "Queueing: utilization must be in [0, 1)";
  if service_time < 0. then invalid_arg "Queueing: service_time must be nonnegative"

let md1_mean_wait ~utilization ~service_time =
  check ~utilization ~service_time;
  utilization *. service_time /. (2. *. (1. -. utilization))

let md1_mean_sojourn ~utilization ~service_time =
  md1_mean_wait ~utilization ~service_time +. service_time

let mm1_mean_sojourn ~utilization ~service_time =
  check ~utilization ~service_time;
  service_time /. (1. -. utilization)
