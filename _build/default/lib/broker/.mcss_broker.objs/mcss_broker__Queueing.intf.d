lib/broker/queueing.mli:
