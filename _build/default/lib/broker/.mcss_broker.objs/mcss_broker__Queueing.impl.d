lib/broker/queueing.ml:
