lib/broker/fleet.ml: Array Broker Float Int64 List Mcss_core Mcss_prng Mcss_workload Message
