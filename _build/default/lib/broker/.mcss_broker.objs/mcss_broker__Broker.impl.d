lib/broker/broker.ml: Float Hashtbl Mcss_core Mcss_workload Message Printf
