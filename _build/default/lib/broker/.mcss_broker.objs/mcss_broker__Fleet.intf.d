lib/broker/fleet.mli: Broker Mcss_core Mcss_workload
