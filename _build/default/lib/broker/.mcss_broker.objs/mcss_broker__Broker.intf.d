lib/broker/broker.mli: Mcss_workload Message
