lib/broker/message.ml: Format
