lib/broker/message.mli: Format Mcss_workload
