type point = { x : float; y : float }

type t = { name : string; points : point list }

let of_pairs ~name pairs =
  { name; points = List.map (fun (x, y) -> { x; y }) pairs }

let of_int_pairs ~name pairs =
  { name; points = List.map (fun (x, y) -> { x = float_of_int x; y }) pairs }

let to_string s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "# %s\n# x y\n" s.name);
  List.iter
    (fun { x; y } -> Buffer.add_string buf (Printf.sprintf "%.10g %.10g\n" x y))
    s.points;
  Buffer.contents buf

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let save s ~dir =
  mkdir_p dir;
  let path = Filename.concat dir (s.name ^ ".dat") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string s))

let save_all series ~dir = List.iter (fun s -> save s ~dir) series
