(** Numeric data series written as whitespace-separated [.dat] files, one
    point per line — the format gnuplot consumes, used to dump the data
    behind each reproduced figure. *)

type point = { x : float; y : float }

type t = { name : string; points : point list }

val of_pairs : name:string -> (float * float) list -> t
val of_int_pairs : name:string -> (int * float) list -> t

val save : t -> dir:string -> unit
(** [save s ~dir] writes [dir ^ "/" ^ s.name ^ ".dat"], creating [dir] if
    needed. The file starts with a ["# x y"] comment header. *)

val save_all : t list -> dir:string -> unit

val to_string : t -> string
