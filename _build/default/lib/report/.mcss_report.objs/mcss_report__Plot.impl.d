lib/report/plot.ml: Buffer Filename Fun List Printf String Sys
