lib/report/table.mli:
