lib/report/series.mli:
