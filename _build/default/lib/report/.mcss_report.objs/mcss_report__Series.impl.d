lib/report/series.ml: Buffer Filename Fun List Printf Sys
