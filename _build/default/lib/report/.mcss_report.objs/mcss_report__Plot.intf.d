lib/report/plot.mli:
