type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : (string * align) list;
  mutable rows : row list;  (* reversed *)
}

let create headers = { headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns" (List.length cells)
         (List.length t.headers));
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure (List.map fst t.headers);
  List.iter (function Cells cells -> measure cells | Separator -> ()) rows;
  let buf = Buffer.create 1024 in
  let rule () =
    Array.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "-+-";
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  let emit cells aligns =
    List.iteri
      (fun i (c, a) ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad a widths.(i) c))
      (List.combine cells aligns);
    Buffer.add_char buf '\n'
  in
  let aligns = List.map snd t.headers in
  emit (List.map fst t.headers) aligns;
  rule ();
  List.iter
    (function Cells cells -> emit cells aligns | Separator -> rule ())
    rows;
  Buffer.contents buf

let print t = print_string (render t)

let cell_float ?(decimals = 1) x = Printf.sprintf "%.*f" decimals x
let cell_usd x = Printf.sprintf "$%.2f" x
let cell_pct x = Printf.sprintf "%.1f%%" x

let pct_change ~baseline x =
  if baseline = 0. then 0. else (baseline -. x) /. baseline *. 100.
