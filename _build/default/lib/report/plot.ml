type axis = Linear | Log

type style = Lines | Points | Linespoints

type spec = {
  title : string;
  xlabel : string;
  ylabel : string;
  xaxis : axis;
  yaxis : axis;
  style : style;
  series : (string * string) list;
}

let style_keyword = function
  | Lines -> "lines"
  | Points -> "points"
  | Linespoints -> "linespoints"

(* Minimal escaping for gnuplot double-quoted strings. *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let script spec ~output =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "set terminal pngcairo size 800,600\n";
  add "set output \"%s\"\n" (escape output);
  add "set title \"%s\"\n" (escape spec.title);
  add "set xlabel \"%s\"\n" (escape spec.xlabel);
  add "set ylabel \"%s\"\n" (escape spec.ylabel);
  (match spec.xaxis with Log -> add "set logscale x\n" | Linear -> ());
  (match spec.yaxis with Log -> add "set logscale y\n" | Linear -> ());
  add "set key outside\n";
  add "plot";
  List.iteri
    (fun i (label, path) ->
      if i > 0 then add ",";
      add " \"%s\" using 1:2 with %s title \"%s\"" (escape path)
        (style_keyword spec.style) (escape label))
    spec.series;
  add "\n";
  Buffer.contents buf

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let save spec ~dir ~name =
  mkdir_p dir;
  let path = Filename.concat dir (name ^ ".gp") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (script spec ~output:(name ^ ".png")))
