(** Gnuplot script generation, so the [.dat] series written by
    {!Series} turn into the paper's figures with one
    [gnuplot bench_out/fig8.gp]. *)

type axis = Linear | Log

type style = Lines | Points | Linespoints

type spec = {
  title : string;
  xlabel : string;
  ylabel : string;
  xaxis : axis;
  yaxis : axis;
  style : style;
  series : (string * string) list;
      (** (legend label, path to the .dat file relative to where gnuplot
          runs). *)
}

val script : spec -> output:string -> string
(** The gnuplot script text; [output] is the PNG file the script writes
    ([set terminal pngcairo]). *)

val save : spec -> dir:string -> name:string -> unit
(** Write [dir/name.gp] producing [dir/name.png]; creates [dir] if
    needed. Series paths are emitted as given — keep them relative to
    [dir] and run gnuplot from there. *)
