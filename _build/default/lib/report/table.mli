(** Minimal aligned plain-text tables, shared by the benchmark harness, the
    CLI and the examples to print the paper's figures as rows. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : (string * align) list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; raises [Invalid_argument] if the arity differs from the
    header. *)

val add_separator : t -> unit
(** Append a horizontal rule row. *)

val render : t -> string
(** The finished table, including a header rule, newline-terminated. *)

val print : t -> unit
(** [render] to stdout. *)

val cell_float : ?decimals:int -> float -> string
(** Format a float for a table cell (default 1 decimal). *)

val cell_usd : float -> string
(** ["$1234.56"]. *)

val cell_pct : float -> string
(** ["12.3%"]. *)

val pct_change : baseline:float -> float -> float
(** [(baseline - x) / baseline * 100], the "reduction vs baseline"
    convention used throughout the paper's evaluation. *)
