lib/sim/simulator.mli: Mcss_core
