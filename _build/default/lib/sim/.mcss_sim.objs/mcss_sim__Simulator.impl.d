lib/sim/simulator.ml: Array Event_heap Float Hashtbl Int64 List Mcss_core Mcss_prng Mcss_workload Option Printf
