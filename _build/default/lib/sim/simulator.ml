module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Allocation = Mcss_core.Allocation

type arrivals =
  | Deterministic
  | Poisson of int
  | Diurnal of { seed : int; amplitude : float }

let pi = 4. *. atan 1.

(* Intensity modulation with unit mean over whole horizons. *)
let modulation ~amplitude time = 1. +. (amplitude *. sin (2. *. pi *. time))

type outage = { vm : int; from_time : float; until_time : float }

type config = {
  duration : float;
  buckets : int;
  arrivals : arrivals;
  outages : outage list;
}

let default_config =
  { duration = 1.0; buckets = 20; arrivals = Deterministic; outages = [] }

type result = {
  events_published : int;
  vm_ingress : int array;
  vm_egress : int array;
  delivered : int array;
  lost : int array;
  vm_bucket_load : float array array;
  config : config;
}

(* A deterministic per-topic phase in [0, 1): decorrelates the evenly
   spaced publication streams without any RNG state. *)
let phase_of_topic t =
  let h = Int64.to_int (Int64.shift_right_logical (Int64.mul (Int64.of_int (t + 1)) 0x9E3779B97F4A7C15L) 11) in
  float_of_int h *. 0x1p-53

let run (p : Problem.t) a config =
  if not (config.duration > 0.) then invalid_arg "Simulator.run: duration must be positive";
  if config.buckets < 1 then invalid_arg "Simulator.run: buckets must be >= 1";
  (match config.arrivals with
  | Diurnal { amplitude; _ } when amplitude < 0. || amplitude >= 1. ->
      invalid_arg "Simulator.run: diurnal amplitude must be in [0, 1)"
  | _ -> ());
  let w = p.Problem.workload in
  let num_vms = Allocation.num_vms a in
  (* hosting.(t): the VMs carrying pairs of topic t, with pair counts. *)
  let hosting = Array.make (Workload.num_topics w) [] in
  Array.iter
    (fun vm ->
      let counts = Hashtbl.create 16 in
      Allocation.iter_vm_pairs vm (fun t _v ->
          Hashtbl.replace counts t (1 + Option.value ~default:0 (Hashtbl.find_opt counts t)));
      Hashtbl.iter
        (fun t c -> hosting.(t) <- (Allocation.vm_id vm, c) :: hosting.(t))
        counts)
    (Allocation.vms a);
  let vm_ingress = Array.make num_vms 0 in
  let vm_egress = Array.make num_vms 0 in
  let vm_bucket_load = Array.make_matrix num_vms config.buckets 0. in
  (* Outage windows per VM, and a per-(vm, topic) count of publications a
     down VM failed to forward. *)
  let vm_outages = Array.make num_vms [] in
  List.iter
    (fun o ->
      if o.vm >= 0 && o.vm < num_vms then
        vm_outages.(o.vm) <- (o.from_time, o.until_time) :: vm_outages.(o.vm))
    config.outages;
  let down vm time =
    List.exists (fun (f, u) -> time >= f && time < u) vm_outages.(vm)
  in
  let missed : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let pubs = Array.make (Workload.num_topics w) 0 in
  let events_published = ref 0 in
  let bucket_of time =
    min (config.buckets - 1) (int_of_float (time /. config.duration *. float_of_int config.buckets))
  in
  let publish time t =
    pubs.(t) <- pubs.(t) + 1;
    incr events_published;
    let k = bucket_of time in
    List.iter
      (fun (vm, count) ->
        if down vm time then
          Hashtbl.replace missed (vm, t)
            (1 + Option.value ~default:0 (Hashtbl.find_opt missed (vm, t)))
        else begin
          vm_ingress.(vm) <- vm_ingress.(vm) + 1;
          vm_egress.(vm) <- vm_egress.(vm) + count;
          vm_bucket_load.(vm).(k) <- vm_bucket_load.(vm).(k) +. float_of_int (1 + count)
        end)
      hosting.(t)
  in
  (* Drive all topic streams through one time-ordered queue. Each heap
     payload is (topic, interval): [interval <= 0.] marks a Poisson stream
     whose next gap is drawn on the fly. *)
  let heap = Event_heap.create () in
  let rng =
    match config.arrivals with
    | Deterministic -> None
    | Poisson seed | Diurnal { seed; _ } -> Some (Mcss_prng.Rng.create seed)
  in
  (* Every topic publishes — whether or not the allocation forwards it —
     so the delivered counts reflect the world, not just the fleet. *)
  for t = 0 to Workload.num_topics w - 1 do
    let ev = Workload.event_rate w t in
    match config.arrivals with
    | Deterministic ->
        let n = int_of_float (Float.round (ev *. config.duration)) in
        if n > 0 then begin
          let interval = config.duration /. float_of_int n in
          Event_heap.push heap (phase_of_topic t *. interval) (t, interval)
        end
    | Poisson _ ->
        let rng = Option.get rng in
        let first = Mcss_prng.Dist.exponential rng ~mean:(1. /. ev) in
        if first < config.duration then Event_heap.push heap first (t, -1.)
    | Diurnal { amplitude; _ } ->
        (* Thinning: candidates at the peak rate, accepted with
           probability modulation/peak; rejected candidates re-arm the
           stream without publishing (interval = -2 marks the variant). *)
        let rng = Option.get rng in
        let peak = ev *. (1. +. amplitude) in
        let first = Mcss_prng.Dist.exponential rng ~mean:(1. /. peak) in
        if first < config.duration then Event_heap.push heap first (t, -2.)
  done;
  let amplitude =
    match config.arrivals with Diurnal { amplitude; _ } -> amplitude | _ -> 0.
  in
  let rec drain () =
    match Event_heap.pop heap with
    | None -> ()
    | Some (time, (t, interval)) ->
        let ev = Workload.event_rate w t in
        (if interval = -2. then begin
           (* Diurnal thinning: accept at the modulated fraction. *)
           let accept =
             Mcss_prng.Rng.unit_float (Option.get rng)
             < modulation ~amplitude time /. (1. +. amplitude)
           in
           if accept then publish time t
         end
         else publish time t);
        let next =
          if interval > 0. then time +. interval
          else if interval = -2. then
            time
            +. Mcss_prng.Dist.exponential (Option.get rng)
                 ~mean:(1. /. (ev *. (1. +. amplitude)))
          else time +. Mcss_prng.Dist.exponential (Option.get rng) ~mean:(1. /. ev)
        in
        if next < config.duration then Event_heap.push heap next (t, interval);
        drain ()
  in
  drain ();
  (* Each distinct placed pair delivers every publication of its topic
     once (duplicates across VMs would double-deliver in a real broker
     too, but the verifier rules them out upstream). *)
  let delivered = Array.make (Workload.num_subscribers w) 0 in
  let lost = Array.make (Workload.num_subscribers w) 0 in
  let seen = Hashtbl.create 1024 in
  Array.iter
    (fun vm ->
      let b = Allocation.vm_id vm in
      Allocation.iter_vm_pairs vm (fun t v ->
          if not (Hashtbl.mem seen (t, v)) then begin
            Hashtbl.add seen (t, v) ();
            let dropped = Option.value ~default:0 (Hashtbl.find_opt missed (b, t)) in
            delivered.(v) <- delivered.(v) + pubs.(t) - dropped;
            lost.(v) <- lost.(v) + dropped
          end))
    (Allocation.vms a);
  {
    events_published = !events_published;
    vm_ingress;
    vm_egress;
    delivered;
    lost;
    vm_bucket_load;
    config;
  }

let total_vm_traffic r ~vm = r.vm_ingress.(vm) + r.vm_egress.(vm)

let peak_bucket_rate r ~vm =
  let bucket_len = r.config.duration /. float_of_int r.config.buckets in
  Array.fold_left Float.max 0. r.vm_bucket_load.(vm) /. bucket_len

type check = {
  unsatisfied : (int * int * float) list;
  traffic_mismatch : (int * int * float) list;
}

(* Allowed deviation around an expected count [x]: proportional plus a
   sampling-noise term that matters for small counts (Poisson stddev is
   √x). Zero tolerance demands exact agreement. *)
let slack ~tolerance x = (tolerance *. (x +. (3. *. sqrt (Float.max x 1.)))) +. 1e-9

let check (p : Problem.t) a r ~tolerance =
  let w = p.Problem.workload in
  let unsatisfied = ref [] in
  for v = Workload.num_subscribers w - 1 downto 0 do
    let required = Problem.tau_v p v *. r.config.duration in
    if float_of_int r.delivered.(v) +. slack ~tolerance required < required then
      unsatisfied := (v, r.delivered.(v), required) :: !unsatisfied
  done;
  let traffic_mismatch = ref [] in
  Array.iter
    (fun vm ->
      let b = Allocation.vm_id vm in
      let measured = total_vm_traffic r ~vm:b in
      let analytical = Allocation.load vm *. r.config.duration in
      if Float.abs (float_of_int measured -. analytical) > slack ~tolerance analytical
      then traffic_mismatch := (b, measured, analytical) :: !traffic_mismatch)
    (Allocation.vms a);
  { unsatisfied = !unsatisfied; traffic_mismatch = !traffic_mismatch }

let all_ok c = c.unsatisfied = [] && c.traffic_mismatch = []
