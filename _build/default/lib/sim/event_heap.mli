(** A binary min-heap keyed by float timestamps — the pending-event queue
    of the discrete-event simulator. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** Insert a payload at the given key. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the entry with the smallest key; [None] when empty.
    Entries with equal keys come out in unspecified relative order. *)

val peek : 'a t -> (float * 'a) option
