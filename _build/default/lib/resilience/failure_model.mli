(** Seeded, deterministic fault campaigns.

    A campaign is a list of faults in campaign time (horizons, like
    simulator time). Faults name VM {e slots}: fleet positions at the
    moment the fault strikes, so a campaign stays meaningful across
    repairs that renumber the fleet. Compiling a campaign against a
    concrete fleet yields {!Mcss_sim.Simulator.outage} windows; faults
    aimed at slots beyond the fleet are dropped (a smaller fleet simply
    has nothing there to break).

    Zones model correlated failure domains (racks, availability zones):
    VM [b] lives in zone [b mod zones], and a {!Zone_burst} takes out
    every VM of one zone at once — the case k-redundant placement with
    zone anti-affinity ({!Redundancy}) is built to survive. *)

type fault =
  | Crash of { vm : int; at : float }
      (** Permanent death at [at] — down until repaired (or forever). *)
  | Transient of { vm : int; from_time : float; until_time : float }
      (** Full outage over a bounded window; recovers by itself. *)
  | Throttle of { vm : int; from_time : float; until_time : float; severity : float }
      (** Capacity-throttled VM: drops a [severity] fraction of its
          events inside the window. [severity] in (0, 1). *)
  | Zone_burst of { zone : int; at : float; duration : float }
      (** Zone-correlated burst: every VM of the zone is fully down for
          [duration] horizons starting at [at]. *)

type campaign = { seed : int; faults : fault list }
(** [seed] also drives the orchestrator's backoff jitter, so one value
    reproduces a whole drill. *)

val zone_of_vm : zones:int -> int -> int
(** The zone of a VM slot: [vm mod zones]. Requires [zones >= 1]. *)

val start_time : fault -> float
(** When the fault begins. *)

val validate : campaign -> unit
(** Raises [Invalid_argument] on a malformed fault: negative vm/zone,
    negative or NaN times, inverted windows, nonpositive duration, or a
    throttle severity outside (0, 1). *)

val compile : campaign -> num_vms:int -> zones:int -> Mcss_sim.Simulator.outage list
(** Lower the campaign onto a concrete fleet, in fault order. Validates
    first. Faults on slots [>= num_vms] (or zones [>= zones]) compile to
    nothing. *)

val compile_fault : fault -> num_vms:int -> zones:int -> Mcss_sim.Simulator.outage list
(** Lower one (already validated) fault — what the orchestrator does at
    the moment a fault strikes, against the fleet of that moment. *)

val random :
  seed:int ->
  num_vms:int ->
  zones:int ->
  ?crashes:int ->
  ?transients:int ->
  ?throttles:int ->
  ?zone_bursts:int ->
  ?horizon:float ->
  unit ->
  campaign
(** A reproducible random campaign: fault times are spread over
    [[0.05·horizon, 0.85·horizon)] ([horizon] defaults to [1.]), windows
    and severities drawn from {!Mcss_prng}. Defaults: 1 crash, 1
    transient, 1 throttle, 1 zone burst. *)

val fault_to_string : fault -> string
(** Compact textual form, the CLI campaign format:
    [crash:VM\@AT], [transient:VM\@FROM-UNTIL],
    [throttle:VM\@FROM-UNTIL*SEVERITY], [zone:Z\@AT+DURATION]. *)

val fault_of_string : string -> (fault, string) result
(** Parse the {!fault_to_string} format; [Error] carries a message
    naming the offending input. *)

val pp_fault : Format.formatter -> fault -> unit
