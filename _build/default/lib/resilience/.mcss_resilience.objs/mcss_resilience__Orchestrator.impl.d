lib/resilience/orchestrator.ml: Array Failure_model Float Format List Mcss_core Mcss_dynamic Mcss_prng Mcss_sim Mcss_workload Printf Sla
