lib/resilience/sla.ml: Format List
