lib/resilience/redundancy.mli: Format Mcss_core
