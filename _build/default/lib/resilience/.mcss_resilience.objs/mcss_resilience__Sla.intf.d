lib/resilience/sla.mli: Format
