lib/resilience/failure_model.ml: Format List Mcss_prng Mcss_sim Printf String
