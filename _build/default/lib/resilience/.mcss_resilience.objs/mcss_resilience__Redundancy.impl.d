lib/resilience/redundancy.ml: Array Failure_model Float Format Hashtbl List Mcss_core Mcss_workload Option Printf
