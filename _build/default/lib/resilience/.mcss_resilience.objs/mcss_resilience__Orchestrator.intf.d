lib/resilience/orchestrator.mli: Failure_model Mcss_core Mcss_dynamic Mcss_prng Sla
