lib/resilience/failure_model.mli: Format Mcss_sim
