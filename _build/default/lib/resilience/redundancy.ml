module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Selection = Mcss_core.Selection
module Allocation = Mcss_core.Allocation
module Cbp = Mcss_core.Cbp
module Lower_bound = Mcss_core.Lower_bound

type stats = {
  k : int;
  zones : int;
  replicas_placed : int;
  zone_diverse_pairs : int;
  base_vms : int;
  base_cost : float;
  vms : int;
  bandwidth : float;
  cost : float;
  lb_cost : float;
  overhead_vs_base_pct : float;
  overhead_vs_lb_pct : float;
}

let pair_hosts a =
  let hosts : (int * int, int list) Hashtbl.t = Hashtbl.create 1024 in
  Array.iter
    (fun vm ->
      let id = Allocation.vm_id vm in
      Allocation.iter_vm_pairs vm (fun t v ->
          Hashtbl.replace hosts (t, v)
            (id :: Option.value ~default:[] (Hashtbl.find_opt hosts (t, v)))))
    (Allocation.vms a);
  hosts

let place ?(zones = 1) ~k (p : Problem.t) selection =
  if k < 1 then invalid_arg "Redundancy.place: k must be >= 1";
  if zones < 1 then invalid_arg "Redundancy.place: zones must be >= 1";
  let a = Cbp.run p selection Cbp.with_cost_decision in
  let base_vms = Allocation.num_vms a in
  let base_cost = Problem.cost p ~vms:base_vms ~bandwidth:(Allocation.total_load a) in
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let hosts = pair_hosts a in
  let groups = Array.copy (Selection.pairs_by_topic p selection) in
  (* Replica rounds reuse CBP's expensive-first order: the topics whose
     splitting costs the most ingress get first pick of space. *)
  Array.sort
    (fun (t1, _) (t2, _) ->
      compare
        (-.Workload.event_rate w t1, t1)
        (-.Workload.event_rate w t2, t2))
    groups;
  let replicas = ref 0 in
  for _round = 2 to k do
    Array.iter
      (fun (topic, subscribers) ->
        let ev = Workload.event_rate w topic in
        Array.iter
          (fun v ->
            let current = Option.value ~default:[] (Hashtbl.find_opt hosts (topic, v)) in
            let current_zones =
              List.map (Failure_model.zone_of_vm ~zones) current
            in
            (* Most-free admissible VM, preferring zones no copy occupies. *)
            let best = ref None and best_diverse = ref None in
            Array.iter
              (fun vm ->
                let id = Allocation.vm_id vm in
                if
                  (not (List.mem id current))
                  && Allocation.max_pairs_that_fit a vm ~topic ~ev ~eps > 0
                then begin
                  (match !best with
                  | Some b when Allocation.free a b >= Allocation.free a vm -> ()
                  | _ -> best := Some vm);
                  if not (List.mem (Failure_model.zone_of_vm ~zones id) current_zones)
                  then
                    match !best_diverse with
                    | Some b when Allocation.free a b >= Allocation.free a vm -> ()
                    | _ -> best_diverse := Some vm
                end)
              (Allocation.vms a);
            let vm =
              match (!best_diverse, !best) with
              | Some vm, _ -> vm
              | None, Some vm -> vm
              | None, None ->
                  let vm = Allocation.deploy a in
                  if Allocation.max_pairs_that_fit a vm ~topic ~ev ~eps = 0 then
                    raise
                      (Problem.Infeasible
                         (Printf.sprintf
                            "topic %d: a replica pair needs %g bandwidth but BC is %g"
                            topic (2. *. ev) p.Problem.capacity));
                  vm
            in
            Allocation.place a vm ~topic ~ev ~subscribers:[| v |] ~from:0 ~count:1;
            incr replicas;
            Hashtbl.replace hosts (topic, v) (Allocation.vm_id vm :: current))
          subscribers)
      groups
  done;
  let zone_diverse_pairs =
    Hashtbl.fold
      (fun _ vm_ids acc ->
        let distinct =
          List.sort_uniq compare (List.map (Failure_model.zone_of_vm ~zones) vm_ids)
        in
        if List.length distinct >= min k zones then acc + 1 else acc)
      hosts 0
  in
  let vms = Allocation.num_vms a in
  let bandwidth = Allocation.total_load a in
  let cost = Problem.cost p ~vms ~bandwidth in
  let lb_cost = (Lower_bound.compute p).Lower_bound.cost in
  let pct over base = if base > 0. then (over -. base) /. base *. 100. else 0. in
  ( a,
    {
      k;
      zones;
      replicas_placed = !replicas;
      zone_diverse_pairs;
      base_vms;
      base_cost;
      vms;
      bandwidth;
      cost;
      lb_cost;
      overhead_vs_base_pct = pct cost base_cost;
      overhead_vs_lb_pct = pct cost lb_cost;
    } )

let check (p : Problem.t) selection ~k a =
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let exception Bad of string in
  try
    (* Recomputed loads, capacity, and same-VM duplicates. *)
    Array.iter
      (fun vm ->
        let seen = Hashtbl.create 16 in
        let topics = Hashtbl.create 16 in
        let outgoing = ref 0. in
        Allocation.iter_vm_pairs vm (fun t v ->
            if Hashtbl.mem seen (t, v) then
              raise
                (Bad
                   (Printf.sprintf "VM %d hosts pair (%d, %d) twice"
                      (Allocation.vm_id vm) t v));
            Hashtbl.add seen (t, v) ();
            Hashtbl.replace topics t ();
            outgoing := !outgoing +. Workload.event_rate w t);
        let incoming = Hashtbl.fold (fun t () acc -> acc +. Workload.event_rate w t) topics 0. in
        let recomputed = !outgoing +. incoming in
        if recomputed > p.Problem.capacity +. eps then
          raise
            (Bad
               (Printf.sprintf "VM %d over capacity: %g > %g" (Allocation.vm_id vm)
                  recomputed p.Problem.capacity));
        if Float.abs (recomputed -. Allocation.load vm) > eps then
          raise
            (Bad
               (Printf.sprintf "VM %d load mismatch: tracked %g, recomputed %g"
                  (Allocation.vm_id vm) (Allocation.load vm) recomputed)))
      (Allocation.vms a);
    (* Every selected pair exactly k times; no strays. *)
    let placed : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
    Array.iter
      (fun vm ->
        Allocation.iter_vm_pairs vm (fun t v ->
            Hashtbl.replace placed (t, v)
              (1 + Option.value ~default:0 (Hashtbl.find_opt placed (t, v)))))
      (Allocation.vms a);
    let selected = Hashtbl.create 1024 in
    Selection.iter_pairs selection (fun t v ->
        Hashtbl.add selected (t, v) ();
        let copies = Option.value ~default:0 (Hashtbl.find_opt placed (t, v)) in
        if copies <> k then
          raise
            (Bad (Printf.sprintf "pair (%d, %d) placed %d times, wanted %d" t v copies k)));
    Hashtbl.iter
      (fun (t, v) _ ->
        if not (Hashtbl.mem selected (t, v)) then
          raise (Bad (Printf.sprintf "pair (%d, %d) placed but never selected" t v)))
      placed;
    (* Satisfaction from distinct placed topics. *)
    let delivered = Array.make (Workload.num_subscribers w) 0. in
    let seen_topic = Hashtbl.create 1024 in
    Hashtbl.iter
      (fun (t, v) _ ->
        if not (Hashtbl.mem seen_topic (t, v)) then begin
          Hashtbl.add seen_topic (t, v) ();
          delivered.(v) <- delivered.(v) +. Workload.event_rate w t
        end)
      placed;
    for v = 0 to Workload.num_subscribers w - 1 do
      let required = Problem.tau_v p v in
      if delivered.(v) +. eps < required then
        raise
          (Bad
             (Printf.sprintf "subscriber %d delivered %g < required %g" v delivered.(v)
                required))
    done;
    Ok ()
  with Bad m -> err "Redundancy.check: %s" m

let pp_stats ppf s =
  Format.fprintf ppf
    "k=%d over %d zone(s): %d VMs (k=1: %d), %d replicas, %d/%d pairs zone-diverse,@ \
     cost $%.2f = +%.1f%% vs k=1, +%.1f%% vs lower bound"
    s.k s.zones s.vms s.base_vms s.replicas_placed s.zone_diverse_pairs
    (s.replicas_placed / (max 1 (s.k - 1)))
    s.cost s.overhead_vs_base_pct s.overhead_vs_lb_pct
