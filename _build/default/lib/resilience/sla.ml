type epoch = {
  index : int;
  hours : float;
  violations : int;
  subscribers : int;
  delivered : int;
  lost : int;
  repaired : bool;
}

type report = {
  epochs : int;
  horizon_hours : float;
  delivered_events : int;
  lost_events : int;
  delivered_fraction : float;
  violation_hours : float;
  violation_epochs : int;
  worst_epoch_violations : int;
  repairs : int;
  mean_epochs_to_recover : float;
  downtime_cost : float;
}

type t = { mutable entries : epoch list (* newest first *) }

let create () = { entries = [] }
let record t e = t.entries <- e :: t.entries
let entries t = List.rev t.entries

let report ?(penalty_usd_per_violation_hour = 0.) t =
  let es = entries t in
  let epochs = List.length es in
  let horizon_hours = List.fold_left (fun acc e -> acc +. e.hours) 0. es in
  let delivered_events = List.fold_left (fun acc e -> acc + e.delivered) 0 es in
  let lost_events = List.fold_left (fun acc e -> acc + e.lost) 0 es in
  let flowed = delivered_events + lost_events in
  let delivered_fraction =
    if flowed = 0 then 1. else float_of_int delivered_events /. float_of_int flowed
  in
  let violation_hours =
    List.fold_left (fun acc e -> acc +. (float_of_int e.violations *. e.hours)) 0. es
  in
  let violation_epochs =
    List.fold_left (fun acc e -> if e.violations > 0 then acc + 1 else acc) 0 es
  in
  let worst_epoch_violations =
    List.fold_left (fun acc e -> max acc e.violations) 0 es
  in
  let repairs = List.fold_left (fun acc e -> if e.repaired then acc + 1 else acc) 0 es in
  (* Maximal runs of consecutive violation epochs; a run still open at
     the horizon counts with its length so far. *)
  let runs, open_run =
    List.fold_left
      (fun (runs, run) e ->
        if e.violations > 0 then (runs, run + 1)
        else if run > 0 then (run :: runs, 0)
        else (runs, 0))
      ([], 0) es
  in
  let runs = if open_run > 0 then open_run :: runs else runs in
  let mean_epochs_to_recover =
    match runs with
    | [] -> 0.
    | _ ->
        float_of_int (List.fold_left ( + ) 0 runs) /. float_of_int (List.length runs)
  in
  {
    epochs;
    horizon_hours;
    delivered_events;
    lost_events;
    delivered_fraction;
    violation_hours;
    violation_epochs;
    worst_epoch_violations;
    repairs;
    mean_epochs_to_recover;
    downtime_cost = penalty_usd_per_violation_hour *. violation_hours;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "%d epochs (%.2f h): delivered %.2f%% (%d events, %d lost),@ %.2f \
     violation-hours over %d epoch(s) (worst: %d subscribers),@ %d repair(s), mean \
     recovery %.1f epochs, downtime cost $%.2f"
    r.epochs r.horizon_hours
    (100. *. r.delivered_fraction)
    r.delivered_events r.lost_events r.violation_hours r.violation_epochs
    r.worst_epoch_violations r.repairs r.mean_epochs_to_recover r.downtime_cost
