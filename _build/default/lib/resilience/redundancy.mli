(** k-redundant pair placement: pay for replicas up front instead of (or
    on top of) repairing after the fact.

    The primary copy of every selected pair is placed by the full
    CustomBinPacking; each further replica round re-places the whole
    selection with two anti-affinity rules layered on the CBP insertion
    order (expensive topics first, most-free VM first):

    + {e VM anti-affinity} — a replica never lands on a VM already
      hosting a copy of the same pair (hard rule; a fresh VM is deployed
      rather than violating it);
    + {e zone anti-affinity} — among admissible VMs, those in a zone no
      copy of the pair occupies yet are preferred (best effort: with
      more replicas than zones, or a fleet that never touches some zone,
      a replica may share a zone — {!stats.zone_diverse_pairs} reports
      how often full diversity was achieved).

    Zones follow {!Failure_model.zone_of_vm} ([vm mod zones]), so a
    {!Failure_model.Zone_burst} is exactly the failure a zone-diverse
    replica survives. The simulator's replica-aware delivery accounting
    ({!Mcss_sim.Simulator.run}) then delivers a pair as long as any
    copy's host is up.

    A redundant allocation intentionally violates the base problem's
    "each pair placed exactly once" consistency rule, so it must be
    audited with {!check} here, not {!Mcss_core.Verifier}. Capacity and
    satisfaction constraints still hold and are re-checked from
    scratch. *)

type stats = {
  k : int;
  zones : int;
  replicas_placed : int;  (** Copies beyond the primaries. *)
  zone_diverse_pairs : int;
      (** Pairs whose copies span [min k zones] distinct zones. *)
  base_vms : int;  (** Fleet size of the k=1 CBP placement. *)
  base_cost : float;
  vms : int;
  bandwidth : float;
  cost : float;
  lb_cost : float;  (** {!Mcss_core.Lower_bound} for the instance. *)
  overhead_vs_base_pct : float;  (** Cost premium over the k=1 plan. *)
  overhead_vs_lb_pct : float;  (** Cost premium over the lower bound. *)
}

val place :
  ?zones:int ->
  k:int ->
  Mcss_core.Problem.t ->
  Mcss_core.Selection.t ->
  Mcss_core.Allocation.t * stats
(** Place every selected pair [k] times ([k >= 1]; [k = 1] is plain
    CBP). [zones] defaults to [1] (no zone anti-affinity). Raises
    [Invalid_argument] on [k < 1] or [zones < 1], and
    {!Mcss_core.Problem.Infeasible} if a pair cannot fit an empty VM. *)

val check :
  Mcss_core.Problem.t ->
  Mcss_core.Selection.t ->
  k:int ->
  Mcss_core.Allocation.t ->
  (unit, string) result
(** From-scratch audit of a redundant allocation: recomputed per-VM
    loads within capacity and matching the incremental bookkeeping,
    every selected pair placed exactly [k] times, no VM hosting the same
    pair twice, no stray pairs, and every subscriber's distinct placed
    topics reaching [τ_v]. *)

val pp_stats : Format.formatter -> stats -> unit
