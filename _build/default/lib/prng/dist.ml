let exponential g ~mean =
  if not (mean > 0.) then invalid_arg "Dist.exponential: mean must be positive";
  -.mean *. log (Rng.unit_float_pos g)

let standard_normal g =
  (* Marsaglia's polar method; rejection keeps us inside the unit disc. *)
  let rec draw () =
    let u = (2. *. Rng.unit_float g) -. 1. in
    let v = (2. *. Rng.unit_float g) -. 1. in
    let s = (u *. u) +. (v *. v) in
    if s >= 1. || s = 0. then draw ()
    else u *. sqrt (-2. *. log s /. s)
  in
  draw ()

let normal g ~mu ~sigma =
  if sigma < 0. then invalid_arg "Dist.normal: sigma must be nonnegative";
  mu +. (sigma *. standard_normal g)

let log_normal g ~mu ~sigma = exp (normal g ~mu ~sigma)

let pareto g ~scale ~alpha =
  if not (scale > 0. && alpha > 0.) then invalid_arg "Dist.pareto";
  scale /. (Rng.unit_float_pos g ** (1. /. alpha))

let poisson_knuth g mean =
  let limit = exp (-.mean) in
  let rec loop k p =
    let p = p *. Rng.unit_float g in
    if p <= limit then k else loop (k + 1) p
  in
  loop 0 1.0

let poisson g ~mean =
  if mean < 0. then invalid_arg "Dist.poisson: mean must be nonnegative";
  if mean = 0. then 0
  else if mean <= 64. then poisson_knuth g mean
  else
    (* Normal approximation with continuity correction; adequate for the
       synthetic workloads where only the tail shape matters. *)
    let x = normal g ~mu:mean ~sigma:(sqrt mean) in
    max 0 (int_of_float (Float.round x))

let geometric g ~p =
  if not (p > 0. && p <= 1.) then invalid_arg "Dist.geometric";
  if p = 1. then 0
  else
    let u = Rng.unit_float_pos g in
    int_of_float (floor (log u /. log (1. -. p)))

let cumulative_sums w =
  let n = Array.length w in
  let c = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    if w.(i) < 0. then invalid_arg "Dist.cumulative_sums: negative weight";
    acc := !acc +. w.(i);
    c.(i) <- !acc
  done;
  c

(* Least index [i] with [c.(i) > x]; requires [x < c.(n-1)]. *)
let search_cumulative c x =
  let lo = ref 0 and hi = ref (Array.length c - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if c.(mid) > x then hi := mid else lo := mid + 1
  done;
  !lo

let weighted_index w ~cumulative g =
  if Array.length w = 0 then invalid_arg "Dist.weighted_index: empty weights";
  let c = match cumulative with Some c -> c | None -> cumulative_sums w in
  let total = c.(Array.length c - 1) in
  if not (total > 0.) then invalid_arg "Dist.weighted_index: zero total weight";
  let x = Rng.unit_float g *. total in
  search_cumulative c x

module Zipf = struct
  type t = { n : int; cumulative : float array; total : float }

  let create ~n ~s =
    if n < 1 then invalid_arg "Dist.Zipf.create: n must be >= 1";
    if s < 0. then invalid_arg "Dist.Zipf.create: s must be nonnegative";
    let w = Array.init n (fun i -> Float.of_int (i + 1) ** -.s) in
    let cumulative = cumulative_sums w in
    { n; cumulative; total = cumulative.(n - 1) }

  let support z = z.n

  let sample z g =
    let x = Rng.unit_float g *. z.total in
    search_cumulative z.cumulative x + 1

  let prob z k =
    if k < 1 || k > z.n then 0.
    else
      let below = if k = 1 then 0. else z.cumulative.(k - 2) in
      (z.cumulative.(k - 1) -. below) /. z.total
end
