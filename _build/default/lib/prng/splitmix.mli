(** SplitMix64: a fast, high-quality, splittable pseudo-random number
    generator (Steele, Lea & Flood, OOPSLA 2014).

    This is the only source of randomness in the whole reproduction: seeding
    it explicitly makes every generated trace, test and benchmark
    reproducible byte-for-byte across runs and machines. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator deterministically derived from
    [seed]. Distinct seeds yield statistically independent streams. *)

val copy : t -> t
(** [copy g] is an independent generator that will replay exactly the
    outputs [g] would have produced from this point on. *)

val next : t -> int64
(** [next g] advances [g] and returns 64 uniformly distributed bits. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of the remainder of [g]'s stream. *)
