type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy g = { state = g.state }

(* The 64-bit finaliser from the reference implementation: two
   xor-shift-multiply rounds followed by a final xor-shift. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

(* A variant mix used to derive the gamma of a split stream; since we keep a
   single golden gamma, deriving the child seed through a different
   finaliser suffices to decorrelate the streams. *)
let mix_child z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let split g = create (mix_child (next g))
