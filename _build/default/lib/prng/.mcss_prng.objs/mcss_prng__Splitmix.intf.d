lib/prng/splitmix.mli:
