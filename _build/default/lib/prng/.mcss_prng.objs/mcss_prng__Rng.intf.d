lib/prng/rng.mli: Splitmix
