(** Convenience sampling layer over {!Splitmix}.

    All functions advance the generator passed to them. Every sampler is
    total for the documented argument ranges and raises [Invalid_argument]
    otherwise. *)

type t
(** A stateful random source. *)

val create : int -> t
(** [create seed] builds a source from an integer seed. *)

val of_splitmix : Splitmix.t -> t
(** Wrap an existing SplitMix state. *)

val copy : t -> t
(** Independent copy replaying the same future stream. *)

val split : t -> t
(** Fork a statistically independent source; also advances the parent. *)

val bits64 : t -> int64
(** 64 uniform random bits. *)

val int : t -> int -> int
(** [int g bound] is uniform on [0, bound); requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform on the inclusive range [lo, hi];
    requires [lo <= hi]. *)

val float : t -> float -> float
(** [float g x] is uniform on [0, x); requires [x > 0]. *)

val unit_float : t -> float
(** Uniform on [0, 1). *)

val unit_float_pos : t -> float
(** Uniform on (0, 1]; safe as an argument to [log]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]; requires
    [0 <= p <= 1]. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement g k n] draws [k] distinct integers uniformly
    from [0, n), in random order; requires [0 <= k <= n]. Runs in O(k)
    expected time when [k] is small relative to [n] and O(n) otherwise. *)
