type t = Splitmix.t

let create seed = Splitmix.create (Int64.of_int seed)
let of_splitmix g = g
let copy = Splitmix.copy
let split = Splitmix.split
let bits64 = Splitmix.next

(* 62 uniform nonnegative bits, which always fit an OCaml int. *)
let bits62 g = Int64.to_int (Int64.shift_right_logical (Splitmix.next g) 2)

let int g bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max62 = (1 lsl 62) - 1 in
  let limit = max62 - (max62 mod bound) in
  let rec draw () =
    let r = bits62 g in
    if r >= limit then draw () else r mod bound
  in
  draw ()

let int_in g lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int g (hi - lo + 1)

let unit_float g =
  (* 53 uniform bits into the mantissa: uniform on [0,1). *)
  let r = Int64.to_int (Int64.shift_right_logical (Splitmix.next g) 11) in
  float_of_int r *. 0x1p-53

let unit_float_pos g = 1.0 -. unit_float g

let float g x =
  if not (x > 0.) then invalid_arg "Rng.float: bound must be positive";
  unit_float g *. x

let bool g = Int64.logand (Splitmix.next g) 1L = 1L

let bernoulli g p =
  if p < 0. || p > 1. then invalid_arg "Rng.bernoulli: p outside [0,1]";
  unit_float g < p

let shuffle_in_place g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement g k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  if k = 0 then [||]
  else if 2 * k >= n then begin
    (* Dense case: shuffle a full permutation prefix. *)
    let a = Array.init n (fun i -> i) in
    for i = 0 to k - 1 do
      let j = int_in g i (n - 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    Array.sub a 0 k
  end
  else begin
    (* Sparse case: rejection into a hash set, O(k) expected. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let c = int g n in
      if not (Hashtbl.mem seen c) then begin
        Hashtbl.add seen c ();
        out.(!filled) <- c;
        incr filled
      end
    done;
    out
  end
