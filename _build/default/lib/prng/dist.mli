(** Random-variate samplers for the distributions used by the synthetic
    trace generators: the workloads in the paper are characterised by
    heavy-tailed follower counts, interest counts, and event rates.

    All samplers take the {!Rng.t} first and advance it. *)

val exponential : Rng.t -> mean:float -> float
(** Exponential variate with the given mean; requires [mean > 0]. *)

val standard_normal : Rng.t -> float
(** Standard normal variate (Box–Muller, polar form). *)

val normal : Rng.t -> mu:float -> sigma:float -> float
(** Normal variate; requires [sigma >= 0]. *)

val log_normal : Rng.t -> mu:float -> sigma:float -> float
(** Log-normal variate: [exp (normal ~mu ~sigma)]. *)

val pareto : Rng.t -> scale:float -> alpha:float -> float
(** Pareto (type I) variate [>= scale]; requires [scale > 0], [alpha > 0]. *)

val poisson : Rng.t -> mean:float -> int
(** Poisson variate. Exact (Knuth) for small means, normal approximation
    clamped at 0 for means above 64. Requires [mean >= 0]. *)

val geometric : Rng.t -> p:float -> int
(** Number of failures before the first success; requires [0 < p <= 1]. *)

(** Bounded Zipf distribution over ranks [1..n] with exponent [s]:
    [P(k) ∝ k^-s]. Building the table is O(n); each sample is O(log n). *)
module Zipf : sig
  type t

  val create : n:int -> s:float -> t
  (** Requires [n >= 1] and [s >= 0]. *)

  val support : t -> int
  (** The [n] the table was built with. *)

  val sample : t -> Rng.t -> int
  (** A rank in [1..n]. *)

  val prob : t -> int -> float
  (** [prob z k] is the probability mass of rank [k]; 0 outside [1..n]. *)
end

val weighted_index : float array -> cumulative:float array option -> Rng.t -> int
(** [weighted_index w ~cumulative g] samples an index of [w] with
    probability proportional to [w.(i)]. Pass a precomputed inclusive
    prefix-sum array to amortise repeated sampling; otherwise it is computed
    on the fly. Requires all weights nonnegative with positive sum. *)

val cumulative_sums : float array -> float array
(** Inclusive prefix sums, for use with [weighted_index]. *)
