(** Heterogeneous right-sizing. The paper rents one instance type for the
    whole fleet; but once the packing is fixed, each VM only needs enough
    wire for its own load, and the EC2 catalogue quantises capacity in
    powers of two — so the tail VMs (CBP's last, half-empty bins) can be
    downsized. Because the c3 family prices bandwidth linearly, the
    saving comes exactly from this quantisation slack.

    Capacity conversion follows the benchmark convention: a VM type with
    [m] mbps offers [per_mbps64 · m / 64] events per horizon, where
    [per_mbps64] is whatever per-VM capacity (in events) the problem
    assigned to the 64-mbps baseline. *)

type assignment = {
  vm : int;
  load : float;
  instance : Mcss_pricing.Instance.t;  (** Cheapest type that fits. *)
}

type t = {
  assignments : assignment list;
  uniform_cost : float;  (** VM cost if every VM uses [baseline]. *)
  mixed_cost : float;  (** VM cost under the per-VM assignment. *)
  saving_pct : float;
}

val solve :
  Allocation.t ->
  baseline:Mcss_pricing.Instance.t ->
  catalogue:Mcss_pricing.Instance.t list ->
  horizon_hours:float ->
  term:Mcss_pricing.Billing.term ->
  t
(** The allocation must have been computed against the [baseline]'s
    capacity (its loads are compared against each candidate's scaled
    capacity). Candidates larger than the baseline are never needed and
    are ignored. Raises [Invalid_argument] on an empty catalogue or if
    some VM fits no candidate (cannot happen when the baseline itself is
    in the catalogue). *)

val pp : Format.formatter -> t -> unit
