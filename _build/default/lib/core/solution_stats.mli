(** Diagnostics over a computed allocation — the numbers an operator
    looks at after the solver says "$X, N VMs": how balanced is the
    fleet, how fragmented are the topics, and what the fragmentation
    costs in incoming bandwidth. *)

type t = {
  num_vms : int;
  mean_utilization : float;  (** Mean of load/BC over the fleet. *)
  min_utilization : float;
  max_utilization : float;
  stddev_utilization : float;
  topics_placed : int;  (** Distinct topics with at least one pair. *)
  topics_split : int;  (** Topics present on more than one VM. *)
  max_topic_spread : int;  (** Worst per-topic VM count. *)
  incoming_overhead : float;
      (** Event units of incoming bandwidth beyond the one stream per
          topic an ideal (unsplit) placement would pay:
          [Σ_t (spread_t - 1) · ev_t]. *)
  overhead_fraction : float;
      (** [incoming_overhead / total_load]; 0 when nothing is split. *)
}

val compute : Problem.t -> Allocation.t -> t
(** An empty fleet yields zero utilisation statistics. *)

val pp : Format.formatter -> t -> unit
