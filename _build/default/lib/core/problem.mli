(** An instance of the Minimum Cost Subscriber Satisfaction problem
    (MCSS, §II-C of the paper):
    [MCSS(T, V, ev, Int, τ, BC, C1, C2)].

    The workload supplies [T], [V], [ev] and [Int]; this module adds the
    satisfaction threshold [τ], the per-VM bandwidth capacity [BC]
    (in event-rate units), and the two cost functions. *)

type costs = {
  vm_cost : int -> float;  (** [C1]: cost of renting [n] VMs. *)
  bandwidth_cost : float -> float;
      (** [C2]: cost of the given total traffic volume in event units
          (incoming plus outgoing, as in the objective). *)
}

type t = private {
  workload : Mcss_workload.Workload.t;
  tau : float;
  capacity : float;  (** [BC], in event-rate units. *)
  costs : costs;
}

val create :
  workload:Mcss_workload.Workload.t -> tau:float -> capacity:float -> costs -> t
(** Raises [Invalid_argument] if [tau <= 0] or [capacity <= 0]. *)

val of_pricing :
  ?capacity_events:float ->
  workload:Mcss_workload.Workload.t ->
  tau:float ->
  Mcss_pricing.Cost_model.t ->
  t
(** Build a problem whose [C1]/[C2] come from the EC2-style pricing model.
    [BC] defaults to {!Mcss_pricing.Cost_model.capacity_events} (the
    physically derived per-VM event capacity); pass [capacity_events] to
    override it, e.g. when running a scaled-down trace. *)

val unit_costs : costs
(** [C1 n = n], [C2 _ = 0] — the cost functions of the NP-hardness
    reduction (Theorem II.2), also convenient in unit tests. *)

val linear_costs : vm_usd:float -> per_event_usd:float -> costs

val tau_v : t -> Mcss_workload.Workload.subscriber -> float
(** [τ_v = min τ (Σ_{t∈T_v} ev_t)]. *)

val cost : t -> vms:int -> bandwidth:float -> float
(** [C1 vms + C2 bandwidth]. *)

val epsilon : t -> float
(** Absolute slack used in capacity and satisfaction comparisons so that
    incremental float accounting and from-scratch recomputation agree:
    [1e-9 · BC]. *)

val pair_fits_empty_vm : t -> Mcss_workload.Workload.topic -> bool
(** Whether a single pair of the topic fits an empty VM, i.e.
    [2·ev_t <= BC]. A workload needing a topic for which this is false is
    unallocatable. *)

val infeasible_subscribers : t -> Mcss_workload.Workload.subscriber list
(** Subscribers whose threshold cannot be met using only topics that fit a
    VM ([Σ_{t∈T_v, 2·ev_t <= BC} ev_t < τ_v]). Empty means every
    subscriber can in principle be satisfied. *)

exception Infeasible of string
(** Raised by allocation algorithms when a selected pair cannot fit any
    VM. *)
