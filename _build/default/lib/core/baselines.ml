module Workload = Mcss_workload.Workload

let infeasible topic ev capacity =
  raise
    (Problem.Infeasible
       (Printf.sprintf "topic %d: a single pair needs %g bandwidth but BC is %g" topic
          (2. *. ev) capacity))

let next_fit (p : Problem.t) (s : Selection.t) =
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let a = Allocation.create ~capacity:p.Problem.capacity in
  let current = ref None in
  Selection.iter_pairs s (fun t v ->
      let ev = Workload.event_rate w t in
      let fits vm =
        Allocation.place_delta vm ~topic:t ~ev ~count:1 <= Allocation.free a vm +. eps
      in
      let vm =
        match !current with
        | Some vm when fits vm -> vm
        | _ ->
            let vm = Allocation.deploy a in
            current := Some vm;
            if not (fits vm) then infeasible t ev p.Problem.capacity;
            vm
      in
      Allocation.place a vm ~topic:t ~ev ~subscribers:[| v |] ~from:0 ~count:1);
  a

let best_fit_decreasing (p : Problem.t) (s : Selection.t) =
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let a = Allocation.create ~capacity:p.Problem.capacity in
  let groups =
    Selection.pairs_by_topic p s
    |> Array.map (fun (t, subs) -> (t, subs, Workload.event_rate w t))
  in
  Array.sort (fun (ta, _, eva) (tb, _, evb) -> compare (-.eva, ta) (-.evb, tb)) groups;
  Array.iter
    (fun (topic, subs, ev) ->
      let n = Array.length subs in
      let from = ref 0 in
      while !from < n do
        (* Tightest VM that can still take at least one pair. *)
        let best = ref None in
        Array.iter
          (fun vm ->
            if Allocation.max_pairs_that_fit a vm ~topic ~ev ~eps > 0 then
              match !best with
              | Some b when Allocation.free a b <= Allocation.free a vm -> ()
              | _ -> best := Some vm)
          (Allocation.vms a);
        let vm =
          match !best with
          | Some vm -> vm
          | None ->
              let vm = Allocation.deploy a in
              if Allocation.max_pairs_that_fit a vm ~topic ~ev ~eps = 0 then
                infeasible topic ev p.Problem.capacity;
              vm
        in
        let k = min (Allocation.max_pairs_that_fit a vm ~topic ~ev ~eps) (n - !from) in
        Allocation.place a vm ~topic ~ev ~subscribers:subs ~from:!from ~count:k;
        from := !from + k
      done)
    groups;
  a
