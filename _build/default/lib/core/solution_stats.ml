module Workload = Mcss_workload.Workload

type t = {
  num_vms : int;
  mean_utilization : float;
  min_utilization : float;
  max_utilization : float;
  stddev_utilization : float;
  topics_placed : int;
  topics_split : int;
  max_topic_spread : int;
  incoming_overhead : float;
  overhead_fraction : float;
}

let compute (p : Problem.t) a =
  let w = p.Problem.workload in
  let vms = Allocation.vms a in
  let n = Array.length vms in
  let utilizations =
    Array.map (fun vm -> Allocation.load vm /. p.Problem.capacity) vms
  in
  let mean =
    if n = 0 then 0. else Array.fold_left ( +. ) 0. utilizations /. float_of_int n
  in
  let stddev =
    if n = 0 then 0.
    else
      sqrt
        (Array.fold_left (fun acc u -> acc +. ((u -. mean) ** 2.)) 0. utilizations
        /. float_of_int n)
  in
  let spread = Hashtbl.create 256 in
  Array.iter
    (fun vm ->
      List.iter
        (fun t -> Hashtbl.replace spread t (1 + Option.value ~default:0 (Hashtbl.find_opt spread t)))
        (Allocation.topics_on vm))
    vms;
  let topics_split = ref 0 in
  let max_topic_spread = ref 0 in
  let incoming_overhead = ref 0. in
  Hashtbl.iter
    (fun t count ->
      if count > 1 then begin
        incr topics_split;
        incoming_overhead :=
          !incoming_overhead +. (float_of_int (count - 1) *. Workload.event_rate w t)
      end;
      if count > !max_topic_spread then max_topic_spread := count)
    spread;
  let total_load = Allocation.total_load a in
  {
    num_vms = n;
    mean_utilization = mean;
    min_utilization =
      (if n = 0 then 0. else Array.fold_left Float.min utilizations.(0) utilizations);
    max_utilization = Array.fold_left Float.max 0. utilizations;
    stddev_utilization = stddev;
    topics_placed = Hashtbl.length spread;
    topics_split = !topics_split;
    max_topic_spread = !max_topic_spread;
    incoming_overhead = !incoming_overhead;
    overhead_fraction =
      (if total_load > 0. then !incoming_overhead /. total_load else 0.);
  }

let pp ppf s =
  Format.fprintf ppf
    "%d VMs; utilization mean %.1f%% (min %.1f%%, max %.1f%%, stddev %.1f%%);@ %d/%d \
     topics split (worst over %d VMs);@ incoming overhead %.0f events (%.2f%% of \
     traffic)"
    s.num_vms (100. *. s.mean_utilization) (100. *. s.min_utilization)
    (100. *. s.max_utilization)
    (100. *. s.stddev_utilization)
    s.topics_split s.topics_placed s.max_topic_spread s.incoming_overhead
    (100. *. s.overhead_fraction)
