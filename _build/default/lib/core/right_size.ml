module Instance = Mcss_pricing.Instance
module Billing = Mcss_pricing.Billing

type assignment = { vm : int; load : float; instance : Instance.t }

type t = {
  assignments : assignment list;
  uniform_cost : float;
  mixed_cost : float;
  saving_pct : float;
}

let solve a ~baseline ~catalogue ~horizon_hours ~term =
  if catalogue = [] then invalid_arg "Right_size.solve: empty catalogue";
  let capacity = Allocation.capacity a in
  (* Candidate capacity in the allocation's event units, scaled off the
     baseline's mbps. *)
  let scaled_capacity (i : Instance.t) =
    capacity *. i.Instance.bandwidth_mbps /. baseline.Instance.bandwidth_mbps
  in
  let candidates =
    List.filter
      (fun (i : Instance.t) ->
        i.Instance.bandwidth_mbps <= baseline.Instance.bandwidth_mbps)
      catalogue
    |> List.sort (fun a b ->
           compare
             (Billing.effective_hourly a term)
             (Billing.effective_hourly b term))
  in
  let price i = Billing.effective_hourly i term *. horizon_hours in
  let assignments =
    Array.to_list (Allocation.vms a)
    |> List.map (fun vm ->
           let load = Allocation.load vm in
           let instance =
             match
               List.find_opt (fun i -> scaled_capacity i +. 1e-9 >= load) candidates
             with
             | Some i -> i
             | None ->
                 invalid_arg
                   (Printf.sprintf "Right_size.solve: VM %d's load %g fits no candidate"
                      (Allocation.vm_id vm) load)
           in
           { vm = Allocation.vm_id vm; load; instance })
  in
  let uniform_cost = float_of_int (List.length assignments) *. price baseline in
  let mixed_cost =
    List.fold_left (fun acc asg -> acc +. price asg.instance) 0. assignments
  in
  let saving_pct =
    if uniform_cost > 0. then (uniform_cost -. mixed_cost) /. uniform_cost *. 100.
    else 0.
  in
  { assignments; uniform_cost; mixed_cost; saving_pct }

let pp ppf t =
  let by_type = Hashtbl.create 8 in
  List.iter
    (fun asg ->
      Hashtbl.replace by_type asg.instance.Instance.name
        (1 + Option.value ~default:0 (Hashtbl.find_opt by_type asg.instance.Instance.name)))
    t.assignments;
  let mix =
    Hashtbl.fold (fun name n acc -> (name, n) :: acc) by_type []
    |> List.sort compare
    |> List.map (fun (name, n) -> Printf.sprintf "%dx %s" n name)
    |> String.concat ", "
  in
  Format.fprintf ppf "mix: %s; VM cost $%.2f vs uniform $%.2f (%.1f%% saved)" mix
    t.mixed_cost t.uniform_cost t.saving_pct
