module Workload = Mcss_workload.Workload

type violation =
  | Over_capacity of { vm : int; load : float }
  | Load_mismatch of { vm : int; tracked : float; recomputed : float }
  | Unsatisfied of { subscriber : int; delivered : float; required : float }
  | Pair_not_selected of { topic : int; subscriber : int }
  | Pair_duplicated of { topic : int; subscriber : int }
  | Pair_missing of { topic : int; subscriber : int }

type report = {
  violations : violation list;
  num_vms : int;
  total_bandwidth : float;
  cost : float;
}

let pp_violation ppf = function
  | Over_capacity { vm; load } ->
      Format.fprintf ppf "VM %d over capacity: load %g" vm load
  | Load_mismatch { vm; tracked; recomputed } ->
      Format.fprintf ppf "VM %d load mismatch: tracked %g, recomputed %g" vm tracked
        recomputed
  | Unsatisfied { subscriber; delivered; required } ->
      Format.fprintf ppf "subscriber %d unsatisfied: delivered %g < required %g"
        subscriber delivered required
  | Pair_not_selected { topic; subscriber } ->
      Format.fprintf ppf "pair (%d, %d) placed but never selected" topic subscriber
  | Pair_duplicated { topic; subscriber } ->
      Format.fprintf ppf "pair (%d, %d) placed on more than one VM" topic subscriber
  | Pair_missing { topic; subscriber } ->
      Format.fprintf ppf "pair (%d, %d) selected but never placed" topic subscriber

let verify (p : Problem.t) (s : Selection.t) a =
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  (* Pair bookkeeping: which selected pairs have we seen placed? *)
  let placed : (int * int, int) Hashtbl.t = Hashtbl.create (2 * s.Selection.num_pairs) in
  let delivered = Array.make (Workload.num_subscribers w) 0. in
  let selected : (int * int, unit) Hashtbl.t = Hashtbl.create (2 * s.Selection.num_pairs) in
  Selection.iter_pairs s (fun t v -> Hashtbl.replace selected (t, v) ());
  let total_bandwidth = ref 0. in
  Array.iter
    (fun vm ->
      let outgoing = ref 0. in
      let incoming = ref 0. in
      let topics_seen = Hashtbl.create 16 in
      Allocation.iter_vm_pairs vm (fun t v ->
          let ev = Workload.event_rate w t in
          outgoing := !outgoing +. ev;
          if not (Hashtbl.mem topics_seen t) then begin
            Hashtbl.add topics_seen t ();
            incoming := !incoming +. ev
          end;
          (match Hashtbl.find_opt placed (t, v) with
          | None ->
              Hashtbl.add placed (t, v) 1;
              delivered.(v) <- delivered.(v) +. ev
          | Some n ->
              if n = 1 then add (Pair_duplicated { topic = t; subscriber = v });
              Hashtbl.replace placed (t, v) (n + 1));
          if not (Hashtbl.mem selected (t, v)) then
            add (Pair_not_selected { topic = t; subscriber = v }));
      let recomputed = !outgoing +. !incoming in
      total_bandwidth := !total_bandwidth +. recomputed;
      if recomputed > p.Problem.capacity +. eps then
        add (Over_capacity { vm = Allocation.vm_id vm; load = recomputed });
      if Float.abs (recomputed -. Allocation.load vm) > eps then
        add
          (Load_mismatch
             {
               vm = Allocation.vm_id vm;
               tracked = Allocation.load vm;
               recomputed;
             }))
    (Allocation.vms a);
  Hashtbl.iter
    (fun (t, v) () ->
      if not (Hashtbl.mem placed (t, v)) then
        add (Pair_missing { topic = t; subscriber = v }))
    selected;
  for v = 0 to Workload.num_subscribers w - 1 do
    let required = Problem.tau_v p v in
    if delivered.(v) +. eps < required then
      add (Unsatisfied { subscriber = v; delivered = delivered.(v); required })
  done;
  {
    violations = List.rev !violations;
    num_vms = Allocation.num_vms a;
    total_bandwidth = !total_bandwidth;
    cost = Problem.cost p ~vms:(Allocation.num_vms a) ~bandwidth:!total_bandwidth;
  }

let is_valid r = r.violations = []

let check_exn p s a =
  let r = verify p s a in
  if not (is_valid r) then begin
    let buf = Buffer.create 256 in
    let ppf = Format.formatter_of_buffer buf in
    List.iter (fun v -> Format.fprintf ppf "%a@." pp_violation v) r.violations;
    Format.pp_print_flush ppf ();
    failwith (Printf.sprintf "Verifier: %d violation(s):\n%s" (List.length r.violations)
                (Buffer.contents buf))
  end;
  r
