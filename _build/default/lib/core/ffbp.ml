module Workload = Mcss_workload.Workload

let run (p : Problem.t) (s : Selection.t) =
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let a = Allocation.create ~capacity:p.Problem.capacity in
  let place_one t v =
    let ev = Workload.event_rate w t in
    let subscribers = [| v |] in
    let fits vm = Allocation.place_delta vm ~topic:t ~ev ~count:1 <= Allocation.free a vm +. eps in
    let vms = Allocation.vms a in
    let rec first_fit i =
      if i >= Array.length vms then None
      else if fits vms.(i) then Some vms.(i)
      else first_fit (i + 1)
    in
    let vm =
      match first_fit 0 with
      | Some vm -> vm
      | None ->
          let vm = Allocation.deploy a in
          if not (fits vm) then
            raise
              (Problem.Infeasible
                 (Printf.sprintf
                    "pair (topic %d, subscriber %d) needs %g bandwidth but BC is %g" t v
                    (2. *. ev) p.Problem.capacity));
          vm
    in
    Allocation.place a vm ~topic:t ~ev ~subscribers ~from:0 ~count:1
  in
  Selection.iter_pairs s place_one;
  a
