(** The cost lower bound of Theorem A.1 / Alg. 5: any solution to an MCSS
    instance costs at least

    [C1(⌈Σ_v max(τ_v, min_{t∈T_v} ev_t) / BC⌉) + C2(Σ_v max(τ_v, min_{t∈T_v} ev_t))]

    — every subscriber needs at least [τ_v] worth of delivery, and when
    even the subscriber's cheapest topic exceeds [τ_v], at least that
    topic's whole rate must be delivered (pairs are all-or-nothing).

    The bound is not necessarily tight: it ignores incoming bandwidth and
    packing constraints entirely. Subscribers without interests
    contribute zero. *)

type t = {
  bandwidth : float;  (** Lower bound on total bandwidth, event units. *)
  vms : int;  (** Lower bound on the number of VMs. *)
  cost : float;  (** [C1 vms + C2 bandwidth]. *)
}

val compute : Problem.t -> t
