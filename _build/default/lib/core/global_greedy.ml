module Workload = Mcss_workload.Workload

(* A small binary max-heap of (ratio, topic), local to this module. *)
module Heap = struct
  type t = { mutable keys : float array; mutable topics : int array; mutable len : int }

  let create () = { keys = [||]; topics = [||]; len = 0 }

  let swap h i j =
    let k = h.keys.(i) in
    h.keys.(i) <- h.keys.(j);
    h.keys.(j) <- k;
    let t = h.topics.(i) in
    h.topics.(i) <- h.topics.(j);
    h.topics.(j) <- t

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if h.keys.(i) > h.keys.(parent) then begin
        swap h i parent;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let largest = ref i in
    if l < h.len && h.keys.(l) > h.keys.(!largest) then largest := l;
    if r < h.len && h.keys.(r) > h.keys.(!largest) then largest := r;
    if !largest <> i then begin
      swap h i !largest;
      sift_down h !largest
    end

  let push h key topic =
    if h.len = Array.length h.keys then begin
      let cap = max 16 (2 * h.len) in
      let keys = Array.make cap 0. and topics = Array.make cap 0 in
      Array.blit h.keys 0 keys 0 h.len;
      Array.blit h.topics 0 topics 0 h.len;
      h.keys <- keys;
      h.topics <- topics
    end;
    h.keys.(h.len) <- key;
    h.topics.(h.len) <- topic;
    h.len <- h.len + 1;
    sift_up h (h.len - 1)

  let pop h =
    if h.len = 0 then None
    else begin
      let key = h.keys.(0) and topic = h.topics.(0) in
      h.len <- h.len - 1;
      if h.len > 0 then begin
        h.keys.(0) <- h.keys.(h.len);
        h.topics.(0) <- h.topics.(h.len);
        sift_down h 0
      end;
      Some (key, topic)
    end

  let peek_key h = if h.len = 0 then None else Some h.keys.(0)
end

let select (p : Problem.t) =
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let num_subscribers = Workload.num_subscribers w in
  let rem = Array.init num_subscribers (fun v -> Problem.tau_v p v) in
  let unsatisfied = ref 0 in
  Array.iter (fun r -> if r > eps then incr unsatisfied) rem;
  let chosen : int Vec.t array = Array.init num_subscribers (fun _ -> Vec.create ()) in
  let pair_chosen : (int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let topic_chosen = Array.make (Workload.num_topics w) false in
  (* Current aggregate ratio of a topic; 0 when it cannot help anyone. *)
  let ratio t =
    let ev = Workload.event_rate w t in
    let benefit = ref 0. in
    let new_pairs = ref 0 in
    Array.iter
      (fun v ->
        if rem.(v) > eps && not (Hashtbl.mem pair_chosen (t, v)) then begin
          benefit := !benefit +. Float.min ev rem.(v);
          incr new_pairs
        end)
      (Workload.followers w t);
    if !new_pairs = 0 then 0.
    else
      let incoming = if topic_chosen.(t) then 0. else ev in
      !benefit /. ((float_of_int !new_pairs *. ev) +. incoming)
  in
  let heap = Heap.create () in
  for t = 0 to Workload.num_topics w - 1 do
    let r = ratio t in
    if r > 0. then Heap.push heap r t
  done;
  let take t =
    let ev = Workload.event_rate w t in
    topic_chosen.(t) <- true;
    Array.iter
      (fun v ->
        if rem.(v) > eps && not (Hashtbl.mem pair_chosen (t, v)) then begin
          Hashtbl.add pair_chosen (t, v) ();
          Vec.push chosen.(v) t;
          rem.(v) <- rem.(v) -. ev;
          if rem.(v) <= eps then decr unsatisfied
        end)
      (Workload.followers w t)
  in
  (* Lazy greedy: benefits only decay, so a popped entry whose recomputed
     ratio still tops the heap is the true argmax. *)
  while !unsatisfied > 0 do
    match Heap.pop heap with
    | None ->
        (* Cannot happen: an unsatisfied subscriber always has an
           unchosen interest with positive benefit. *)
        assert false
    | Some (stale, t) ->
        let fresh = ratio t in
        if fresh <= 0. then ()
        else begin
          ignore stale;
          match Heap.peek_key heap with
          | Some best when fresh < best -. 1e-15 -> Heap.push heap fresh t
          | _ -> take t
        end
  done;
  let chosen_arrays =
    Array.map
      (fun vec ->
        let a = Vec.to_array vec in
        Array.sort compare a;
        a)
      chosen
  in
  let selected_rate =
    Array.map
      (Array.fold_left (fun acc t -> acc +. Workload.event_rate w t) 0.)
      chosen_arrays
  in
  let num_pairs = Array.fold_left (fun acc a -> acc + Array.length a) 0 chosen_arrays in
  {
    Selection.chosen = chosen_arrays;
    selected_rate;
    num_pairs;
    outgoing_rate = Array.fold_left ( +. ) 0. selected_rate;
  }
