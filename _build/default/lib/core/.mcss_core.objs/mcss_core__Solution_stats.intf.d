lib/core/solution_stats.mli: Allocation Format Problem
