lib/core/budget.ml: Allocation Array List Mcss_workload Problem Selection
