lib/core/solution_stats.ml: Allocation Array Float Format Hashtbl List Mcss_workload Option Problem
