lib/core/plan_io.mli: Allocation Mcss_workload Selection
