lib/core/verifier.mli: Allocation Format Problem Selection
