lib/core/problem.ml: Array Mcss_pricing Mcss_workload
