lib/core/cbp.ml: Allocation Array Mcss_workload Printf Problem Selection
