lib/core/global_greedy.mli: Problem Selection
