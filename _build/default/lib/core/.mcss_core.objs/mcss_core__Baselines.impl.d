lib/core/baselines.ml: Allocation Array Mcss_workload Printf Problem Selection
