lib/core/baselines.mli: Allocation Problem Selection
