lib/core/right_size.mli: Allocation Format Mcss_pricing
