lib/core/budget.mli: Allocation Problem Selection
