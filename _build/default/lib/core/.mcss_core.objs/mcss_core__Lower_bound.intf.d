lib/core/lower_bound.mli: Problem
