lib/core/global_greedy.ml: Array Float Hashtbl Mcss_workload Problem Selection Vec
