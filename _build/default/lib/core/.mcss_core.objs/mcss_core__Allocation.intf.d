lib/core/allocation.mli: Mcss_workload
