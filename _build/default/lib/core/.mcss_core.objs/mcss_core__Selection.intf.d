lib/core/selection.mli: Mcss_prng Mcss_workload Problem
