lib/core/vec.ml: Array Printf
