lib/core/ffbp.mli: Allocation Problem Selection
