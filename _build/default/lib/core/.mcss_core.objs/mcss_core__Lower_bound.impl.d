lib/core/lower_bound.ml: Array Float Mcss_workload Problem
