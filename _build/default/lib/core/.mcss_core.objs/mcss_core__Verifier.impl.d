lib/core/verifier.ml: Allocation Array Buffer Float Format Hashtbl List Mcss_workload Printf Problem Selection
