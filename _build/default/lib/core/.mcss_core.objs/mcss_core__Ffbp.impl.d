lib/core/ffbp.ml: Allocation Array Mcss_workload Printf Problem Selection
