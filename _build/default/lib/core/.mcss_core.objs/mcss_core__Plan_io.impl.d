lib/core/plan_io.ml: Allocation Array Fun Hashtbl In_channel List Mcss_workload Printf Selection String
