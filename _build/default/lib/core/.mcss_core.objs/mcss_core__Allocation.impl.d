lib/core/allocation.ml: Array Hashtbl List Mcss_workload Vec
