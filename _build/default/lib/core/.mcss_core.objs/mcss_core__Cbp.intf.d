lib/core/cbp.mli: Allocation Problem Selection
