lib/core/solver.ml: Allocation Cbp Ffbp Format Global_greedy List Problem Selection Unix
