lib/core/solver.mli: Allocation Cbp Format Problem Selection
