lib/core/problem.mli: Mcss_pricing Mcss_workload
