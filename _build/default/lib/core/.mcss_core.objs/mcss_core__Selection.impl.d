lib/core/selection.ml: Array Domain Float Hashtbl Int List Mcss_prng Mcss_workload Problem Set
