lib/core/right_size.ml: Allocation Array Format Hashtbl List Mcss_pricing Option Printf String
