lib/core/vec.mli:
