type stage1 = Gsp | Gsp_parallel | Gsp_reference | Rsp | Global_greedy
type stage2 = Ffbp | Cbp of Cbp.options

type config = { stage1 : stage1; stage2 : stage2 }

type result = {
  selection : Selection.t;
  allocation : Allocation.t;
  num_vms : int;
  bandwidth : float;
  cost : float;
  stage1_seconds : float;
  stage2_seconds : float;
}

let default = { stage1 = Gsp; stage2 = Cbp Cbp.with_cost_decision }
let naive = { stage1 = Rsp; stage2 = Ffbp }

let ladder =
  [
    ("RSP+FFBP", naive);
    ("(a) GSP+FFBP", { stage1 = Gsp; stage2 = Ffbp });
    ("(b) +grouping", { stage1 = Gsp; stage2 = Cbp Cbp.grouping_only });
    ("(c) +expensive-first", { stage1 = Gsp; stage2 = Cbp Cbp.with_expensive_first });
    ("(d) +most-free-VM", { stage1 = Gsp; stage2 = Cbp Cbp.with_most_free });
    ("(e) +cost-decision", { stage1 = Gsp; stage2 = Cbp Cbp.with_cost_decision });
  ]

let config_of_name name = List.assoc_opt name ladder

let timed f =
  let start = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. start)

let solve ?(config = default) (p : Problem.t) =
  let selection, stage1_seconds =
    timed (fun () ->
        match config.stage1 with
        | Gsp -> Selection.gsp p
        | Gsp_parallel -> Selection.gsp_parallel p
        | Gsp_reference -> Selection.gsp_reference p
        | Rsp -> Selection.rsp p
        | Global_greedy -> Global_greedy.select p)
  in
  let allocation, stage2_seconds =
    timed (fun () ->
        match config.stage2 with
        | Ffbp -> Ffbp.run p selection
        | Cbp opts -> Cbp.run p selection opts)
  in
  let num_vms = Allocation.num_vms allocation in
  let bandwidth = Allocation.total_load allocation in
  {
    selection;
    allocation;
    num_vms;
    bandwidth;
    cost = Problem.cost p ~vms:num_vms ~bandwidth;
    stage1_seconds;
    stage2_seconds;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "%d pairs selected, %d VMs, bandwidth %.1f, cost $%.2f (stage1 %.3fs, stage2 %.3fs)"
    r.selection.Selection.num_pairs r.num_vms r.bandwidth r.cost r.stage1_seconds
    r.stage2_seconds
