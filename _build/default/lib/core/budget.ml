module Workload = Mcss_workload.Workload

type result = {
  satisfied : bool array;
  num_satisfied : int;
  allocation : Allocation.t;
  selection : Selection.t;
}

(* Try to place [count] pairs of one topic into the fleet without
   exceeding [budget] VMs; returns the placements made (vm, from, count)
   so the caller can roll back, or None after rolling back locally. *)
let try_place_group (p : Problem.t) a ~budget ~topic ~ev ~subs =
  let eps = Problem.epsilon p in
  let n = Array.length subs in
  let placed = ref [] in
  let from = ref 0 in
  let ok = ref true in
  while !from < n && !ok do
    let best = ref None in
    Array.iter
      (fun vm ->
        if Allocation.max_pairs_that_fit a vm ~topic ~ev ~eps > 0 then
          match !best with
          | Some b when Allocation.free a b >= Allocation.free a vm -> ()
          | _ -> best := Some vm)
      (Allocation.vms a);
    let vm =
      match !best with
      | Some vm -> Some vm
      | None ->
          (* Deploy only when the budget allows it and a fresh VM would
             actually hold a pair (otherwise an empty VM would linger and
             eat the budget). *)
          if Allocation.num_vms a >= budget || 2. *. ev > p.Problem.capacity +. eps
          then None
          else Some (Allocation.deploy a)
    in
    match vm with
    | None -> ok := false
    | Some vm ->
        let k = min (Allocation.max_pairs_that_fit a vm ~topic ~ev ~eps) (n - !from) in
        Allocation.place a vm ~topic ~ev ~subscribers:subs ~from:!from ~count:k;
        placed := (vm, !from, k) :: !placed;
        from := !from + k
  done;
  if !ok then Some !placed
  else begin
    (* Roll back this group's placements. *)
    List.iter
      (fun (vm, from, k) ->
        for i = from to from + k - 1 do
          ignore (Allocation.remove a vm ~topic ~ev ~subscriber:subs.(i))
        done)
      !placed;
    None
  end

let solve (p : Problem.t) ~budget =
  if budget < 0 then invalid_arg "Budget.solve: negative budget";
  let w = p.Problem.workload in
  let n = Workload.num_subscribers w in
  (* Cheapest satisfying set per subscriber, via the full GSP pass. *)
  let gsp = Selection.gsp p in
  let order = Array.init n (fun v -> v) in
  Array.sort
    (fun a b -> compare (gsp.Selection.selected_rate.(a), a) (gsp.Selection.selected_rate.(b), b))
    order;
  let a = Allocation.create ~capacity:p.Problem.capacity in
  let satisfied = Array.make n false in
  let admitted_pairs = Array.make n [||] in
  let num_satisfied = ref 0 in
  Array.iter
    (fun v ->
      let topics = gsp.Selection.chosen.(v) in
      if Array.length topics = 0 then begin
        (* tau_v = 0: satisfied for free. *)
        satisfied.(v) <- true;
        incr num_satisfied
      end
      else begin
        (* Admit the subscriber's whole pair group atomically. *)
        let placements = ref [] in
        let ok = ref true in
        Array.iter
          (fun t ->
            if !ok then begin
              let ev = Workload.event_rate w t in
              match try_place_group p a ~budget ~topic:t ~ev ~subs:[| v |] with
              | Some placed -> placements := (t, ev, placed) :: !placements
              | None -> ok := false
            end)
          topics;
        if !ok then begin
          satisfied.(v) <- true;
          admitted_pairs.(v) <- topics;
          incr num_satisfied
        end
        else
          (* Roll back the topics that did land. *)
          List.iter
            (fun (t, ev, placed) ->
              List.iter
                (fun (vm, _, _) -> ignore (Allocation.remove a vm ~topic:t ~ev ~subscriber:v))
                placed)
            !placements
      end)
    order;
  let allocation, _ = Allocation.compact a in
  let selected_rate =
    Array.mapi
      (fun v topics ->
        ignore v;
        Array.fold_left (fun acc t -> acc +. Workload.event_rate w t) 0. topics)
      admitted_pairs
  in
  let num_pairs = Array.fold_left (fun acc ts -> acc + Array.length ts) 0 admitted_pairs in
  {
    satisfied;
    num_satisfied = !num_satisfied;
    allocation;
    selection =
      {
        Selection.chosen = admitted_pairs;
        selected_rate;
        num_pairs;
        outgoing_rate = Array.fold_left ( +. ) 0. selected_rate;
      };
  }

let satisfaction_curve p ~budgets =
  List.map (fun budget -> (budget, (solve p ~budget).num_satisfied)) budgets
