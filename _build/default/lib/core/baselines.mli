(** Classic bin-packing baselines for Stage 2, beyond the paper's FFBP —
    used by the ablation benchmarks to situate CustomBinPacking among the
    textbook strategies:

    - {!next_fit}: per pair, only the most recently deployed VM is
      considered; the cheapest possible packer, and the most wasteful;
    - {!best_fit_decreasing}: pairs grouped per topic and ordered by
      rate (like CBP), but each group fragment goes to the {e tightest}
      VM that still fits it — the classical BFD rule, which is the exact
      opposite of CBP's most-free choice. Comparing the two isolates how
      much the paper's "most free VM first" rule (optimisation (d))
      actually buys over textbook advice. *)

val next_fit : Problem.t -> Selection.t -> Allocation.t
(** Raises {!Problem.Infeasible} if a selected pair cannot fit an empty
    VM. *)

val best_fit_decreasing : Problem.t -> Selection.t -> Allocation.t
(** Raises {!Problem.Infeasible} likewise. *)
