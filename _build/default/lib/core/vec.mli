(** A growable array (amortised O(1) push), used by the allocation data
    structures. OCaml 5.1 predates [Dynarray], so we carry our own minimal
    version. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] out of bounds. *)

val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

val swap_remove : 'a t -> int -> unit
(** Remove the element at the index by moving the last element into its
    place — O(1), does not preserve order. *)

val find_index : ('a -> bool) -> 'a t -> int option
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_array : 'a t -> 'a array
val of_array : 'a array -> 'a t
val to_list : 'a t -> 'a list
