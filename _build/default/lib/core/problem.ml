module Workload = Mcss_workload.Workload
module Cost_model = Mcss_pricing.Cost_model

type costs = { vm_cost : int -> float; bandwidth_cost : float -> float }

type t = {
  workload : Workload.t;
  tau : float;
  capacity : float;
  costs : costs;
}

exception Infeasible of string

let create ~workload ~tau ~capacity costs =
  if not (tau > 0.) then invalid_arg "Problem.create: tau must be positive";
  if not (capacity > 0.) then invalid_arg "Problem.create: capacity must be positive";
  { workload; tau; capacity; costs }

let of_pricing ?capacity_events ~workload ~tau model =
  let capacity =
    match capacity_events with
    | Some c -> c
    | None -> Cost_model.capacity_events model
  in
  let costs =
    {
      vm_cost = Cost_model.vm_cost model;
      bandwidth_cost = Cost_model.bandwidth_cost model;
    }
  in
  create ~workload ~tau ~capacity costs

let unit_costs = { vm_cost = float_of_int; bandwidth_cost = (fun _ -> 0.) }

let linear_costs ~vm_usd ~per_event_usd =
  {
    vm_cost = (fun n -> float_of_int n *. vm_usd);
    bandwidth_cost = (fun events -> events *. per_event_usd);
  }

let tau_v p v = Workload.tau_v p.workload ~tau:p.tau v

let cost p ~vms ~bandwidth = p.costs.vm_cost vms +. p.costs.bandwidth_cost bandwidth

let epsilon p = 1e-9 *. p.capacity

let pair_fits_empty_vm p t =
  2. *. Workload.event_rate p.workload t <= p.capacity +. epsilon p

let infeasible_subscribers p =
  let w = p.workload in
  let bad = ref [] in
  for v = Workload.num_subscribers w - 1 downto 0 do
    let reachable =
      Array.fold_left
        (fun acc t ->
          if pair_fits_empty_vm p t then acc +. Workload.event_rate w t else acc)
        0. (Workload.interests w v)
    in
    if reachable +. epsilon p < tau_v p v then bad := v :: !bad
  done;
  !bad
