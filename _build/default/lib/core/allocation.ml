module Workload = Mcss_workload.Workload

type vm = {
  id : int;
  mutable load : float;
  mutable num_pairs : int;
  by_topic : (Workload.topic, Workload.subscriber Vec.t) Hashtbl.t;
}

type t = { cap : float; fleet : vm Vec.t }

let create ~capacity =
  if not (capacity > 0.) then invalid_arg "Allocation.create: capacity must be positive";
  { cap = capacity; fleet = Vec.create () }

let capacity a = a.cap
let num_vms a = Vec.length a.fleet
let vms a = Vec.to_array a.fleet

let deploy a =
  let vm = { id = Vec.length a.fleet; load = 0.; num_pairs = 0; by_topic = Hashtbl.create 8 } in
  Vec.push a.fleet vm;
  vm

let vm_id vm = vm.id
let load vm = vm.load
let free a vm = a.cap -. vm.load
let hosts_topic vm t = Hashtbl.mem vm.by_topic t
let num_pairs_on vm = vm.num_pairs
let num_topics_on vm = Hashtbl.length vm.by_topic

let place_delta vm ~topic ~ev ~count =
  let incoming = if Hashtbl.mem vm.by_topic topic then 0. else ev in
  (float_of_int count *. ev) +. incoming

let max_pairs_that_fit a vm ~topic ~ev ~eps =
  let room = a.cap -. vm.load +. eps in
  let incoming = if Hashtbl.mem vm.by_topic topic then 0. else ev in
  let outgoing_room = room -. incoming in
  if outgoing_room < ev then 0 else int_of_float (floor (outgoing_room /. ev))

let place a vm ~topic ~ev ~subscribers ~from ~count =
  ignore a;
  if count < 0 || from < 0 || from + count > Array.length subscribers then
    invalid_arg "Allocation.place: subscriber range out of bounds";
  if count > 0 then begin
    vm.load <- vm.load +. place_delta vm ~topic ~ev ~count;
    let slot =
      match Hashtbl.find_opt vm.by_topic topic with
      | Some v -> v
      | None ->
          let v = Vec.create () in
          Hashtbl.add vm.by_topic topic v;
          v
    in
    for i = from to from + count - 1 do
      Vec.push slot subscribers.(i)
    done;
    vm.num_pairs <- vm.num_pairs + count
  end

let total_load a = Vec.fold_left (fun acc vm -> acc +. vm.load) 0. a.fleet

let iter_vm_pairs vm f =
  Hashtbl.iter (fun topic subs -> Vec.iter (fun v -> f topic v) subs) vm.by_topic

let topics_on vm = Hashtbl.fold (fun t _ acc -> t :: acc) vm.by_topic [] |> List.sort compare

let subscribers_of_topic_on vm t =
  match Hashtbl.find_opt vm.by_topic t with
  | Some subs -> Vec.to_list subs
  | None -> []

let remove a vm ~topic ~ev ~subscriber =
  ignore a;
  match Hashtbl.find_opt vm.by_topic topic with
  | None -> false
  | Some subs -> (
      match Vec.find_index (fun v -> v = subscriber) subs with
      | None -> false
      | Some i ->
          Vec.swap_remove subs i;
          vm.num_pairs <- vm.num_pairs - 1;
          let last = Vec.is_empty subs in
          if last then Hashtbl.remove vm.by_topic topic;
          vm.load <- vm.load -. ev -. (if last then ev else 0.);
          true)

let rebuild_loads a ~event_rates =
  Vec.iter
    (fun vm ->
      let load = ref 0. in
      let pairs = ref 0 in
      Hashtbl.iter
        (fun t subs ->
          let n = Vec.length subs in
          load := !load +. (float_of_int (n + 1) *. event_rates.(t));
          pairs := !pairs + n)
        vm.by_topic;
      vm.load <- !load;
      vm.num_pairs <- !pairs)
    a.fleet

let compact a =
  let fresh = { cap = a.cap; fleet = Vec.create () } in
  let mapping = Array.make (Vec.length a.fleet) (-1) in
  Vec.iter
    (fun vm ->
      if vm.num_pairs > 0 then begin
        let id = Vec.length fresh.fleet in
        mapping.(vm.id) <- id;
        Vec.push fresh.fleet { vm with id }
      end)
    a.fleet;
  (fresh, mapping)

let find_pair_vm a ~topic ~subscriber =
  let vms = vms a in
  let rec scan i =
    if i >= Array.length vms then None
    else
      match Hashtbl.find_opt vms.(i).by_topic topic with
      | Some subs when Vec.exists (fun v -> v = subscriber) subs -> Some vms.(i)
      | _ -> scan (i + 1)
  in
  scan 0
