module Workload = Mcss_workload.Workload

type t = { bandwidth : float; vms : int; cost : float }

let compute (p : Problem.t) =
  let w = p.Problem.workload in
  let bandwidth = ref 0. in
  for v = 0 to Workload.num_subscribers w - 1 do
    let tv = Workload.interests w v in
    if Array.length tv > 0 then begin
      let min_rate =
        Array.fold_left
          (fun acc t -> Float.min acc (Workload.event_rate w t))
          infinity tv
      in
      bandwidth := !bandwidth +. Float.max (Problem.tau_v p v) min_rate
    end
  done;
  let vms = int_of_float (ceil (!bandwidth /. p.Problem.capacity)) in
  { bandwidth = !bandwidth; vms; cost = Problem.cost p ~vms ~bandwidth:!bandwidth }
