(** A global, cross-subscriber Stage-1 selector — an extension beyond the
    paper's per-subscriber GSP, probing the sub-optimality the paper
    attributes to solving Stage 1 per subscriber (§III-C).

    GSP treats each subscriber in isolation and charges every pair
    [2·ev_t], counting the topic's incoming stream once {e per pair}. In
    reality (Eq. 2) a topic's incoming stream is paid once per VM hosting
    it, so a topic shared by many needy subscribers is cheaper per unit
    of satisfaction than GSP believes. This selector works topic-first:
    it repeatedly picks the topic with the best aggregate ratio

    [Σ_{v ∈ V_t unsatisfied, (t,v) unchosen} min(ev_t, rem_v)
       / (ev_t · new_pairs + ev_t·[t not yet chosen])]

    and adds the pairs for all its still-unsatisfied followers. The
    benefit of a topic only shrinks as other picks reduce the remaining
    thresholds, so a lazy-reevaluation max-heap yields the exact greedy
    order without rescanning.

    The ablation benchmark compares the resulting end-to-end cost (after
    CustomBinPacking) against GSP's. *)

val select : Problem.t -> Selection.t
(** Satisfies every subscriber, like {!Selection.gsp}. *)
