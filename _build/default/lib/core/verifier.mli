(** Independent validation of a Stage-2 result against the MCSS
    constraints (Eq. 2–3). Everything is recomputed from scratch — loads
    from the raw pair placements, satisfaction from the placed pairs — so
    incremental-accounting bugs in the allocation algorithms cannot hide.

    Checks performed:
    - capacity: every recomputed [bw_b <= BC] (epsilon slack);
    - accounting: every VM's incremental load equals the recomputed load;
    - satisfaction: for every subscriber, the distinct topics [t] with a
      placed pair [(t, v)] carry at least [τ_v] events;
    - consistency: placed pairs are exactly the selected pairs, each
      placed exactly once (the algorithms never duplicate a pair). *)

type violation =
  | Over_capacity of { vm : int; load : float }
  | Load_mismatch of { vm : int; tracked : float; recomputed : float }
  | Unsatisfied of { subscriber : int; delivered : float; required : float }
  | Pair_not_selected of { topic : int; subscriber : int }
  | Pair_duplicated of { topic : int; subscriber : int }
  | Pair_missing of { topic : int; subscriber : int }

type report = {
  violations : violation list;
  num_vms : int;
  total_bandwidth : float;  (** Recomputed [Σ_b bw_b]. *)
  cost : float;
}

val verify : Problem.t -> Selection.t -> Allocation.t -> report

val is_valid : report -> bool
(** No violations. *)

val pp_violation : Format.formatter -> violation -> unit

val check_exn : Problem.t -> Selection.t -> Allocation.t -> report
(** Like {!verify} but raises [Failure] with a rendered message when any
    violation is found. *)
