(** The dual provisioning question, from the paper's companion work
    (reference [9], INFOCOM 2014): instead of "how many VMs to satisfy
    everyone" (MCSS), ask "given a {e fixed} budget of VMs, how many
    subscribers can be satisfied?". The paper's §V positions MCSS against
    exactly this problem, so the library answers both.

    The heuristic mirrors MCSS's structure: each subscriber's cheapest
    satisfying pair set comes from the same greedy ratio as GSP; then
    subscribers are admitted cheapest-first, their pair groups packed
    into the budgeted fleet with the CBP insertion rule, rolling back and
    skipping any subscriber whose pairs do not fit. *)

type result = {
  satisfied : bool array;  (** Per subscriber. *)
  num_satisfied : int;
  allocation : Allocation.t;  (** At most [budget] VMs. *)
  selection : Selection.t;
      (** The admitted subscribers' pairs (empty choice for the
          rejected). *)
}

val solve : Problem.t -> budget:int -> result
(** Raises [Invalid_argument] on a negative budget. Subscribers with no
    interests count as satisfied (their threshold is 0) and consume
    nothing. *)

val satisfaction_curve : Problem.t -> budgets:int list -> (int * int) list
(** [(budget, num_satisfied)] for each requested budget — the data behind
    a satisfied-subscribers-vs-resources plot. *)
