(** Import/export of workloads in the split format real crawls ship in —
    the paper's Twitter trace combined the Kwak et al. follower graph
    (edge list) with per-user tweet counts fetched separately. Feeding
    such files through this module yields an MCSS workload directly, so
    the pipeline runs on a real crawl whenever one is available.

    Edge file: one [follower followee] pair of user ids per line
    (whitespace separated, ['#'] comments and blank lines ignored) —
    "follower subscribes to followee's publications".

    Rates file: one [user count] pair per line — events published by the
    user over the horizon.

    Following the paper's §IV-B methodology: users with no positive count
    are {e inactive} and dropped as topics (with their incident edges);
    a user is a subscriber iff at least one of its followees survives;
    user ids may be sparse and are densified. *)

type mapping = {
  user_of_topic : int array;  (** Topic id -> original user id. *)
  user_of_subscriber : int array;  (** Subscriber id -> original user id. *)
}

val load : edges:string -> rates:string -> Mcss_workload.Workload.t * mapping
(** Raises {!Mcss_workload.Wio.Parse_error} with file/line context on
    malformed input, [Sys_error] on I/O failure. Duplicate edges are
    tolerated (collapsed); duplicate rate lines keep the last value. *)

val save : Mcss_workload.Workload.t -> edges:string -> rates:string -> unit
(** Export a workload in the same two-file format; topic [t] is written
    as user id [t] and subscriber [v] as user id [num_topics + v] (the
    two id spaces are disjoint in the export). *)
