module Workload = Mcss_workload.Workload
module Wio = Mcss_workload.Wio
module Vec = struct
  (* A tiny local growable int-pair store to avoid a dependency cycle. *)
  type t = { mutable data : (int * int) array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let cap = max 16 (2 * v.len) in
      let data = Array.make cap x in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let iter f v =
    for i = 0 to v.len - 1 do
      f v.data.(i)
    done
end

type mapping = { user_of_topic : int array; user_of_subscriber : int array }

let fail file line msg =
  raise (Wio.Parse_error (Printf.sprintf "%s, line %d: %s" file line msg))

(* Iterate the meaningful lines of a two-integer-column file. *)
let iter_int_pairs file f =
  In_channel.with_open_text file (fun ic ->
      let line_num = ref 0 in
      let rec loop () =
        match In_channel.input_line ic with
        | None -> ()
        | Some line ->
            incr line_num;
            let line = String.trim line in
            if line <> "" && line.[0] <> '#' then begin
              let fields =
                String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) line)
                |> List.filter (fun s -> s <> "")
              in
              match fields with
              | [ a; b ] -> (
                  match (int_of_string_opt a, int_of_string_opt b) with
                  | Some a, Some b -> f !line_num a b
                  | _ -> fail file !line_num (Printf.sprintf "bad integers %S" line))
              | _ -> fail file !line_num (Printf.sprintf "expected two columns, got %S" line)
            end;
            loop ()
      in
      loop ())

let load ~edges ~rates =
  (* Pass 1: rates — only users with a positive count become topics. *)
  let rate_of_user : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  iter_int_pairs rates (fun line user count ->
      if user < 0 then fail rates line "negative user id";
      if count < 0 then fail rates line "negative count";
      Hashtbl.replace rate_of_user user count);
  let topic_of_user : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let topic_users = ref [] in
  let num_topics = ref 0 in
  Hashtbl.iter
    (fun user count ->
      if count > 0 then begin
        Hashtbl.replace topic_of_user user !num_topics;
        topic_users := user :: !topic_users;
        incr num_topics
      end)
    rate_of_user;
  (* Densify deterministically: sort topics by original user id. *)
  let topic_users = Array.of_list !topic_users in
  Array.sort compare topic_users;
  Hashtbl.reset topic_of_user;
  Array.iteri (fun t user -> Hashtbl.replace topic_of_user user t) topic_users;
  let event_rates =
    Array.map (fun user -> float_of_int (Hashtbl.find rate_of_user user)) topic_users
  in
  (* Pass 2: edges — keep only edges to active topics, dedup. *)
  let raw_edges = Vec.create () in
  iter_int_pairs edges (fun line follower followee ->
      if follower < 0 || followee < 0 then fail edges line "negative user id";
      match Hashtbl.find_opt topic_of_user followee with
      | Some t -> Vec.push raw_edges (follower, t)
      | None -> ());
  let interests_of_user : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 1024 in
  Vec.iter
    (fun (follower, t) ->
      let set =
        match Hashtbl.find_opt interests_of_user follower with
        | Some s -> s
        | None ->
            let s = Hashtbl.create 8 in
            Hashtbl.add interests_of_user follower s;
            s
      in
      Hashtbl.replace set t ())
    raw_edges;
  let subscriber_users =
    Hashtbl.fold (fun user _ acc -> user :: acc) interests_of_user []
    |> List.sort compare |> Array.of_list
  in
  let interests =
    Array.map
      (fun user ->
        let set = Hashtbl.find interests_of_user user in
        let a = Array.make (Hashtbl.length set) 0 in
        let i = ref 0 in
        Hashtbl.iter
          (fun t () ->
            a.(!i) <- t;
            incr i)
          set;
        a)
      subscriber_users
  in
  let workload = Workload.create ~event_rates ~interests in
  (workload, { user_of_topic = topic_users; user_of_subscriber = subscriber_users })

let save w ~edges ~rates =
  let num_topics = Workload.num_topics w in
  Out_channel.with_open_text rates (fun oc ->
      Printf.fprintf oc "# user count\n";
      Array.iteri
        (fun t ev -> Printf.fprintf oc "%d %d\n" t (int_of_float (Float.round ev)))
        (Workload.event_rates w));
  Out_channel.with_open_text edges (fun oc ->
      Printf.fprintf oc "# follower followee\n";
      for v = 0 to Workload.num_subscribers w - 1 do
        Array.iter
          (fun t -> Printf.fprintf oc "%d %d\n" (num_topics + v) t)
          (Workload.interests w v)
      done)
