lib/traces/gen.ml: Array Float Hashtbl Mcss_prng
