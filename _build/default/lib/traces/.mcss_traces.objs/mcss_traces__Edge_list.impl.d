lib/traces/edge_list.ml: Array Float Hashtbl In_channel List Mcss_workload Out_channel Printf String
