lib/traces/spotify.ml: Array Float Gen Mcss_prng Mcss_workload
