lib/traces/twitter.mli: Mcss_workload
