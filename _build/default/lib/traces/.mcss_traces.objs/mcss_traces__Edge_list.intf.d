lib/traces/edge_list.mli: Mcss_workload
