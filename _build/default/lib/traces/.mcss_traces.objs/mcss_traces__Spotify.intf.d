lib/traces/spotify.mli: Mcss_workload
