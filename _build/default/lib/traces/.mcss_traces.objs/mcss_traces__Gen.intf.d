lib/traces/gen.mli: Mcss_prng
