lib/traces/twitter.ml: Array Float Gen Mcss_prng Mcss_workload
