(** Billing terms. The paper prices everything On-Demand; 2014-era EC2
    also sold Reserved Instances whose upfront fee buys a lower hourly
    rate — a pub/sub fleet that re-provisions hourly around a stable
    baseline is exactly the workload RIs were made for, so the capacity
    planner should be able to price them.

    The discounts are the typical 2014 heavy-utilisation amortised
    factors (upfront spread over the term plus the reduced hourly),
    deliberately kept as simple multipliers: exact RI price sheets varied
    by region and month. *)

type term =
  | On_demand
  | Reserved_1yr  (** ≈ 38% below On-Demand, amortised. *)
  | Reserved_3yr  (** ≈ 55% below On-Demand, amortised. *)

val discount : term -> float
(** Multiplier on the On-Demand hourly price: 1.0 / 0.62 / 0.45. *)

val effective_hourly : Instance.t -> term -> float

val pp : Format.formatter -> term -> unit

val of_string : string -> term option
(** ["on-demand" | "reserved-1yr" | "reserved-3yr"]. *)

val all : term list
