type term = On_demand | Reserved_1yr | Reserved_3yr

let discount = function On_demand -> 1.0 | Reserved_1yr -> 0.62 | Reserved_3yr -> 0.45

let effective_hourly (i : Instance.t) term = i.Instance.hourly_usd *. discount term

let pp ppf = function
  | On_demand -> Format.pp_print_string ppf "on-demand"
  | Reserved_1yr -> Format.pp_print_string ppf "reserved-1yr"
  | Reserved_3yr -> Format.pp_print_string ppf "reserved-3yr"

let of_string = function
  | "on-demand" -> Some On_demand
  | "reserved-1yr" -> Some Reserved_1yr
  | "reserved-3yr" -> Some Reserved_3yr
  | _ -> None

let all = [ On_demand; Reserved_1yr; Reserved_3yr ]
