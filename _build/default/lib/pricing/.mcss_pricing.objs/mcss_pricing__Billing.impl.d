lib/pricing/billing.ml: Format Instance
