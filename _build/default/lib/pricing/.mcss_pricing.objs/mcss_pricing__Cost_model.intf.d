lib/pricing/cost_model.mli: Billing Format Instance
