lib/pricing/instance.ml: Format List
