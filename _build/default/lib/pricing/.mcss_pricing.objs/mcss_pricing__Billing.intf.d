lib/pricing/billing.mli: Format Instance
