lib/pricing/instance.mli: Format
