lib/pricing/cost_model.ml: Billing Format Instance
