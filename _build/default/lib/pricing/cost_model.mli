(** The IaaS cost model of the paper (§II-B, §IV-A): the total monetary
    cost of a deployment is [C1(|B|) + C2(Σ_b bw_b)], where [C1] charges
    per rented VM and [C2] charges per byte transferred in or out of the
    cloud.

    The MCSS algorithms work in abstract event-rate units (events per
    {e horizon}, the period over which the trace was collected and the
    service is billed — 10 days in the paper). This module is the single
    place where event rates are converted to bytes, gigabytes, money, and
    a per-VM capacity in event units. *)

type t = {
  instance : Instance.t;  (** The VM type rented for every broker. *)
  term : Billing.term;  (** Billing term; the paper uses On-Demand. *)
  bandwidth_usd_per_gb : float;
      (** Data-transfer price, charged identically for incoming and
          outgoing traffic ($0.12/GB in the paper). *)
  message_bytes : float;  (** Mean size of one event message (200 B). *)
  horizon_hours : float;
      (** Billing/trace horizon; event rates are events per horizon. *)
}

val ec2_2014 : ?instance:Instance.t -> ?term:Billing.term -> unit -> t
(** The paper's setup: $0.12/GB, 200-byte messages, 10-day (240 h)
    horizon, [c3.large] On-Demand unless overridden. *)

val capacity_events : t -> float
(** The VM bandwidth capacity [BC] expressed in event-rate units:
    the number of (200-byte) events one VM can move over the horizon at
    its mbps limit. *)

val bytes_of_events : t -> float -> float
val gb_of_events : t -> float -> float

val vm_cost : t -> int -> float
(** [C1 n]: renting [n] VMs for the whole horizon. *)

val bandwidth_cost : t -> float -> float
(** [C2 events]: transferring the given traffic volume, in event units
    (the caller passes the sum of incoming and outgoing volumes, as the
    MCSS objective does). *)

val total_cost : t -> vms:int -> bandwidth_events:float -> float
(** [C1 vms + C2 bandwidth_events]. *)

val pp : Format.formatter -> t -> unit
