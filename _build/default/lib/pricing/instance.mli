(** Catalogue of IaaS virtual-machine instance types.

    The paper's evaluation (§IV-A) uses the 2014 Amazon EC2 On-Demand
    Compute-Optimized generation: c3.large at $0.15/h with a 64 mbps
    bandwidth limit and c3.xlarge at $0.30/h with 128 mbps. Those two are
    reproduced exactly; the larger c3 sizes follow EC2's historical
    price/bandwidth doubling pattern and are provided for sweeps. *)

type t = {
  name : string;
  hourly_usd : float;  (** On-Demand price per instance-hour. *)
  bandwidth_mbps : float;
      (** Bandwidth capacity [BC] (megabits per second), covering incoming
          plus outgoing traffic as the paper assumes. *)
}

val c3_large : t
val c3_xlarge : t
val c3_2xlarge : t
val c3_4xlarge : t
val c3_8xlarge : t

val catalogue : t list
(** All known instance types, ascending by size. *)

val find : string -> t option
(** Look up by [name]. *)

val pp : Format.formatter -> t -> unit
