type t = {
  instance : Instance.t;
  term : Billing.term;
  bandwidth_usd_per_gb : float;
  message_bytes : float;
  horizon_hours : float;
}

let ec2_2014 ?(instance = Instance.c3_large) ?(term = Billing.On_demand) () =
  {
    instance;
    term;
    bandwidth_usd_per_gb = 0.12;
    message_bytes = 200.;
    horizon_hours = 240.;
  }

let capacity_events m =
  let bytes_per_second = m.instance.Instance.bandwidth_mbps *. 1e6 /. 8. in
  let horizon_seconds = m.horizon_hours *. 3600. in
  bytes_per_second *. horizon_seconds /. m.message_bytes

let bytes_of_events m events = events *. m.message_bytes

let gb_of_events m events = bytes_of_events m events /. 1e9

let vm_cost m n =
  float_of_int n *. Billing.effective_hourly m.instance m.term *. m.horizon_hours

let bandwidth_cost m events = gb_of_events m events *. m.bandwidth_usd_per_gb

let total_cost m ~vms ~bandwidth_events =
  vm_cost m vms +. bandwidth_cost m bandwidth_events

let pp ppf m =
  Format.fprintf ppf "%a %a, $%.2f/GB, %g B/msg, %g h horizon" Instance.pp m.instance
    Billing.pp m.term m.bandwidth_usd_per_gb m.message_bytes m.horizon_hours
