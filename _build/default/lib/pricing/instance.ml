type t = { name : string; hourly_usd : float; bandwidth_mbps : float }

let c3_large = { name = "c3.large"; hourly_usd = 0.15; bandwidth_mbps = 64. }
let c3_xlarge = { name = "c3.xlarge"; hourly_usd = 0.30; bandwidth_mbps = 128. }
let c3_2xlarge = { name = "c3.2xlarge"; hourly_usd = 0.60; bandwidth_mbps = 256. }
let c3_4xlarge = { name = "c3.4xlarge"; hourly_usd = 1.20; bandwidth_mbps = 512. }
let c3_8xlarge = { name = "c3.8xlarge"; hourly_usd = 2.40; bandwidth_mbps = 1024. }

let catalogue = [ c3_large; c3_xlarge; c3_2xlarge; c3_4xlarge; c3_8xlarge ]

let find name = List.find_opt (fun i -> i.name = name) catalogue

let pp ppf i =
  Format.fprintf ppf "%s ($%.2f/h, %g mbps)" i.name i.hourly_usd i.bandwidth_mbps
